#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs --offline against the vendored dev-dependency stubs in
# vendor/ — no network access is required (or attempted).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== bench-smoke (analysis cost) =="
# Quick variant of the analysis-cost benchmark: proves the single-pass
# checkpoint generator still replays exactly once (asserted inside the
# bench) and that the emitted JSON is well-formed. Writes to target/ so
# the committed baseline BENCH_analysis.json is never clobbered by CI.
SMOKE_OUT="$PWD/target/BENCH_analysis.smoke.json"
cargo bench --offline -p lp-bench --bench analysis_cost -- --smoke --out "$SMOKE_OUT"
[ -s "$SMOKE_OUT" ] || { echo "bench-smoke: $SMOKE_OUT missing or empty" >&2; exit 1; }
for key in workload regions replay_passes checkpoint_generation clustering_sweep end_to_end; do
  grep -q "\"$key\"" "$SMOKE_OUT" || { echo "bench-smoke: $SMOKE_OUT missing key $key" >&2; exit 1; }
done
grep -q '"replay_passes": 1' "$SMOKE_OUT" || { echo "bench-smoke: replay_passes != 1" >&2; exit 1; }

echo "== store-smoke (artifact store) =="
# Cold run populates a fresh store; warm run must hit and print the
# served-from-store lines; a flipped byte in a cached artifact must be
# detected (store.corrupt / quarantine) and transparently recomputed.
STORE_DIR="$PWD/target/ci-store"
STORE_LOG="$PWD/target/ci-store.log"
rm -rf "$STORE_DIR"
RUNNER=(cargo run --release --offline -q --bin run-looppoint --)
"${RUNNER[@]}" -p demo-matrix-1 -n 2 --slice-base 4000 --store-dir "$STORE_DIR" > "$STORE_LOG" 2>&1 \
  || { cat "$STORE_LOG" >&2; echo "store-smoke: cold run failed" >&2; exit 1; }
grep -Eq 'store: 0 hits, [0-9]+ misses' "$STORE_LOG" || { echo "store-smoke: cold run should only miss" >&2; exit 1; }
COLD_ERR=$(grep 'runtime error' "$STORE_LOG")
"${RUNNER[@]}" -p demo-matrix-1 -n 2 --slice-base 4000 --store-dir "$STORE_DIR" > "$STORE_LOG" 2>&1 \
  || { cat "$STORE_LOG" >&2; echo "store-smoke: warm run failed" >&2; exit 1; }
grep -q 'analysis served from the artifact store' "$STORE_LOG" || { echo "store-smoke: warm run did not hit" >&2; exit 1; }
grep -Eq 'store: [1-9][0-9]* hits, 0 misses' "$STORE_LOG" || { echo "store-smoke: warm run should only hit" >&2; exit 1; }
WARM_ERR=$(grep 'runtime error' "$STORE_LOG")
[ "$COLD_ERR" = "$WARM_ERR" ] || { echo "store-smoke: warm result differs from cold ($COLD_ERR vs $WARM_ERR)" >&2; exit 1; }
# Corrupt one cached artifact in place (flip a mid-file byte) and re-run.
VICTIM=$(ls "$STORE_DIR"/*-clustering.lpa | head -n1)
SIZE=$(wc -c < "$VICTIM")
printf '\x5a' | dd of="$VICTIM" bs=1 seek=$((SIZE / 2)) count=1 conv=notrunc status=none
"${RUNNER[@]}" -p demo-matrix-1 -n 2 --slice-base 4000 --store-dir "$STORE_DIR" > "$STORE_LOG" 2>&1 \
  || { cat "$STORE_LOG" >&2; echo "store-smoke: corrupt-recovery run failed" >&2; exit 1; }
grep -q 'quarantining corrupt artifact' "$STORE_LOG" || { echo "store-smoke: corruption not detected" >&2; exit 1; }
grep -Eq 'store: .* 1 corruptions' "$STORE_LOG" || { echo "store-smoke: store.corrupt not counted" >&2; exit 1; }
ls "$STORE_DIR"/*.corrupt >/dev/null 2>&1 || { echo "store-smoke: no quarantined file" >&2; exit 1; }
RECOVERED_ERR=$(grep 'runtime error' "$STORE_LOG")
[ "$COLD_ERR" = "$RECOVERED_ERR" ] || { echo "store-smoke: recovery result differs from cold" >&2; exit 1; }
rm -rf "$STORE_DIR"

echo "== bench-smoke (store reuse) =="
# Quick variant of the store-reuse benchmark: asserts warm==cold bytewise
# and replay_passes==0 internally; validate the JSON schema here. Writes
# to target/ so the committed baseline BENCH_store.json is not clobbered.
STORE_SMOKE_OUT="$PWD/target/BENCH_store.smoke.json"
cargo bench --offline -p lp-bench --bench store_reuse -- --smoke --out "$STORE_SMOKE_OUT"
[ -s "$STORE_SMOKE_OUT" ] || { echo "store-bench-smoke: $STORE_SMOKE_OUT missing or empty" >&2; exit 1; }
for key in workload nthreads slice_base cold sweep store smoke; do
  grep -q "\"$key\"" "$STORE_SMOKE_OUT" || { echo "store-bench-smoke: missing key $key" >&2; exit 1; }
done
for key in cold_ms warm_ms speedup configs artifacts bytes_raw bytes_stored compression_ratio; do
  grep -q "\"$key\"" "$STORE_SMOKE_OUT" || { echo "store-bench-smoke: missing key $key" >&2; exit 1; }
done
# And the committed full-scale baseline keeps the >= 5x warm speedup claim.
python3 - <<'PY'
import json, sys
with open("BENCH_store.json") as f:
    j = json.load(f)
for section in ("cold", "sweep"):
    s = j[section]["speedup"]
    if s < 5.0:
        sys.exit(f"BENCH_store.json: {section} speedup {s} < 5x")
PY

echo "== telemetry-smoke (live endpoint) =="
# Start a run with the live endpoint on an ephemeral port, poll /healthz
# while it is in flight, assert /metrics is Prometheus text with the
# pipeline's series, and require a clean exit afterwards.
SERVE_LOG="$PWD/target/ci-serve.log"
"${RUNNER[@]}" -p demo-matrix-1,demo-matrix-2 -n 4 --slice-base 4000 \
  --serve-metrics 127.0.0.1:0 --serve-linger-ms 4000 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^telemetry: listening on \([0-9.:]*\).*/\1/p' "$SERVE_LOG" | head -n1)
  [ -n "$ADDR" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG" >&2; echo "telemetry-smoke: driver died before binding" >&2; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { cat "$SERVE_LOG" >&2; echo "telemetry-smoke: no listening line" >&2; exit 1; }
HEALTH=$(curl -sf --max-time 5 "http://$ADDR/healthz")
echo "$HEALTH" | grep -q '"status":"ok"' || { echo "telemetry-smoke: bad /healthz: $HEALTH" >&2; exit 1; }
echo "$HEALTH" | grep -q '"phase"' || { echo "telemetry-smoke: /healthz lacks phase" >&2; exit 1; }
# Let the run get past analysis so sim_* series exist, then scrape.
METRICS=""
for _ in $(seq 1 200); do
  METRICS=$(curl -sf --max-time 5 "http://$ADDR/metrics" || true)
  echo "$METRICS" | grep -q '^sim_' && echo "$METRICS" | grep -q '^analyze_' && break
  sleep 0.1
done
echo "$METRICS" | grep -q '^# TYPE ' || { echo "telemetry-smoke: /metrics lacks # TYPE lines" >&2; exit 1; }
echo "$METRICS" | grep -Eq '^analyze_[a-z_]+ [0-9]' || { echo "telemetry-smoke: no analyze_ series" >&2; exit 1; }
echo "$METRICS" | grep -Eq '^sim_[a-z_]+' || { echo "telemetry-smoke: no sim_ series" >&2; exit 1; }
echo "$METRICS" | grep -q '_bucket{le="+Inf"}' || { echo "telemetry-smoke: no histogram bucket series" >&2; exit 1; }
wait "$SERVE_PID" || { cat "$SERVE_LOG" >&2; echo "telemetry-smoke: driver exited non-zero" >&2; exit 1; }
# Clean shutdown released the port.
curl -sf --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1 && { echo "telemetry-smoke: endpoint still up after exit" >&2; exit 1; }

echo "== diag-smoke (accuracy attribution) =="
# Two workloads through --diag-report; validate the document against the
# minimal schema and the exact-sum acceptance invariant: per-cluster
# attributed errors sum to the end-to-end extrapolation error, and each
# cluster's cause components sum to its error.
DIAG_OUT="$PWD/target/ci-diag.json"
DIAG_LOG="$PWD/target/ci-diag.log"
"${RUNNER[@]}" -p demo-matrix-1,demo-matrix-2 -n 4 --slice-base 4000 \
  --diag-report "$DIAG_OUT" > "$DIAG_LOG" 2>&1 \
  || { cat "$DIAG_LOG" >&2; echo "diag-smoke: run failed" >&2; exit 1; }
grep -q 'accuracy attribution:' "$DIAG_LOG" || { echo "diag-smoke: no attribution table printed" >&2; exit 1; }
python3 - "$DIAG_OUT" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    reports = json.load(f)
assert isinstance(reports, list) and len(reports) == 2, f"expected 2 reports, got {reports!r:.80}"
REPORT_KEYS = {"schema_version", "workload", "nthreads", "k", "predicted_cycles",
               "actual_cycles", "error_cycles", "error_pct", "clusters", "profile"}
CLUSTER_KEYS = {"cluster", "slice_index", "multiplier", "weight", "predicted_cycles",
                "attributed_actual_cycles", "error_cycles", "error_pct",
                "rep_distance", "mean_member_distance", "components"}
for r in reports:
    missing = REPORT_KEYS - r.keys()
    assert not missing, f"{r.get('workload')}: missing report keys {missing}"
    assert r["schema_version"] == 1, r["schema_version"]
    assert r["k"] == len(r["clusters"]) > 0
    tol = 1e-6 * max(abs(r["error_cycles"]), 1.0)
    total = sum(c["error_cycles"] for c in r["clusters"])
    assert abs(total - r["error_cycles"]) <= tol, \
        f"{r['workload']}: cluster errors {total} != end-to-end {r['error_cycles']}"
    for c in r["clusters"]:
        missing = CLUSTER_KEYS - c.keys()
        assert not missing, f"cluster {c.get('cluster')}: missing keys {missing}"
        comp = c["components"]
        s = comp["representativeness"] + comp["warmup"] + comp["extrapolation"]
        ctol = 1e-6 * max(abs(c["error_cycles"]), 1.0)
        assert abs(s - c["error_cycles"]) <= ctol, \
            f"{r['workload']} cluster {c['cluster']}: components {s} != {c['error_cycles']}"
    assert r["profile"]["wall_us"] > 0 and r["profile"]["phases"], "empty self-profile"
print(f"diag-smoke: {len(reports)} reports, attribution sums exact")
PY

echo "== farm-smoke (analysis service) =="
# Start the lp-farm daemon on an ephemeral port, submit three jobs of
# which two are identical, and assert from /metrics that the service ran
# exactly 2 computes and served the duplicate by dedup. A drain shutdown
# must finish all work and leave the daemon with exit code 0.
FARM_LOG="$PWD/target/ci-farm.log"
FARM_SUBMIT_LOG="$PWD/target/ci-farm-submit.log"
"${RUNNER[@]}" serve --farm-listen 127.0.0.1:0 --workers 2 > "$FARM_LOG" 2>&1 &
FARM_PID=$!
FARM_ADDR=""
for _ in $(seq 1 100); do
  FARM_ADDR=$(sed -n 's/^farm: listening on \([0-9.:]*\).*/\1/p' "$FARM_LOG" | head -n1)
  [ -n "$FARM_ADDR" ] && break
  kill -0 "$FARM_PID" 2>/dev/null || { cat "$FARM_LOG" >&2; echo "farm-smoke: daemon died before binding" >&2; exit 1; }
  sleep 0.1
done
[ -n "$FARM_ADDR" ] || { cat "$FARM_LOG" >&2; echo "farm-smoke: no listening line" >&2; exit 1; }
"${RUNNER[@]}" submit --farm "$FARM_ADDR" -p demo-matrix-1,demo-matrix-2,demo-matrix-1 \
  --slice-base 4000 --wait > "$FARM_SUBMIT_LOG" 2>&1 \
  || { cat "$FARM_SUBMIT_LOG" >&2; echo "farm-smoke: submit failed" >&2; exit 1; }
grep -q '"dedup_of"' "$FARM_SUBMIT_LOG" || { cat "$FARM_SUBMIT_LOG" >&2; echo "farm-smoke: duplicate was not deduplicated" >&2; exit 1; }
FARM_METRICS=$(curl -sf --max-time 5 "http://$FARM_ADDR/metrics")
for want in 'farm_computes 2' 'farm_dedup_hits 1' 'farm_done 3' 'farm_submitted 3'; do
  echo "$FARM_METRICS" | grep -q "^$want\$" \
    || { echo "$FARM_METRICS" | grep '^farm_' >&2; echo "farm-smoke: /metrics missing '$want'" >&2; exit 1; }
done
echo "$FARM_METRICS" | grep -q '^farm_queue_wait_us_bucket{le="+Inf"}' \
  || { echo "farm-smoke: no queue-wait histogram" >&2; exit 1; }
"${RUNNER[@]}" shutdown --farm "$FARM_ADDR" > /dev/null \
  || { echo "farm-smoke: shutdown request failed" >&2; exit 1; }
wait "$FARM_PID" || { cat "$FARM_LOG" >&2; echo "farm-smoke: daemon exited non-zero" >&2; exit 1; }
grep -q 'farm: stopped (3 done, 0 failed, 0 cancelled, 0 requeued' "$FARM_LOG" \
  || { cat "$FARM_LOG" >&2; echo "farm-smoke: bad shutdown summary" >&2; exit 1; }
# Clean shutdown released the port.
curl -sf --max-time 2 "http://$FARM_ADDR/healthz" >/dev/null 2>&1 && { echo "farm-smoke: endpoint still up after exit" >&2; exit 1; }

echo "== trace-smoke (distributed tracing) =="
# Start the daemon with a store and a small flight-recorder ring, submit
# two identical jobs (job 1 computes, job 2 dedups onto it), and assert:
# /jobs/1/trace is a valid Chrome trace_event document with at least one
# span per lifecycle stage, job 2's trace links back to job 1's trace id
# via the dedup marker, /trace/recent is parseable NDJSON, /healthz
# surfaces the recorder occupancy, and the CLI renders the span tree.
TRACE_STORE="$PWD/target/ci-trace-store"
TRACE_LOG="$PWD/target/ci-trace.log"
TRACE_SUBMIT_LOG="$PWD/target/ci-trace-submit.log"
TRACE_DOC="$PWD/target/ci-trace-job1.json"
TRACE_DOC2="$PWD/target/ci-trace-job2.json"
rm -rf "$TRACE_STORE"
"${RUNNER[@]}" serve --farm-listen 127.0.0.1:0 --workers 2 --trace-capacity 8 \
  --store-dir "$TRACE_STORE" > "$TRACE_LOG" 2>&1 &
TRACE_PID=$!
TRACE_ADDR=""
for _ in $(seq 1 100); do
  TRACE_ADDR=$(sed -n 's/^farm: listening on \([0-9.:]*\).*/\1/p' "$TRACE_LOG" | head -n1)
  [ -n "$TRACE_ADDR" ] && break
  kill -0 "$TRACE_PID" 2>/dev/null || { cat "$TRACE_LOG" >&2; echo "trace-smoke: daemon died before binding" >&2; exit 1; }
  sleep 0.1
done
[ -n "$TRACE_ADDR" ] || { cat "$TRACE_LOG" >&2; echo "trace-smoke: no listening line" >&2; exit 1; }
"${RUNNER[@]}" submit --farm "$TRACE_ADDR" -p demo-matrix-3,demo-matrix-3 \
  --slice-base 4000 --wait > "$TRACE_SUBMIT_LOG" 2>&1 \
  || { cat "$TRACE_SUBMIT_LOG" >&2; echo "trace-smoke: submit failed" >&2; exit 1; }
grep -q '"trace_id"' "$TRACE_SUBMIT_LOG" || { echo "trace-smoke: submit response lacks trace_id" >&2; exit 1; }
curl -sf --max-time 5 "http://$TRACE_ADDR/jobs/1/trace" > "$TRACE_DOC" \
  || { echo "trace-smoke: GET /jobs/1/trace failed" >&2; exit 1; }
curl -sf --max-time 5 "http://$TRACE_ADDR/jobs/2/trace" > "$TRACE_DOC2" \
  || { echo "trace-smoke: GET /jobs/2/trace failed" >&2; exit 1; }
python3 - "$TRACE_DOC" "$TRACE_DOC2" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
evs = doc["traceEvents"]
assert isinstance(evs, list) and evs, "empty traceEvents"
names = [e["name"] for e in evs]
# One span or marker per lifecycle stage: enqueue, queue wait, worker
# attempt, the farm's execute span, the pipeline root, analysis phases,
# region simulation, store writes, and the terminal marker.
for want in ("farm.job", "farm.job.queue_wait", "enqueue", "attempt_start",
             "farm.execute", "job.run", "analyze", "region.sim",
             "store.save", "terminal"):
    assert want in names, f"missing lifecycle span/marker {want!r}: {sorted(set(names))}"
root = next(e for e in evs if e["name"] == "farm.job")
assert root["ph"] == "X" and root["dur"] > 0, "root must be a Complete span"
trace1 = root["args"]["trace_id"]
# Every event that carries a trace id carries the job's.
for e in evs:
    args = e.get("args", {})
    if "trace_id" in args:
        assert args["trace_id"] == trace1, f"{e['name']} leaked into another trace"
# Pipeline spans are parented (transitively) under the root span.
spans = {e["args"]["span_id"]: e for e in evs
         if e.get("ph") == "X" and "span_id" in e.get("args", {})}
jr = next(e for e in evs if e["name"] == "job.run")
hops = 0
cur = jr["args"].get("parent_span_id")
while cur in spans and hops < 20:
    if spans[cur]["name"] == "farm.job":
        break
    cur = spans[cur]["args"].get("parent_span_id")
    hops += 1
assert cur in spans and spans[cur]["name"] == "farm.job", "job.run not under farm.job"
# The follower's trace is distinct but links to the primary's trace id.
with open(sys.argv[2]) as f:
    doc2 = json.load(f)
evs2 = doc2["traceEvents"]
root2 = next(e for e in evs2 if e["name"] == "farm.job")
assert root2["args"]["trace_id"] != trace1, "follower must have its own trace"
link = next(e for e in evs2 if e["name"] == "farm.job.dedup_of")
assert link["args"]["primary"] == 1 and link["args"]["primary_trace_id"] == trace1, link
print(f"trace-smoke: {len(evs)} primary events, follower linked to {trace1[:8]}…")
PY
curl -sf --max-time 5 "http://$TRACE_ADDR/trace/recent?limit=4" | python3 -c "
import json, sys
lines = [l for l in sys.stdin.read().splitlines() if l.strip()]
assert len(lines) == 2, f'expected 2 recent traces, got {len(lines)}'
for l in lines:
    s = json.loads(l)
    assert {'id', 'trace_id', 'state'} <= s.keys(), s
" || { echo "trace-smoke: bad /trace/recent" >&2; exit 1; }
curl -sf --max-time 5 "http://$TRACE_ADDR/healthz" | grep -q '"flight_recorder":{"live":0,"finished":2,"capacity":8' \
  || { echo "trace-smoke: /healthz lacks flight-recorder occupancy" >&2; exit 1; }
TRACE_TREE=$("${RUNNER[@]}" trace 1 --farm "$TRACE_ADDR") \
  || { echo "trace-smoke: CLI trace subcommand failed" >&2; exit 1; }
for want in 'farm.job' 'farm.execute' 'job.run' 'ms'; do
  echo "$TRACE_TREE" | grep -q "$want" || { echo "$TRACE_TREE" >&2; echo "trace-smoke: tree lacks $want" >&2; exit 1; }
done
"${RUNNER[@]}" shutdown --farm "$TRACE_ADDR" > /dev/null \
  || { echo "trace-smoke: shutdown request failed" >&2; exit 1; }
wait "$TRACE_PID" || { cat "$TRACE_LOG" >&2; echo "trace-smoke: daemon exited non-zero" >&2; exit 1; }
# Restart over the same store: the resubmitted job is a store hit, and its
# trace shows it — store.load spans, no checkpoint regeneration.
"${RUNNER[@]}" serve --farm-listen 127.0.0.1:0 --workers 2 --trace-capacity 8 \
  --store-dir "$TRACE_STORE" > "$TRACE_LOG" 2>&1 &
TRACE_PID=$!
TRACE_ADDR=""
for _ in $(seq 1 100); do
  TRACE_ADDR=$(sed -n 's/^farm: listening on \([0-9.:]*\).*/\1/p' "$TRACE_LOG" | head -n1)
  [ -n "$TRACE_ADDR" ] && break
  kill -0 "$TRACE_PID" 2>/dev/null || { cat "$TRACE_LOG" >&2; echo "trace-smoke: restarted daemon died" >&2; exit 1; }
  sleep 0.1
done
"${RUNNER[@]}" submit --farm "$TRACE_ADDR" -p demo-matrix-3 --slice-base 4000 --wait > "$TRACE_SUBMIT_LOG" 2>&1 \
  || { cat "$TRACE_SUBMIT_LOG" >&2; echo "trace-smoke: warm submit failed" >&2; exit 1; }
curl -sf --max-time 5 "http://$TRACE_ADDR/jobs/1/trace" | python3 -c "
import json, sys
evs = json.load(sys.stdin)['traceEvents']
names = [e['name'] for e in evs]
assert 'store.load' in names, f'warm trace has no store.load: {sorted(set(names))}'
assert 'store_hit' in names, 'warm trace lacks the store_hit marker'
" || { echo "trace-smoke: warm trace missing store-hit evidence" >&2; exit 1; }
"${RUNNER[@]}" shutdown --farm "$TRACE_ADDR" > /dev/null
wait "$TRACE_PID" || { cat "$TRACE_LOG" >&2; echo "trace-smoke: restarted daemon exited non-zero" >&2; exit 1; }
rm -rf "$TRACE_STORE"

echo "== farm-load-smoke (keep-alive burst) =="
# One daemon with a journal, four concurrent keep-alive clients pushing a
# mixed batch/single burst through the multiplexed server. The farm-load
# subcommand itself exits non-zero on any dropped request or a failed
# drain; on top of that, /metrics must show connection reuse and strictly
# fewer group-committed journal fsyncs than journaled transitions
# (one enqueue + one terminal per job, one start per compute).
LOAD_DIR="$PWD/target/ci-farm-load"
LOAD_LOG="$PWD/target/ci-farm-load.log"
LOAD_OUT="$PWD/target/ci-farm-load-out.log"
rm -rf "$LOAD_DIR"
"${RUNNER[@]}" serve --farm-listen 127.0.0.1:0 --workers 2 --queue-capacity 64 \
  --farm-dir "$LOAD_DIR" > "$LOAD_LOG" 2>&1 &
LOAD_PID=$!
LOAD_ADDR=""
for _ in $(seq 1 100); do
  LOAD_ADDR=$(sed -n 's/^farm: listening on \([0-9.:]*\).*/\1/p' "$LOAD_LOG" | head -n1)
  [ -n "$LOAD_ADDR" ] && break
  kill -0 "$LOAD_PID" 2>/dev/null || { cat "$LOAD_LOG" >&2; echo "farm-load-smoke: daemon died before binding" >&2; exit 1; }
  sleep 0.1
done
[ -n "$LOAD_ADDR" ] || { cat "$LOAD_LOG" >&2; echo "farm-load-smoke: no listening line" >&2; exit 1; }
"${RUNNER[@]}" farm-load --farm "$LOAD_ADDR" --clients 4 --jobs 24 \
  -p demo-matrix-1,demo-matrix-2 --slice-base 4000 > "$LOAD_OUT" 2>&1 \
  || { cat "$LOAD_OUT" >&2; echo "farm-load-smoke: burst dropped requests or failed to drain" >&2; exit 1; }
grep -Eq 'farm-load: jobs=24 accepted=24 dropped=0 .* drained=true' "$LOAD_OUT" \
  || { cat "$LOAD_OUT" >&2; echo "farm-load-smoke: bad summary line" >&2; exit 1; }
LOAD_METRICS=$(curl -sf --max-time 5 "http://$LOAD_ADDR/metrics")
echo "$LOAD_METRICS" | grep -Eq '^serve_http_keepalive_reuses [1-9][0-9]*$' \
  || { echo "$LOAD_METRICS" | grep '^serve_' >&2; echo "farm-load-smoke: no keep-alive reuse" >&2; exit 1; }
echo "$LOAD_METRICS" | python3 -c "
import sys
m = dict(l.split() for l in sys.stdin if l[:1].isalpha())
fsyncs = int(m['farm_journal_fsyncs'])
transitions = 2 * int(m['farm_done']) + int(m['farm_computes'])
assert fsyncs >= 1, 'journal never fsynced'
assert fsyncs < transitions, f'group commit did not batch: {fsyncs} fsyncs / {transitions} transitions'
print(f'farm-load-smoke: {fsyncs} fsyncs for {transitions} transitions')
" || { echo "farm-load-smoke: journal group-commit gate failed" >&2; exit 1; }
"${RUNNER[@]}" shutdown --farm "$LOAD_ADDR" > /dev/null \
  || { echo "farm-load-smoke: shutdown request failed" >&2; exit 1; }
wait "$LOAD_PID" || { cat "$LOAD_LOG" >&2; echo "farm-load-smoke: daemon exited non-zero" >&2; exit 1; }
rm -rf "$LOAD_DIR"

echo "== cluster-smoke (3-node ring, dedup, failover) =="
# Three real daemon processes form a consistent-hash ring. Asserts the
# three cluster claims end to end: (1) the same spec submitted to all
# three nodes forwards to its key owner and computes exactly once
# cluster-wide, (2) forwarded ids are minted from the owner's id range,
# and (3) after kill -9 on a node with a journaled queue, the agreed
# survivor re-adopts every accepted job under its original id, completes
# it, and quarantines the dead journal.
CLUSTER_ROOT="$PWD/target/ci-cluster"
rm -rf "$CLUSTER_ROOT"
mkdir -p "$CLUSTER_ROOT"
read -r CL_PORT_A CL_PORT_B CL_PORT_C <<<"$(python3 - <<'PY'
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks: s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks: s.close()
PY
)"
CL_ADDR_A="127.0.0.1:$CL_PORT_A"; CL_ADDR_B="127.0.0.1:$CL_PORT_B"; CL_ADDR_C="127.0.0.1:$CL_PORT_C"
CL_DIR_A="$CLUSTER_ROOT/a"; CL_DIR_B="$CLUSTER_ROOT/b"; CL_DIR_C="$CLUSTER_ROOT/c"
cluster_node() { # self-addr self-dir peer1 dir1 peer2 dir2 log
  "${RUNNER[@]}" serve --node-addr "$1" --farm-dir "$2" --store-dir "$2/store" \
    --workers 1 --heartbeat-ms 100 --failure-threshold 3 --history-interval-ms 100 \
    --cluster-peer "$3=$4" --cluster-peer "$5=$6" > "$7" 2>&1 &
}
cluster_node "$CL_ADDR_A" "$CL_DIR_A" "$CL_ADDR_B" "$CL_DIR_B" "$CL_ADDR_C" "$CL_DIR_C" "$CLUSTER_ROOT/a.log"; CL_PID_A=$!
cluster_node "$CL_ADDR_B" "$CL_DIR_B" "$CL_ADDR_A" "$CL_DIR_A" "$CL_ADDR_C" "$CL_DIR_C" "$CLUSTER_ROOT/b.log"; CL_PID_B=$!
cluster_node "$CL_ADDR_C" "$CL_DIR_C" "$CL_ADDR_A" "$CL_DIR_A" "$CL_ADDR_B" "$CL_DIR_B" "$CLUSTER_ROOT/c.log"; CL_PID_C=$!
for node in a b c; do
  ok=""
  for _ in $(seq 1 150); do
    grep -q '^cluster: node .* in a 3-member ring' "$CLUSTER_ROOT/$node.log" && { ok=1; break; }
    sleep 0.1
  done
  [ -n "$ok" ] || { cat "$CLUSTER_ROOT/$node.log" >&2; echo "cluster-smoke: node $node never formed the ring" >&2; exit 1; }
done
# (1)+(2): one spec, three tenants, one compute, owner-range ids.
for addr in "$CL_ADDR_A" "$CL_ADDR_B" "$CL_ADDR_C"; do
  "${RUNNER[@]}" submit --farm "$addr" -p demo-matrix-1 --slice-base 4000 --wait \
    >> "$CLUSTER_ROOT/submit.log" 2>&1 \
    || { cat "$CLUSTER_ROOT/submit.log" >&2; echo "cluster-smoke: submit to $addr failed" >&2; exit 1; }
done
grep -q '"forwarded_to"' "$CLUSTER_ROOT/submit.log" \
  || { cat "$CLUSTER_ROOT/submit.log" >&2; echo "cluster-smoke: no submission was forwarded to the key owner" >&2; exit 1; }
CL_COMPUTES=$(for addr in "$CL_ADDR_A" "$CL_ADDR_B" "$CL_ADDR_C"; do
  curl -sf --max-time 5 "http://$addr/metrics" | sed -n 's/^farm_computes \([0-9]*\)$/\1/p'
done | awk '{s+=$1} END {print s+0}')
[ "$CL_COMPUTES" = "1" ] || { echo "cluster-smoke: expected 1 cluster-wide compute, got $CL_COMPUTES" >&2; exit 1; }
python3 - "$CL_ADDR_A" "$CL_ADDR_B" "$CL_ADDR_C" "$CLUSTER_ROOT/submit.log" <<'PY'
import json, sys
addrs = sorted(sys.argv[1:4], key=lambda a: (a.split(":")[0], int(a.split(":")[1])))
outcomes = [json.loads(l) for l in open(sys.argv[4]) if l.strip().startswith("{")]
fwd = [o for o in outcomes if o.get("forwarded_to")]
assert fwd, "no forwarded outcome recorded"
for o in fwd:
    want = addrs.index(o["forwarded_to"]) + 1
    got = o["id"] >> 40
    assert got == want, f"id {o['id']} range {got} != owner ordinal {want}"
print(f"cluster-smoke: 1 compute for 3 tenants, {len(fwd)} forwarded in owner id range")
PY
# Observability plane, checked while the ring is still three nodes
# wide: the federated rollup is the exact sum of the per-node counters,
# the Prometheus rendering labels every node, each node serves >= 2
# time-series samples, a non-owner proxies /jobs/{id}/trace to the id's
# home node, the cluster-assembled trace holds the submitter's forward
# span and the owner's job root in one document, and two frames of the
# top dashboard render every node row.
curl -sf --max-time 10 "http://$CL_ADDR_A/cluster/metrics" > "$CLUSTER_ROOT/federated.json" \
  || { echo "cluster-smoke: GET /cluster/metrics failed" >&2; exit 1; }
python3 - "$CLUSTER_ROOT/federated.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    j = json.load(f)
assert len(j["nodes"]) == 3, f"expected 3 federated nodes, got {len(j['nodes'])}"
assert not j["errors"], f"federation errors: {j['errors']}"
per_node = [n["metrics"]["counters"].get("farm.submitted", 0) for n in j["nodes"]]
total = j["rollup"]["counters"]["farm.submitted"]
assert total == sum(per_node) >= 3, f"rollup {total} != sum of per-node {per_node}"
ords = sorted(n["ordinal"] for n in j["nodes"])
assert ords == [0, 1, 2], f"bad node ordinals {ords}"
print(f"cluster-smoke: federated farm.submitted rollup {total} == sum{per_node}")
PY
CL_FED_PROM=$(curl -sf --max-time 10 "http://$CL_ADDR_B/cluster/metrics?format=prometheus") \
  || { echo "cluster-smoke: federated Prometheus scrape failed" >&2; exit 1; }
for addr in "$CL_ADDR_A" "$CL_ADDR_B" "$CL_ADDR_C"; do
  echo "$CL_FED_PROM" | grep -q "cluster_peers_alive{node=\"$addr\"}" \
    || { echo "cluster-smoke: federated Prometheus lacks node label $addr" >&2; exit 1; }
done
echo "$CL_FED_PROM" | grep -q '^farm_submitted{node="' \
  || { echo "cluster-smoke: no labelled farm_submitted series" >&2; exit 1; }
echo "$CL_FED_PROM" | grep -Eq '^farm_submitted [0-9]+$' \
  || { echo "cluster-smoke: no unlabelled farm_submitted rollup line" >&2; exit 1; }
for addr in "$CL_ADDR_A" "$CL_ADDR_B" "$CL_ADDR_C"; do
  CL_HIST_N=$(curl -sf --max-time 5 "http://$addr/metrics/history?since=0" | grep -c '"seq"' || true)
  [ "$CL_HIST_N" -ge 2 ] || { echo "cluster-smoke: $addr served $CL_HIST_N history samples, want >= 2" >&2; exit 1; }
done
read -r CL_FWD_ID CL_FWD_OWNER CL_FWD_TRACE <<<"$(python3 - "$CLUSTER_ROOT/submit.log" <<'PY'
import json, sys
outcomes = [json.loads(l) for l in open(sys.argv[1]) if l.strip().startswith("{")]
o = next(o for o in outcomes if o.get("forwarded_to"))
print(o["id"], o["forwarded_to"], o["trace_id"])
PY
)"
CL_PROXY_VIA=""
for addr in "$CL_ADDR_A" "$CL_ADDR_B" "$CL_ADDR_C"; do
  [ "$addr" != "$CL_FWD_OWNER" ] && { CL_PROXY_VIA=$addr; break; }
done
curl -sf --max-time 10 "http://$CL_PROXY_VIA/jobs/$CL_FWD_ID/trace" | python3 -c "
import json, sys
evs = json.load(sys.stdin)['traceEvents']
assert any(e['name'] == 'farm.job' for e in evs), 'proxied trace lacks the farm.job root'
print(f'cluster-smoke: non-owner proxied job $CL_FWD_ID trace ({len(evs)} events) from $CL_FWD_OWNER')
" || { echo "cluster-smoke: proxied /jobs/$CL_FWD_ID/trace via $CL_PROXY_VIA failed" >&2; exit 1; }
CL_TRACE_OK=""
for _ in $(seq 1 50); do
  if curl -sf --max-time 10 "http://$CL_ADDR_A/cluster/trace/$CL_FWD_TRACE" \
      > "$CLUSTER_ROOT/merged-trace.json" 2>/dev/null \
    && python3 - "$CLUSTER_ROOT/merged-trace.json" <<'PY' 2>/dev/null
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
evs = doc["traceEvents"]
names = {e["name"] for e in evs}
assert "cluster.forward" in names and "farm.job" in names, sorted(names)
assert doc["otherData"]["nodes"] >= 2, doc["otherData"]
pids = {e["pid"] for e in evs if e["name"] in ("cluster.forward", "farm.job")}
assert len(pids) == 2, f"forward and job root should sit in different node lanes: {pids}"
PY
  then CL_TRACE_OK=1; break; fi
  sleep 0.2
done
[ -n "$CL_TRACE_OK" ] || { cat "$CLUSTER_ROOT/merged-trace.json" >&2; \
  echo "cluster-smoke: merged /cluster/trace/$CL_FWD_TRACE never spanned 2 nodes" >&2; exit 1; }
CL_TOP=$("${RUNNER[@]}" top --farm "$CL_ADDR_A" --iterations 2 --interval-ms 200) \
  || { echo "cluster-smoke: top dashboard exited non-zero" >&2; exit 1; }
echo "$CL_TOP" | grep -q 'lp-farm top — 3 nodes' \
  || { echo "$CL_TOP" >&2; echo "cluster-smoke: top header missing" >&2; exit 1; }
for addr in "$CL_ADDR_A" "$CL_ADDR_B" "$CL_ADDR_C"; do
  echo "$CL_TOP" | grep -q "$addr" \
    || { echo "$CL_TOP" >&2; echo "cluster-smoke: top lacks a row for $addr" >&2; exit 1; }
done
# (3): pin eight unique jobs onto C (forwarded marker bypasses ring
# forwarding), SIGKILL it the moment the 202 lands — acceptance implies
# the batch is durable in C's journal, and one worker cannot have
# drained eight pipeline runs yet.
CL_BODY=""
for sb in 6100 6200 6300 6400 6500 6600 6700 6800; do
  CL_BODY+="{\"program\": \"demo-matrix-2\", \"slice_base\": $sb}"$'\n'
done
curl -sf --max-time 10 -H 'x-lp-forwarded: 1' --data-binary "$CL_BODY" \
  "http://$CL_ADDR_C/jobs" > "$CLUSTER_ROOT/kill-submit.ndjson" \
  || { echo "cluster-smoke: pinned burst to node C failed" >&2; exit 1; }
kill -9 "$CL_PID_C"
CL_IDS=$(python3 -c "
import json
print(' '.join(str(json.loads(l)['id']) for l in open('$CLUSTER_ROOT/kill-submit.ndjson') if l.strip()))
")
CL_DONE=""
for _ in $(seq 1 300); do
  all_done=1
  for id in $CL_IDS; do
    state=$(for addr in "$CL_ADDR_A" "$CL_ADDR_B"; do
      curl -sf --max-time 5 "http://$addr/jobs/$id" 2>/dev/null | python3 -c 'import json,sys
try: print(json.load(sys.stdin).get("state",""))
except Exception: pass' 2>/dev/null
    done | grep -m1 done || true)
    [ "$state" = "done" ] || { all_done=0; break; }
  done
  [ "$all_done" = "1" ] && { CL_DONE=1; break; }
  sleep 0.2
done
[ -n "$CL_DONE" ] || { cat "$CLUSTER_ROOT"/a.log "$CLUSTER_ROOT"/b.log >&2; echo "cluster-smoke: adopted jobs did not complete on a survivor" >&2; exit 1; }
CL_ADOPTED=$(for addr in "$CL_ADDR_A" "$CL_ADDR_B"; do
  curl -sf --max-time 5 "http://$addr/metrics" | sed -n 's/^cluster_adopted \([0-9]*\)$/\1/p'
done | awk '{s+=$1} END {print s+0}')
[ "$CL_ADOPTED" -ge 1 ] || { echo "cluster-smoke: no survivor adopted the dead queue (cluster_adopted=$CL_ADOPTED)" >&2; exit 1; }
ls "$CL_DIR_C"/*.adopted >/dev/null 2>&1 \
  || { ls -la "$CL_DIR_C" >&2; echo "cluster-smoke: dead journal not quarantined" >&2; exit 1; }
curl -sf --max-time 5 "http://$CL_ADDR_A/cluster/healthz" | python3 -c '
import json, sys
h = json.load(sys.stdin)
assert h["ring_nodes"] == 2, h
assert h["peers_dead"] == 1, h
print("cluster-smoke: all adopted jobs done; ring rebalanced to 2 nodes, 1 dead peer")'
"${RUNNER[@]}" shutdown --farm "$CL_ADDR_A" > /dev/null \
  || { echo "cluster-smoke: node A shutdown failed" >&2; exit 1; }
"${RUNNER[@]}" shutdown --farm "$CL_ADDR_B" > /dev/null \
  || { echo "cluster-smoke: node B shutdown failed" >&2; exit 1; }
wait "$CL_PID_A" || { cat "$CLUSTER_ROOT/a.log" >&2; echo "cluster-smoke: node A exited non-zero" >&2; exit 1; }
wait "$CL_PID_B" || { cat "$CLUSTER_ROOT/b.log" >&2; echo "cluster-smoke: node B exited non-zero" >&2; exit 1; }
wait "$CL_PID_C" 2>/dev/null || true
rm -rf "$CLUSTER_ROOT"

echo "== bench-smoke (farm throughput) =="
# Quick variant of the farm-throughput benchmark: asserts one compute per
# unique spec and full dedup of duplicates internally; validate the JSON
# schema here. Writes to target/ so the committed baseline BENCH_farm.json
# is not clobbered.
FARM_SMOKE_OUT="$PWD/target/BENCH_farm.smoke.json"
cargo bench --offline -p lp-bench --bench farm_throughput -- --smoke --out "$FARM_SMOKE_OUT"
[ -s "$FARM_SMOKE_OUT" ] || { echo "farm-bench-smoke: $FARM_SMOKE_OUT missing or empty" >&2; exit 1; }
for key in workers burst unique_specs wall_ms jobs_per_sec dedup queue_latency_us \
            keepalive batch journal_fsyncs journal_transitions smoke; do
  grep -q "\"$key\"" "$FARM_SMOKE_OUT" || { echo "farm-bench-smoke: missing key $key" >&2; exit 1; }
done
for key in submitted computes hits ratio p50 p99 clients reuses batch_posts single_posts; do
  grep -q "\"$key\"" "$FARM_SMOKE_OUT" || { echo "farm-bench-smoke: missing key $key" >&2; exit 1; }
done
# And the committed full-scale baseline keeps the multi-tenant dedup claim
# plus the event-driven data-plane floor: >= 3x the serial-accept
# baseline's 186 jobs/s on the same 48-job burst, connection reuse, and
# group-committed fsyncs strictly below journaled transitions.
python3 - <<'PY'
import json, sys
with open("BENCH_farm.json") as f:
    j = json.load(f)
d = j["dedup"]
if d["computes"] != j["unique_specs"]:
    sys.exit(f"BENCH_farm.json: {d['computes']} computes != {j['unique_specs']} unique specs")
if d["hits"] != d["submitted"] - d["computes"]:
    sys.exit(f"BENCH_farm.json: dedup hits {d['hits']} inconsistent")
if d["ratio"] < 0.5:
    sys.exit(f"BENCH_farm.json: dedup ratio {d['ratio']} < 0.5")
if j["jobs_per_sec"] <= 0 or j["queue_latency_us"]["p99"] < j["queue_latency_us"]["p50"]:
    sys.exit("BENCH_farm.json: implausible throughput/latency numbers")
if j["jobs_per_sec"] < 560:
    sys.exit(f"BENCH_farm.json: jobs_per_sec {j['jobs_per_sec']} < 560 (3x baseline floor)")
if j["keepalive"]["reuses"] <= 0:
    sys.exit("BENCH_farm.json: keep-alive clients never reused a connection")
if j["batch"]["batch_posts"] <= 0 or j["batch"]["single_posts"] <= 0:
    sys.exit("BENCH_farm.json: burst must mix batch and single POSTs")
if not 0 < j["journal_fsyncs"] < j["journal_transitions"]:
    sys.exit(f"BENCH_farm.json: fsyncs {j['journal_fsyncs']} not below transitions {j['journal_transitions']}")
PY

echo "== bench-smoke (farm cluster) =="
# Quick variant of the cluster benchmark: in-process 1/2/3-node rings
# over the real pipeline backend, with the dedup/forwarding/fetch
# invariants asserted inside the bench. Writes to target/ so the
# committed baseline BENCH_cluster.json is not clobbered.
CLUSTER_SMOKE_OUT="$PWD/target/BENCH_cluster.smoke.json"
cargo bench --offline -p lp-bench --bench farm_cluster -- --smoke --out "$CLUSTER_SMOKE_OUT"
[ -s "$CLUSTER_SMOKE_OUT" ] || { echo "cluster-bench-smoke: $CLUSTER_SMOKE_OUT missing or empty" >&2; exit 1; }
for key in burst unique_specs workers_per_node scaling cross_node_fetch dedup_floor federation smoke; do
  grep -q "\"$key\"" "$CLUSTER_SMOKE_OUT" || { echo "cluster-bench-smoke: missing key $key" >&2; exit 1; }
done
# The committed full-scale baseline keeps the cluster claims: identical
# compute count at every ring width (adding nodes never loses dedup),
# the >= 0.8 cluster-wide dedup floor, real forwarding at width > 1, and
# a store-served cross-node fetch path with zero pipeline recomputes.
python3 - <<'PY'
import json, sys
with open("BENCH_cluster.json") as f:
    j = json.load(f)
if j.get("smoke"):
    sys.exit("BENCH_cluster.json: committed baseline must be a full run")
rows = j["scaling"]
if [r["nodes"] for r in rows] != [1, 2, 3]:
    sys.exit(f"BENCH_cluster.json: expected 1/2/3-node rows, got {rows}")
for r in rows:
    if r["computes"] != j["unique_specs"]:
        sys.exit(f"BENCH_cluster.json: {r['nodes']} nodes did {r['computes']} computes "
                 f"!= {j['unique_specs']} unique specs")
    if r["nodes"] > 1 and r["forwarded"] <= 0:
        sys.exit(f"BENCH_cluster.json: {r['nodes']}-node ring never forwarded")
    if r["jobs_per_sec"] <= 0:
        sys.exit(f"BENCH_cluster.json: implausible throughput at {r['nodes']} nodes")
if j["dedup_floor"] < 0.8:
    sys.exit(f"BENCH_cluster.json: dedup floor {j['dedup_floor']} < 0.8")
fetch = j["cross_node_fetch"]
if fetch["pipeline_recomputes"] != 0:
    sys.exit(f"BENCH_cluster.json: cross-node fetch recomputed {fetch['pipeline_recomputes']} times")
if fetch["store_fetch_hits"] < j["unique_specs"]:
    sys.exit(f"BENCH_cluster.json: only {fetch['store_fetch_hits']} store fetch hits "
             f"for {j['unique_specs']} specs")
fed = j["federation"]
if not 0 < fed["p50_us"] <= fed["p99_us"]:
    sys.exit(f"BENCH_cluster.json: implausible federation latency {fed}")
if fed["nodes"] != 3 or fed["scrapes"] <= 0:
    sys.exit(f"BENCH_cluster.json: federation must scrape a 3-node ring: {fed}")
PY

echo "== live-smoke (one-pass online sampling) =="
# One-pass live run with no profiling prequel: the acceptance workload
# must finish with fewer than 40% of its regions simulated in detail
# (i.e. most regions predicted online, never 100% detailed) and a final
# cycle estimate within the pinned 10% error bound of the full-detail
# reference the subcommand computes alongside it.
LIVE_LOG="$PWD/target/ci-live.log"
"${RUNNER[@]}" live -p npb-cg -n 2 --slice-base 2000 --log-level quiet > "$LIVE_LOG" 2>&1 \
  || { cat "$LIVE_LOG" >&2; echo "live-smoke: live run failed" >&2; exit 1; }
grep '^{' "$LIVE_LOG" | tail -n1 | python3 -c "
import json, sys
j = json.loads(sys.stdin.read())
assert j['mode'] == 'live', j
assert j['regions'] > 0 and j['clusters'] > 0, j
assert 0 < j['detailed_regions'] < j['regions'], \
    f'live run must mix detail and prediction: {j[\"detailed_regions\"]}/{j[\"regions\"]}'
assert j['detailed_pct'] < 0.40, \
    f'detailed fraction {j[\"detailed_pct\"]:.3f} breaches the 40% ceiling'
assert j['err_pct'] < 10.0, \
    f'live estimate error {j[\"err_pct\"]:.2f}% breaches the pinned 10% bound'
print(f'live-smoke: {j[\"detailed_regions\"]}/{j[\"regions\"]} regions detailed '
      f'({j[\"detailed_pct\"]*100:.1f}%), err {j[\"err_pct\"]:.2f}% vs full detail')
" || { cat "$LIVE_LOG" >&2; echo "live-smoke: acceptance gate failed" >&2; exit 1; }

echo "== bench-smoke (live sampling) =="
# Quick variant of the live-sampling benchmark (full detail vs two-phase
# vs live on one workload); validate the JSON schema here. Writes to
# target/ so the committed baseline BENCH_live.json is not clobbered.
LIVE_SMOKE_OUT="$PWD/target/BENCH_live.smoke.json"
cargo bench --offline -p lp-bench --bench live_sampling -- --smoke --out "$LIVE_SMOKE_OUT"
[ -s "$LIVE_SMOKE_OUT" ] || { echo "live-bench-smoke: $LIVE_SMOKE_OUT missing or empty" >&2; exit 1; }
for key in slice_base rows smoke workload full two_phase live \
            est_cycles err_pct detailed_regions detailed_pct predicted_cycles; do
  grep -q "\"$key\"" "$LIVE_SMOKE_OUT" || { echo "live-bench-smoke: missing key $key" >&2; exit 1; }
done
# And the committed full-scale baseline keeps the live-mode claims: every
# workload's live estimate within the 10% bound with a sub-100% detailed
# fraction, and the acceptance workload under the 40% ceiling.
python3 - <<'PY'
import json, sys
with open("BENCH_live.json") as f:
    j = json.load(f)
if j.get("smoke"):
    sys.exit("BENCH_live.json: committed baseline must be a full run")
rows = j["rows"]
if len(rows) < 3:
    sys.exit(f"BENCH_live.json: expected >= 3 workloads, got {len(rows)}")
for r in rows:
    live = r["live"]
    if not 0 < live["detailed_regions"] < live["regions"]:
        sys.exit(f"BENCH_live.json: {r['workload']} live run did not mix detail and prediction")
    if live["err_pct"] >= 10.0:
        sys.exit(f"BENCH_live.json: {r['workload']} live err {live['err_pct']}% >= 10%")
cg = next((r for r in rows if r["workload"] == "npb-cg"), None)
if cg is None:
    sys.exit("BENCH_live.json: acceptance workload npb-cg missing")
if cg["live"]["detailed_pct"] >= 0.40:
    sys.exit(f"BENCH_live.json: npb-cg detailed fraction {cg['live']['detailed_pct']} >= 40%")
PY

echo "CI green."
