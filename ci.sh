#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs --offline against the vendored dev-dependency stubs in
# vendor/ — no network access is required (or attempted).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== bench-smoke (analysis cost) =="
# Quick variant of the analysis-cost benchmark: proves the single-pass
# checkpoint generator still replays exactly once (asserted inside the
# bench) and that the emitted JSON is well-formed. Writes to target/ so
# the committed baseline BENCH_analysis.json is never clobbered by CI.
SMOKE_OUT="$PWD/target/BENCH_analysis.smoke.json"
cargo bench --offline -p lp-bench --bench analysis_cost -- --smoke --out "$SMOKE_OUT"
[ -s "$SMOKE_OUT" ] || { echo "bench-smoke: $SMOKE_OUT missing or empty" >&2; exit 1; }
for key in workload regions replay_passes checkpoint_generation clustering_sweep end_to_end; do
  grep -q "\"$key\"" "$SMOKE_OUT" || { echo "bench-smoke: $SMOKE_OUT missing key $key" >&2; exit 1; }
done
grep -q '"replay_passes": 1' "$SMOKE_OUT" || { echo "bench-smoke: replay_passes != 1" >&2; exit 1; }

echo "== store-smoke (artifact store) =="
# Cold run populates a fresh store; warm run must hit and print the
# served-from-store lines; a flipped byte in a cached artifact must be
# detected (store.corrupt / quarantine) and transparently recomputed.
STORE_DIR="$PWD/target/ci-store"
STORE_LOG="$PWD/target/ci-store.log"
rm -rf "$STORE_DIR"
RUNNER=(cargo run --release --offline -q --bin run-looppoint --)
"${RUNNER[@]}" -p demo-matrix-1 -n 2 --slice-base 4000 --store-dir "$STORE_DIR" > "$STORE_LOG" 2>&1 \
  || { cat "$STORE_LOG" >&2; echo "store-smoke: cold run failed" >&2; exit 1; }
grep -Eq 'store: 0 hits, [0-9]+ misses' "$STORE_LOG" || { echo "store-smoke: cold run should only miss" >&2; exit 1; }
COLD_ERR=$(grep 'runtime error' "$STORE_LOG")
"${RUNNER[@]}" -p demo-matrix-1 -n 2 --slice-base 4000 --store-dir "$STORE_DIR" > "$STORE_LOG" 2>&1 \
  || { cat "$STORE_LOG" >&2; echo "store-smoke: warm run failed" >&2; exit 1; }
grep -q 'analysis served from the artifact store' "$STORE_LOG" || { echo "store-smoke: warm run did not hit" >&2; exit 1; }
grep -Eq 'store: [1-9][0-9]* hits, 0 misses' "$STORE_LOG" || { echo "store-smoke: warm run should only hit" >&2; exit 1; }
WARM_ERR=$(grep 'runtime error' "$STORE_LOG")
[ "$COLD_ERR" = "$WARM_ERR" ] || { echo "store-smoke: warm result differs from cold ($COLD_ERR vs $WARM_ERR)" >&2; exit 1; }
# Corrupt one cached artifact in place (flip a mid-file byte) and re-run.
VICTIM=$(ls "$STORE_DIR"/*-clustering.lpa | head -n1)
SIZE=$(wc -c < "$VICTIM")
printf '\x5a' | dd of="$VICTIM" bs=1 seek=$((SIZE / 2)) count=1 conv=notrunc status=none
"${RUNNER[@]}" -p demo-matrix-1 -n 2 --slice-base 4000 --store-dir "$STORE_DIR" > "$STORE_LOG" 2>&1 \
  || { cat "$STORE_LOG" >&2; echo "store-smoke: corrupt-recovery run failed" >&2; exit 1; }
grep -q 'quarantining corrupt artifact' "$STORE_LOG" || { echo "store-smoke: corruption not detected" >&2; exit 1; }
grep -Eq 'store: .* 1 corruptions' "$STORE_LOG" || { echo "store-smoke: store.corrupt not counted" >&2; exit 1; }
ls "$STORE_DIR"/*.corrupt >/dev/null 2>&1 || { echo "store-smoke: no quarantined file" >&2; exit 1; }
RECOVERED_ERR=$(grep 'runtime error' "$STORE_LOG")
[ "$COLD_ERR" = "$RECOVERED_ERR" ] || { echo "store-smoke: recovery result differs from cold" >&2; exit 1; }
rm -rf "$STORE_DIR"

echo "== bench-smoke (store reuse) =="
# Quick variant of the store-reuse benchmark: asserts warm==cold bytewise
# and replay_passes==0 internally; validate the JSON schema here. Writes
# to target/ so the committed baseline BENCH_store.json is not clobbered.
STORE_SMOKE_OUT="$PWD/target/BENCH_store.smoke.json"
cargo bench --offline -p lp-bench --bench store_reuse -- --smoke --out "$STORE_SMOKE_OUT"
[ -s "$STORE_SMOKE_OUT" ] || { echo "store-bench-smoke: $STORE_SMOKE_OUT missing or empty" >&2; exit 1; }
for key in workload nthreads slice_base cold sweep store smoke; do
  grep -q "\"$key\"" "$STORE_SMOKE_OUT" || { echo "store-bench-smoke: missing key $key" >&2; exit 1; }
done
for key in cold_ms warm_ms speedup configs artifacts bytes_raw bytes_stored compression_ratio; do
  grep -q "\"$key\"" "$STORE_SMOKE_OUT" || { echo "store-bench-smoke: missing key $key" >&2; exit 1; }
done
# And the committed full-scale baseline keeps the >= 5x warm speedup claim.
python3 - <<'PY'
import json, sys
with open("BENCH_store.json") as f:
    j = json.load(f)
for section in ("cold", "sweep"):
    s = j[section]["speedup"]
    if s < 5.0:
        sys.exit(f"BENCH_store.json: {section} speedup {s} < 5x")
PY

echo "CI green."
