#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs --offline against the vendored dev-dependency stubs in
# vendor/ — no network access is required (or attempted).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== bench-smoke (analysis cost) =="
# Quick variant of the analysis-cost benchmark: proves the single-pass
# checkpoint generator still replays exactly once (asserted inside the
# bench) and that the emitted JSON is well-formed. Writes to target/ so
# the committed baseline BENCH_analysis.json is never clobbered by CI.
SMOKE_OUT="$PWD/target/BENCH_analysis.smoke.json"
cargo bench --offline -p lp-bench --bench analysis_cost -- --smoke --out "$SMOKE_OUT"
[ -s "$SMOKE_OUT" ] || { echo "bench-smoke: $SMOKE_OUT missing or empty" >&2; exit 1; }
for key in workload regions replay_passes checkpoint_generation clustering_sweep end_to_end; do
  grep -q "\"$key\"" "$SMOKE_OUT" || { echo "bench-smoke: $SMOKE_OUT missing key $key" >&2; exit 1; }
done
grep -q '"replay_passes": 1' "$SMOKE_OUT" || { echo "bench-smoke: replay_passes != 1" >&2; exit 1; }

echo "CI green."
