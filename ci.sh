#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs --offline against the vendored dev-dependency stubs in
# vendor/ — no network access is required (or attempted).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test --workspace --offline -q

echo "CI green."
