//! Reference values the paper reports, for side-by-side printing.
//!
//! These are transcribed from the HPCA 2022 text; bench targets print them
//! next to measured values so the *shape* comparison is explicit.

/// §V-A.1 / abstract: average absolute runtime error, active wait policy,
/// SPEC train, 8 threads.
pub const FIG5_AVG_ERROR_ACTIVE_PCT: f64 = 2.33;

/// §V-A.1: average absolute runtime error, passive wait policy.
pub const FIG5_AVG_ERROR_PASSIVE_PCT: f64 = 2.23;

/// §V-A.2: NPB average absolute error with 8 threads.
pub const FIG6_AVG_ERROR_8T_PCT: f64 = 2.87;

/// §V-A.2: NPB average absolute error with 16 threads.
pub const FIG6_AVG_ERROR_16T_PCT: f64 = 1.78;

/// §V-B: maximum speedup for train inputs.
pub const FIG8_MAX_SPEEDUP_TRAIN: f64 = 801.0;

/// §V-B: average serial speedup, train inputs.
pub const FIG8_AVG_SERIAL_TRAIN: f64 = 9.0;

/// §V-B: average parallel speedup, train inputs.
pub const FIG8_AVG_PARALLEL_TRAIN: f64 = 303.0;

/// §V-B: average serial speedup, ref inputs.
pub const FIG9_AVG_SERIAL_REF: f64 = 244.0;

/// §V-B / abstract: average parallel speedup, ref inputs.
pub const FIG9_AVG_PARALLEL_REF: f64 = 11_587.0;

/// §V-B / abstract: maximum speedup, ref inputs.
pub const FIG9_MAX_SPEEDUP_REF: f64 = 31_253.0;

/// §V-B: NPB 8-thread maximum parallel speedup.
pub const FIG10_MAX_8T: f64 = 2_503.0;

/// §V-B: NPB 8-thread average parallel speedup.
pub const FIG10_AVG_8T: f64 = 1_031.0;

/// §V-B: NPB 16-thread maximum parallel speedup.
pub const FIG10_MAX_16T: f64 = 1_498.0;

/// §V-B: NPB 16-thread average parallel speedup.
pub const FIG10_AVG_16T: f64 = 606.0;

/// §II: average error of naive MT-SimPoint with the active wait policy.
pub const SEC2_NAIVE_ACTIVE_AVG_PCT: f64 = 25.0;

/// §II: maximum error of naive MT-SimPoint with the active wait policy.
pub const SEC2_NAIVE_ACTIVE_MAX_PCT: f64 = 68.44;

/// §II: maximum error of naive MT-SimPoint with the passive wait policy.
pub const SEC2_NAIVE_PASSIVE_MAX_PCT: f64 = 20.0;

/// §V-A.1: constrained-replay runtime error observed for `657.xz_s.2`.
pub const SEC5_CONSTRAINED_XZ_ERROR_PCT: f64 = 19.6;

/// §IV-F: maximum spin-filtered instruction reduction (657.xz_s.2 active).
pub const SEC4_MAX_FILTER_REDUCTION_PCT: f64 = 40.0;

/// Fig. 1 premise: assumed detailed simulation speed.
pub const FIG1_DETAILED_KIPS: f64 = 100.0;

/// §VI: industrial-simulator slowdown the paper cites.
pub const SEC6_SIM_SLOWDOWN: f64 = 10_000.0;
