//! # lp-bench — the experiment harness
//!
//! Shared machinery for the bench targets that regenerate every table and
//! figure of the LoopPoint paper (see `benches/`). Each target is a
//! `harness = false` executable run by `cargo bench`; it prints the same
//! rows/series the paper reports, next to the paper's published values
//! where the paper states them.
//!
//! Absolute numbers are not expected to match (the substrate is a scaled
//! simulator, not the authors' testbed); the *shape* — who wins, by what
//! rough factor, where the crossovers fall — is the reproduction target.
//! `EXPERIMENTS.md` records paper-vs-measured for each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod table;

use looppoint::{
    analyze, error_pct, extrapolate, simulate_representatives,
    simulate_representatives_checkpointed, simulate_whole, speedups, Analysis, LoopPointConfig,
    LoopPointError, Prediction, RegionResult, SpeedupReport,
};
use lp_omp::WaitPolicy;
use lp_sim::SimStats;
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass, WorkloadSpec};
use std::fmt;
use std::sync::Arc;

/// A pipeline failure inside a bench run, carrying which workload and
/// which phase failed so a 30-workload sweep names its culprit instead of
/// panicking with a bare pipeline error.
pub struct BenchError {
    /// The workload that failed.
    pub workload: String,
    /// The pipeline phase that failed (`"analysis"`, `"region
    /// simulation"`, `"full simulation"`).
    pub phase: &'static str,
    /// The underlying pipeline error.
    pub source: LoopPointError,
}

impl BenchError {
    fn new(workload: &str, phase: &'static str) -> impl FnOnce(LoopPointError) -> BenchError {
        let workload = workload.to_string();
        move |source| BenchError {
            workload,
            phase,
            source,
        }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} failed: {}",
            self.workload, self.phase, self.source
        )
    }
}

// Debug delegates to Display so `Result::unwrap` in a bench target dies
// with the full "workload: phase failed: cause" message.
impl fmt::Debug for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Thread count used for the SPEC-like evaluation (the paper's default).
pub const SPEC_THREADS: usize = 8;

/// Default slice base for bench-scale pipelines (per-thread filtered
/// instructions; the paper's 100 M scaled per DESIGN.md §7).
pub const BENCH_SLICE_BASE: u64 = 8_000;

/// Everything measured for one application/policy configuration.
#[derive(Debug)]
pub struct AppEval {
    /// Workload name.
    pub name: String,
    /// Wait policy evaluated.
    pub policy: WaitPolicy,
    /// Team size actually used.
    pub nthreads: usize,
    /// The analysis (slices, clustering, looppoints).
    pub analysis: Analysis,
    /// Per-region simulation results.
    pub results: Vec<RegionResult>,
    /// Extrapolated whole-program metrics.
    pub prediction: Prediction,
    /// Full-application reference simulation.
    pub full: SimStats,
    /// Speedup accounting.
    pub speedup: SpeedupReport,
}

impl AppEval {
    /// Absolute runtime-prediction error in percent (Fig. 5 bars).
    pub fn runtime_error_pct(&self) -> f64 {
        error_pct(self.prediction.total_cycles, self.full.cycles as f64)
    }

    /// Absolute difference in branch MPKI (Fig. 7b bars).
    pub fn branch_mpki_diff(&self) -> f64 {
        (self.prediction.branch_mpki - self.full.branch_mpki()).abs()
    }

    /// Absolute difference in L2 MPKI (Fig. 7c bars).
    pub fn l2_mpki_diff(&self) -> f64 {
        (self.prediction.l2_mpki - self.full.l2_mpki()).abs()
    }

    /// Absolute error in predicted cycle count, percent (Fig. 7a bars).
    pub fn cycles_error_pct(&self) -> f64 {
        self.runtime_error_pct()
    }

    /// The accuracy-attribution report for this evaluation: per-cluster
    /// signed errors (summing exactly to the end-to-end error) split into
    /// representativeness / warmup / extrapolation causes, plus a
    /// self-profile of the spans recorded by `obs`. See
    /// [`looppoint::diagnose`].
    pub fn diag_report(&self, obs: &lp_obs::Observer) -> lp_diag::DiagReport {
        looppoint::diagnose(
            &self.name,
            self.nthreads,
            &self.analysis,
            &self.results,
            Some(&self.full),
            obs,
        )
    }
}

/// The default pipeline configuration for bench runs.
pub fn bench_config() -> LoopPointConfig {
    LoopPointConfig::with_slice_base(BENCH_SLICE_BASE)
}

/// Runs the complete LoopPoint pipeline for one workload: analysis, region
/// simulation (in parallel), extrapolation, full-run reference, speedups.
///
/// # Errors
/// [`BenchError`] naming the workload and the failing phase.
pub fn evaluate_app(
    spec: &WorkloadSpec,
    input: InputClass,
    requested_threads: usize,
    policy: WaitPolicy,
    simcfg: &SimConfig,
) -> Result<AppEval, BenchError> {
    evaluate_app_mode(spec, input, requested_threads, policy, simcfg, false)
}

/// Like [`evaluate_app`], selecting checkpoint-driven region simulation
/// (`checkpointed = true`, two warmup slices per region) — the mode the
/// actual-speedup figures (Fig. 8/10) use.
///
/// # Errors
/// [`BenchError`] naming the workload and the failing phase.
pub fn evaluate_app_mode(
    spec: &WorkloadSpec,
    input: InputClass,
    requested_threads: usize,
    policy: WaitPolicy,
    simcfg: &SimConfig,
    checkpointed: bool,
) -> Result<AppEval, BenchError> {
    let nthreads = spec.effective_threads(requested_threads);
    let program = build(spec, input, requested_threads, policy);
    let analysis = analyze(&program, nthreads, &bench_config())
        .map_err(BenchError::new(spec.name, "analysis"))?;
    // Regions run back-to-back: each region's wall time is then measured
    // without host contention, so the *parallel* speedup (full wall over
    // the largest single region, §V-B's "assuming sufficient parallel
    // resources") is computed from clean per-region times.
    let results = if checkpointed {
        simulate_representatives_checkpointed(&analysis, &program, nthreads, simcfg, 2, false)
            .map_err(BenchError::new(spec.name, "region simulation"))?
    } else {
        simulate_representatives(&analysis, &program, nthreads, simcfg, false)
            .map_err(BenchError::new(spec.name, "region simulation"))?
    };
    let prediction = extrapolate(&results);
    let full = simulate_whole(&program, nthreads, simcfg)
        .map_err(BenchError::new(spec.name, "full simulation"))?;
    let speedup = speedups(&analysis, &results, &full);
    Ok(AppEval {
        name: spec.name.to_string(),
        policy,
        nthreads,
        analysis,
        results,
        prediction,
        full,
        speedup,
    })
}

/// Analysis-only evaluation (for `ref`-scale experiments where, exactly as
/// in the paper, the full detailed reference is impractical and only
/// theoretical speedups are reported).
///
/// # Errors
/// [`BenchError`] naming the workload; the phase is always `"analysis"`.
pub fn analyze_app(
    spec: &WorkloadSpec,
    input: InputClass,
    requested_threads: usize,
    policy: WaitPolicy,
) -> Result<(Arc<lp_isa::Program>, usize, Analysis), BenchError> {
    let nthreads = spec.effective_threads(requested_threads);
    let program = build(spec, input, requested_threads, policy);
    let analysis = analyze(&program, nthreads, &bench_config())
        .map_err(BenchError::new(spec.name, "analysis"))?;
    Ok((program, nthreads, analysis))
}

/// Geometric-mean helper for speedup summaries.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic-mean helper for error summaries.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}
