//! Plain-text table rendering for bench-target output.

/// Prints a boxed experiment title.
pub fn title(id: &str, caption: &str) {
    let line = format!("{id}: {caption}");
    println!();
    println!("{}", "=".repeat(line.len().max(20)));
    println!("{line}");
    println!("{}", "=".repeat(line.len().max(20)));
}

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Formats a float with fixed precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a speedup as `N.Nx`.
pub fn x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(x(3.15), "3.1x");
        assert_eq!(x(314.0), "314x");
    }
}
