//! Cluster scaling benchmark: the same tenant burst through 1-, 2-, and
//! 3-node lp-cluster farms (real HTTP wire path, consistent-hash
//! forwarding, per-node journals and stores, pipeline backend), emitting
//! machine-readable `BENCH_cluster.json`.
//!
//! Per node count the burst is dealt round-robin across the members, the
//! way independent tenants hit whichever node their load balancer picks.
//! Duplicate submissions of one spec land on *different* nodes, so
//! collapsing them to one compute requires the ring: every copy is
//! forwarded to the key's owner, whose farm-level dedup does the rest.
//! The bench asserts that invariant (one compute per unique spec,
//! cluster-wide) before reporting throughput.
//!
//! A final phase measures the second cluster-dedup path: each unique
//! spec is re-submitted to a *non-owner* node with the forwarded marker
//! set, forcing local handling there — the artifact must arrive by store
//! fetch from the owner, with zero recomputes. The full-width ring also
//! times the observability plane: p50/p99 of `GET /cluster/metrics`,
//! which fans out to every peer and merges the rollup per scrape.
//!
//! Reported per node count:
//!
//! * **jobs/sec** — burst size over wall-clock to cluster-wide idle;
//! * **dedup ratio** — submissions answered without a compute;
//! * **forwarded** and **forward-hop p50/p99** — cross-node submissions
//!   and the added latency of the extra hop (first node's histogram).
//!
//! Run via `cargo bench --bench farm_cluster` (`-- --smoke` for the CI
//! gate's quick variant; `--out PATH` to redirect the JSON).

use lp_cluster::{spawn_node, ClusterConfig, NodeSpec, RunningNode};
use lp_farm::{FarmConfig, JobSpec, PipelineBackend, ShutdownMode};
use lp_farm_proto::{FarmClient, SubmitOutcome, FORWARDED_HEADER};
use lp_obs::{json, names, Observer};
use lp_store::Store;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: std::env::var("BENCH_CLUSTER_OUT")
            .unwrap_or_else(|_| "BENCH_cluster.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through; ignore unknown flags
            // so the target stays harness-compatible.
            _ => {}
        }
    }
    args
}

fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    format!("127.0.0.1:{}", l.local_addr().unwrap().port())
}

/// The tenant burst: `repeats` copies of each unique spec, interleaved
/// (A B C A B C ...) so duplicates hit different nodes under
/// round-robin dealing.
fn burst_specs(unique: usize, repeats: usize, slice_base: u64) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for _ in 0..repeats {
        for u in 0..unique {
            specs.push(JobSpec {
                program: format!("demo-matrix-{}", 1 + u % 3),
                ncores: 2,
                slice_base: slice_base + 500 * (u / 3) as u64,
                ..JobSpec::default()
            });
        }
    }
    specs
}

struct Member {
    running: RunningNode,
    obs: Observer,
    addr: String,
}

fn boot(root: &Path, n: usize, workers: usize, capacity: usize) -> Vec<Member> {
    let addrs: Vec<String> = (0..n).map(|_| free_addr()).collect();
    let peers: Vec<NodeSpec> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| NodeSpec {
            addr: a.clone(),
            dir: Some(root.join(format!("farm-{i}"))),
        })
        .collect();
    addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let obs = Observer::enabled();
            let store = Arc::new(
                Store::open(root.join(format!("store-{i}")), obs.clone()).expect("open store"),
            );
            let backend = Arc::new(PipelineBackend::new(Some(Arc::clone(&store)), obs.clone()));
            let running = spawn_node(
                addr,
                ClusterConfig {
                    self_addr: addr.clone(),
                    peers: peers.clone(),
                    heartbeat_ms: 200,
                    ..ClusterConfig::default()
                },
                FarmConfig {
                    workers,
                    queue_capacity: capacity,
                    dir: Some(root.join(format!("farm-{i}"))),
                    ..FarmConfig::default()
                },
                backend,
                Some(store),
                obs.clone(),
            )
            .expect("spawn cluster node");
            Member {
                running,
                obs,
                addr: addr.clone(),
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let (unique, repeats, slice_base, workers) = if args.smoke {
        (3usize, 4usize, 2_000u64, 2usize)
    } else {
        (6, 8, 4_000, 2)
    };
    let total = unique * repeats;
    println!(
        "farm-cluster benchmark: {total} jobs ({unique} unique x {repeats} tenants) at 1/2/3 nodes {}",
        if args.smoke { "(smoke)" } else { "" }
    );

    let bench_root = std::env::temp_dir().join(format!("lp-bench-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bench_root);

    let mut scale_rows: Vec<String> = Vec::new();
    let mut fetch_row = String::new();
    let mut federation_row = String::new();
    for n in [1usize, 2, 3] {
        let root = bench_root.join(format!("n{n}"));
        std::fs::create_dir_all(&root).expect("create bench dirs");
        let members = boot(&root, n, workers, total + 8);

        let mut clients: Vec<FarmClient> = members
            .iter()
            .map(|m| {
                let mut c = FarmClient::connect(m.addr.clone());
                c.set_timeout(Duration::from_secs(30));
                c
            })
            .collect();

        // Round-robin burst: tenant i hits node i mod n.
        let t0 = Instant::now();
        let mut accepted = 0usize;
        for (i, spec) in burst_specs(unique, repeats, slice_base)
            .into_iter()
            .enumerate()
        {
            let (status, outcomes) = clients[i % n]
                .submit(std::slice::from_ref(&spec), None)
                .expect("burst submit");
            assert_eq!(status, 202, "burst must be accepted");
            assert!(outcomes[0].id().is_some(), "burst line must carry an id");
            accepted += 1;
        }
        for m in &members {
            assert!(
                m.running.farm.wait_idle(Duration::from_secs(600)),
                "cluster did not drain"
            );
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(accepted, total);

        // Cluster-wide dedup invariant: one compute per unique spec no
        // matter how many nodes the duplicates were sprayed across.
        let computes: u64 = members
            .iter()
            .map(|m| m.obs.counter(names::FARM_COMPUTES).get())
            .sum();
        assert_eq!(
            computes as usize, unique,
            "{n}-node cluster must compute each unique spec exactly once"
        );
        let forwarded: u64 = members
            .iter()
            .map(|m| m.obs.counter(names::CLUSTER_FORWARDED).get())
            .sum();
        if n > 1 {
            assert!(forwarded > 0, "multi-node burst must cross nodes");
        }
        let (hop_p50, hop_p99) = members[0]
            .obs
            .snapshot()
            .histograms
            .get(names::CLUSTER_FORWARD_US)
            .filter(|hop| hop.count > 0)
            .map_or((0, 0), |hop| (hop.p50() as u64, hop.p99() as u64));
        let jobs_per_sec = total as f64 / (wall_ms / 1e3).max(1e-9);
        let dedup_ratio = (total - unique) as f64 / total as f64;
        println!(
            "  {n} node(s): {total} jobs in {wall_ms:9.2} ms   {jobs_per_sec:8.2} jobs/s   \
             {computes} computes ({:.0}% deduped)   {forwarded} forwarded   \
             forward hop p50 {hop_p50} us / p99 {hop_p99} us",
            dedup_ratio * 100.0
        );
        scale_rows.push(format!(
            "{{\"nodes\": {n}, \"wall_ms\": {wall_ms:.3}, \"jobs_per_sec\": {jobs_per_sec:.3}, \
             \"computes\": {computes}, \"dedup_ratio\": {dedup_ratio:.4}, \
             \"forwarded\": {forwarded}, \
             \"forward_hop_us\": {{\"p50\": {hop_p50}, \"p99\": {hop_p99}}}}}"
        ));

        // At full width, measure the second dedup path: force each
        // unique spec onto a non-owner node (forwarded marker pins it
        // there) — the summary must arrive by store fetch, not compute.
        if n == 3 {
            let before: u64 = members
                .iter()
                .map(|m| m.obs.counter(names::FARM_COMPUTES).get())
                .sum();
            let misses_before: u64 = members
                .iter()
                .map(|m| m.obs.counter(names::CLUSTER_FETCH_MISSES).get())
                .sum();
            let mut fetch_served = 0usize;
            for (i, spec) in burst_specs(unique, 1, slice_base).into_iter().enumerate() {
                // Submitting the same spec everywhere guarantees at
                // least n-1 non-owner nodes see it; round-robin start
                // point spreads the load.
                for k in 0..n {
                    let (status, outcomes) = clients[(i + k) % n]
                        .submit_with(
                            std::slice::from_ref(&spec),
                            None,
                            &[(FORWARDED_HEADER.to_string(), "1".to_string())],
                        )
                        .expect("forced-local submit");
                    assert_eq!(status, 202);
                    if let SubmitOutcome::Accepted { .. } = &outcomes[0] {
                        fetch_served += 1;
                    }
                }
            }
            for m in &members {
                assert!(m.running.farm.wait_idle(Duration::from_secs(600)));
            }
            let after: u64 = members
                .iter()
                .map(|m| m.obs.counter(names::FARM_COMPUTES).get())
                .sum();
            // FARM_COMPUTES counts farm-level executes, which fire on
            // the first submission to each non-owner farm even when the
            // backend answers from the store. The cluster invariants are
            // therefore: exactly (n-1) executes per unique spec (the
            // owner's farm dedups outright), every one of them satisfied
            // by the store (fetch hit or prior replication — zero new
            // fetch misses means none fell through to the pipeline).
            let non_owner_executes = (n as u64 - 1) * unique as u64;
            assert_eq!(
                after - before,
                non_owner_executes,
                "each unique spec must execute once per non-owner farm and dedup on the owner"
            );
            let misses_after: u64 = members
                .iter()
                .map(|m| m.obs.counter(names::CLUSTER_FETCH_MISSES).get())
                .sum();
            assert_eq!(
                misses_after, misses_before,
                "every non-owner execute must be served from the store, not recomputed"
            );
            let fetch_hits: u64 = members
                .iter()
                .map(|m| m.obs.counter(names::CLUSTER_FETCH_HITS).get())
                .sum();
            assert!(
                fetch_hits >= unique as u64,
                "nodes outside the replica set must fetch from the owner \
                 (got {fetch_hits} hits for {unique} specs)"
            );
            println!(
                "  fetch path: {fetch_served} forced-local submissions, \
                 {non_owner_executes} non-owner executes, {fetch_hits} store fetch hits, \
                 0 pipeline recomputes"
            );
            fetch_row = format!(
                "{{\"submissions\": {fetch_served}, \"non_owner_executes\": {non_owner_executes}, \
                 \"store_fetch_hits\": {fetch_hits}, \"pipeline_recomputes\": 0}}"
            );

            // Observability-plane cost at full width: each federated
            // scrape fans GET /metrics.json out to both peers and merges
            // the rollup, so the latency distribution bounds how hard a
            // dashboard can poll the ring. Round-robin the entry node the
            // way `top` followers would.
            let scrapes = if args.smoke { 8usize } else { 32 };
            let mut fed_lat_us: Vec<u64> = Vec::with_capacity(scrapes);
            for s in 0..scrapes {
                let f0 = Instant::now();
                let doc = clients[s % n]
                    .cluster_metrics()
                    .expect("federated metrics scrape");
                fed_lat_us.push(f0.elapsed().as_micros() as u64);
                let nodes_seen = doc
                    .get("nodes")
                    .and_then(json::Value::as_arr)
                    .map_or(0, |a| a.len());
                assert_eq!(nodes_seen, n, "every scrape must federate the full ring");
            }
            fed_lat_us.sort_unstable();
            let fed_p50 = fed_lat_us[scrapes / 2];
            let fed_p99 = fed_lat_us[(scrapes * 99 / 100).min(scrapes - 1)];
            println!(
                "  federation: {scrapes} /cluster/metrics scrapes across {n} nodes   \
                 p50 {fed_p50} us / p99 {fed_p99} us"
            );
            federation_row = format!(
                "{{\"nodes\": {n}, \"scrapes\": {scrapes}, \
                 \"p50_us\": {fed_p50}, \"p99_us\": {fed_p99}}}"
            );
        }

        for m in members {
            m.running.shutdown(ShutdownMode::Drain);
        }
    }

    let dedup_floor = (total - unique) as f64 / total as f64;
    let json_text = format!(
        "{{\n  \"burst\": {total},\n  \"unique_specs\": {unique},\n  \"slice_base\": {slice_base},\n  \
         \"workers_per_node\": {workers},\n  \"scaling\": [\n    {}\n  ],\n  \
         \"cross_node_fetch\": {},\n  \"federation\": {},\n  \
         \"dedup_floor\": {dedup_floor:.4},\n  \"smoke\": {}\n}}\n",
        scale_rows.join(",\n    "),
        if fetch_row.is_empty() { "null".to_string() } else { fetch_row },
        if federation_row.is_empty() { "null".to_string() } else { federation_row },
        args.smoke
    );
    // Self-validate before writing: the committed baseline and the CI
    // gate both rely on this file being well-formed.
    let parsed = json::parse(&json_text).expect("benchmark JSON must parse");
    for key in [
        "burst",
        "unique_specs",
        "scaling",
        "cross_node_fetch",
        "federation",
        "dedup_floor",
    ] {
        assert!(parsed.get(key).is_some(), "missing key {key}");
    }
    assert_eq!(
        parsed
            .get("scaling")
            .and_then(json::Value::as_arr)
            .map(|rows| rows.len()),
        Some(3),
        "one scaling row per node count"
    );
    std::fs::write(&args.out, &json_text).expect("write BENCH_cluster.json");
    println!("\nwrote {}", args.out);
    let _ = std::fs::remove_dir_all(&bench_root);
}
