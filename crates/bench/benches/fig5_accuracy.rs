//! Fig. 5: runtime prediction errors of SPEC-like applications (train
//! inputs, 8 threads) for unconstrained simulation.
//!
//! (a) active and passive wait policies on the out-of-order machine;
//! (b) the same looppoints simulated on an in-order core — the
//!     microarchitecture-portability study (analysis is done once and
//!     reused, exactly as the paper argues it can be).

use looppoint::{error_pct, extrapolate, simulate_representatives, simulate_whole};
use lp_bench::paper;
use lp_bench::table::{f, title, Table};
use lp_bench::{analyze_app, evaluate_app, mean, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{spec_workloads, InputClass};

fn main() {
    title(
        "Fig. 5a",
        "Runtime prediction error %, SPEC train, 8 threads, out-of-order (unconstrained)",
    );
    let ooo = SimConfig::gainestown(SPEC_THREADS);
    let mut t = Table::new(&["Application", "active %", "passive %"]);
    let mut active_errs = Vec::new();
    let mut passive_errs = Vec::new();
    for spec in spec_workloads() {
        let ea = evaluate_app(
            &spec,
            InputClass::Train,
            SPEC_THREADS,
            WaitPolicy::Active,
            &ooo,
        )
        .unwrap();
        let ep = evaluate_app(
            &spec,
            InputClass::Train,
            SPEC_THREADS,
            WaitPolicy::Passive,
            &ooo,
        )
        .unwrap();
        active_errs.push(ea.runtime_error_pct());
        passive_errs.push(ep.runtime_error_pct());
        t.row(&[
            spec.name.to_string(),
            f(ea.runtime_error_pct(), 2),
            f(ep.runtime_error_pct(), 2),
        ]);
    }
    t.row(&[
        "AVERAGE (measured)".to_string(),
        f(mean(active_errs.iter().copied()), 2),
        f(mean(passive_errs.iter().copied()), 2),
    ]);
    t.row(&[
        "AVERAGE (paper)".to_string(),
        f(paper::FIG5_AVG_ERROR_ACTIVE_PCT, 2),
        f(paper::FIG5_AVG_ERROR_PASSIVE_PCT, 2),
    ]);
    t.print();

    title(
        "Fig. 5b",
        "Same looppoints, in-order core: microarchitecture portability",
    );
    let inorder = SimConfig::gainestown_inorder(SPEC_THREADS);
    let mut t = Table::new(&["Application", "in-order error %"]);
    let mut errs = Vec::new();
    for spec in spec_workloads() {
        // One analysis, reused for the other microarchitecture.
        let (program, nthreads, analysis) =
            analyze_app(&spec, InputClass::Train, SPEC_THREADS, WaitPolicy::Passive).unwrap();
        let results =
            simulate_representatives(&analysis, &program, nthreads, &inorder, true).unwrap();
        let prediction = extrapolate(&results);
        let full = simulate_whole(&program, nthreads, &inorder).unwrap();
        let err = error_pct(prediction.total_cycles, full.cycles as f64);
        errs.push(err);
        t.row(&[spec.name.to_string(), f(err, 2)]);
    }
    t.row(&[
        "AVERAGE (measured)".to_string(),
        f(mean(errs.iter().copied()), 2),
    ]);
    t.print();
    println!("\nPaper shape: looppoints chosen once remain accurate across core models.");
}
