//! Table III: SPEC CPU2017 speed synchronization primitives used.

use lp_bench::table::{title, Table};
use lp_workloads::spec_workloads;

fn yn(b: bool) -> String {
    if b {
        "Y".to_string()
    } else {
        String::new()
    }
}

fn main() {
    title(
        "Table III",
        "Synchronization primitives used (sta4=static for, dyn4=dynamic for, bar=barrier, \
         ma=master, si=single, red=reduction, at=atomic, lck=lock)",
    );
    let mut t = Table::new(&[
        "Application",
        "sta4",
        "dyn4",
        "bar",
        "ma",
        "si",
        "red",
        "at",
        "lck",
    ]);
    for w in spec_workloads() {
        let s = w.sync;
        t.row(&[
            w.name.to_string(),
            yn(s.static_for),
            yn(s.dynamic_for),
            yn(s.barrier),
            yn(s.master),
            yn(s.single),
            yn(s.reduction),
            yn(s.atomic),
            yn(s.lock),
        ]);
    }
    t.print();
    println!("\nNote: 657.xz_s uses no barriers at all (BarrierPoint-unsuitable, Fig. 9).");
}
