//! Fig. 3: per-thread instruction share per slice — homogeneous
//! applications keep near-equal shares; 657.xz_s.2 does not, which is why
//! BBVs are concatenated per thread before clustering.

use lp_bench::analyze_app;
use lp_bench::table::{f, title, Table};
use lp_omp::WaitPolicy;
use lp_workloads::InputClass;

fn share_table(name: &str) {
    let spec = lp_workloads::find(name).unwrap();
    let (_p, nthreads, analysis) =
        analyze_app(&spec, InputClass::Train, 8, WaitPolicy::Passive).unwrap();
    println!("\n{name} ({nthreads} threads): per-slice per-thread share of filtered instructions");
    let mut headers: Vec<String> = vec!["slice".to_string()];
    headers.extend((0..nthreads).map(|t| format!("t{t}")));
    headers.push("spread".to_string());
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&href);
    for s in &analysis.profile.slices {
        let total: u64 = s.per_thread_insts.iter().sum();
        if total == 0 {
            continue;
        }
        let shares: Vec<f64> = s
            .per_thread_insts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect();
        let max = shares.iter().cloned().fold(0.0, f64::max);
        let min = shares.iter().cloned().fold(1.0, f64::min);
        let mut row = vec![s.index.to_string()];
        row.extend(shares.iter().map(|v| f(*v, 3)));
        row.push(f(max - min, 3));
        t.row(&row);
    }
    t.print();
}

fn main() {
    title(
        "Fig. 3",
        "Variation in per-thread instruction share per slice (heterogeneity)",
    );
    share_table("603.bwaves_s.1"); // homogeneous
    share_table("657.xz_s.2"); // clearly non-homogeneous, as in the paper
    println!(
        "\nPaper shape: xz_s.2's shares diverge strongly across slices; the concatenated\n\
         per-thread BBVs capture this for clustering."
    );
}
