//! Table I: the primary characteristics of the simulated system.

use lp_bench::table::{title, Table};
use lp_uarch::SimConfig;

fn main() {
    title(
        "Table I",
        "The primary characteristics of the simulated system",
    );
    let mut t = Table::new(&["Component", "Features"]);
    for (component, features) in SimConfig::gainestown(8).table_rows() {
        t.row(&[component, features]);
    }
    t.print();

    println!("\nVariant configurations used in the evaluation:");
    let mut t = Table::new(&["Config", "Core model", "Cores", "Purpose"]);
    for (cfg, purpose) in [
        (SimConfig::gainestown(8), "Fig. 5a/7/8 target machine"),
        (SimConfig::gainestown(16), "Fig. 6/10 16-thread runs"),
        (
            SimConfig::gainestown_inorder(8),
            "Fig. 5b microarchitecture-portability study",
        ),
        (
            SimConfig::recording_host(8),
            "pinball recording host (constrained replay)",
        ),
    ] {
        t.row(&[
            cfg.name.clone(),
            cfg.core.name().to_string(),
            cfg.ncores.to_string(),
            purpose.to_string(),
        ]);
    }
    t.print();
}
