//! §II: the naive multi-threaded adaptation of SimPoint — fixed global
//! instruction-count slices, no spin filtering — mispredicts badly,
//! especially under the active wait policy (paper: avg 25%, up to 68.44%
//! active; up to 20% passive).

use looppoint::baselines::{analyze_naive, extrapolate_naive, simulate_naive_regions};
use looppoint::{error_pct, simulate_whole};
use lp_bench::paper;
use lp_bench::table::{f, title, Table};
use lp_bench::{analyze_app, mean, BENCH_SLICE_BASE, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{spec_workloads, InputClass};

fn main() {
    title(
        "Sec. II",
        "Naive MT-SimPoint (instruction-count slices, unfiltered) runtime error %",
    );
    let cfg = SimConfig::gainestown(SPEC_THREADS);
    let mut t = Table::new(&["Application", "active %", "passive %"]);
    let mut act = Vec::new();
    let mut pas = Vec::new();
    for spec in spec_workloads() {
        let mut errs = [0.0f64; 2];
        for (i, policy) in [WaitPolicy::Active, WaitPolicy::Passive]
            .into_iter()
            .enumerate()
        {
            let (program, nthreads, analysis) =
                analyze_app(&spec, InputClass::Train, SPEC_THREADS, policy).unwrap();
            let slice_size = BENCH_SLICE_BASE * nthreads as u64;
            let naive = analyze_naive(
                &analysis.pinball,
                &program,
                &analysis.dcfg,
                slice_size,
                &Default::default(),
                u64::MAX,
            )
            .unwrap();
            let results =
                simulate_naive_regions(&naive, &program, nthreads, &cfg, u64::MAX).unwrap();
            let predicted = extrapolate_naive(&results);
            let full = simulate_whole(&program, nthreads, &cfg).unwrap();
            errs[i] = error_pct(predicted, full.cycles as f64);
        }
        act.push(errs[0]);
        pas.push(errs[1]);
        t.row(&[spec.name.to_string(), f(errs[0], 2), f(errs[1], 2)]);
    }
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    t.row(&[
        "AVERAGE (measured)".to_string(),
        f(mean(act.iter().copied()), 2),
        f(mean(pas.iter().copied()), 2),
    ]);
    t.row(&[
        "MAX (measured)".to_string(),
        f(max(&act), 2),
        f(max(&pas), 2),
    ]);
    t.print();
    println!(
        "\nPaper reference: active avg ~{}%, max {}%; passive up to {}%.\n\
         Shape: active ≫ passive, both well above LoopPoint's ~2% (Fig. 5).",
        paper::SEC2_NAIVE_ACTIVE_AVG_PCT,
        paper::SEC2_NAIVE_ACTIVE_MAX_PCT,
        paper::SEC2_NAIVE_PASSIVE_MAX_PCT
    );
}
