//! Fig. 9: LoopPoint vs BarrierPoint *theoretical* speedups for ref
//! inputs (passive wait policy). As in the paper, no full detailed
//! reference run is attempted at ref scale — these are instruction-count
//! reductions from the up-front analysis alone.

use looppoint::baselines::analyze_barrierpoint;
use lp_bench::paper;
use lp_bench::table::{title, x, Table};
use lp_bench::{analyze_app, geomean, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_workloads::{spec_workloads, InputClass};

fn main() {
    title(
        "Fig. 9",
        "LoopPoint vs BarrierPoint theoretical speedup (SPEC ref, passive)",
    );
    let mut t = Table::new(&[
        "Application",
        "LP serial",
        "LP parallel",
        "BP serial",
        "BP parallel",
        "barriers",
    ]);
    let mut lp_s = Vec::new();
    let mut lp_p = Vec::new();
    let mut bp_s = Vec::new();
    let mut bp_p = Vec::new();
    for spec in spec_workloads() {
        let (program, _n, analysis) =
            analyze_app(&spec, InputClass::Ref, SPEC_THREADS, WaitPolicy::Passive).unwrap();
        let total = analysis.profile.total_filtered as f64;
        let sum: u64 = analysis.looppoints.iter().map(|r| r.filtered_insts).sum();
        let max = analysis
            .looppoints
            .iter()
            .map(|r| r.filtered_insts)
            .max()
            .unwrap_or(1);
        let lp_serial = total / sum.max(1) as f64;
        let lp_parallel = total / max.max(1) as f64;

        let bp = analyze_barrierpoint(
            &analysis.pinball,
            &program,
            std::sync::Arc::new(analysis.dcfg),
            &Default::default(),
            u64::MAX,
        )
        .unwrap();

        lp_s.push(lp_serial);
        lp_p.push(lp_parallel);
        bp_s.push(bp.theoretical_serial());
        bp_p.push(bp.theoretical_parallel());
        t.row(&[
            spec.name.to_string(),
            x(lp_serial),
            x(lp_parallel),
            x(bp.theoretical_serial()),
            x(bp.theoretical_parallel()),
            bp.barriers.to_string(),
        ]);
    }
    t.row(&[
        "GEOMEAN (measured)".to_string(),
        x(geomean(lp_s.iter().copied())),
        x(geomean(lp_p.iter().copied())),
        x(geomean(bp_s.iter().copied())),
        x(geomean(bp_p.iter().copied())),
        String::new(),
    ]);
    t.print();
    println!(
        "\nPaper reference (real-scale): LoopPoint ref avg serial {}x / parallel {}x, max {}x;\n\
         BarrierPoint lags wherever inter-barrier regions are huge (638.imagick-like) or\n\
         absent (657.xz). Our ~1000x-smaller inputs shrink absolute factors; the per-app\n\
         LoopPoint-vs-BarrierPoint ordering is the reproduced shape.",
        paper::FIG9_AVG_SERIAL_REF,
        paper::FIG9_AVG_PARALLEL_REF,
        paper::FIG9_MAX_SPEEDUP_REF
    );
}
