//! Ablations of the design choices DESIGN.md calls out: slice size, maxK,
//! the spin filter, warmup, and projection dimensionality.

use looppoint::{
    analyze, error_pct, extrapolate, simulate_representatives, simulate_representatives_opts,
    simulate_whole, LoopPointConfig,
};
use lp_bench::table::{f, title, Table};
use lp_bench::SPEC_THREADS;
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, InputClass};

fn eval_app(app: &str, cfg: &LoopPointConfig, policy: WaitPolicy, warmup: bool) -> (f64, usize) {
    let spec = lp_workloads::find(app).unwrap();
    let n = spec.effective_threads(SPEC_THREADS);
    let program = build(&spec, InputClass::Train, SPEC_THREADS, policy);
    let simcfg = SimConfig::gainestown(SPEC_THREADS);
    let analysis = analyze(&program, n, cfg).unwrap();
    let results = if warmup {
        simulate_representatives(&analysis, &program, n, &simcfg, true).unwrap()
    } else {
        simulate_representatives_opts(&analysis, &program, n, &simcfg, true, false).unwrap()
    };
    let prediction = extrapolate(&results);
    let full = simulate_whole(&program, n, &simcfg).unwrap();
    (
        error_pct(prediction.total_cycles, full.cycles as f64),
        analysis.looppoints.len(),
    )
}

fn eval(cfg: &LoopPointConfig, policy: WaitPolicy, warmup: bool) -> (f64, usize) {
    eval_app("627.cam4_s.1", cfg, policy, warmup)
}

fn main() {
    title("Ablations", "train inputs, 8 threads");

    println!("\n(a) slice size sweep (per-thread filtered instructions):");
    let mut t = Table::new(&["slice base", "error %", "regions"]);
    for base in [2_000u64, 4_000, 8_000, 16_000, 32_000] {
        let cfg = LoopPointConfig::with_slice_base(base);
        let (err, k) = eval(&cfg, WaitPolicy::Passive, true);
        t.row(&[base.to_string(), f(err, 2), k.to_string()]);
    }
    t.print();
    println!("shape: very small slices are warmup/aliasing-sensitive; very large ones\nunder-sample phases (§III-B's 'sufficiently large' argument).");

    println!("\n(b) maxK sweep:");
    let mut t = Table::new(&["maxK", "error %", "regions"]);
    for max_k in [2usize, 5, 10, 50] {
        let mut cfg = LoopPointConfig::with_slice_base(8_000);
        cfg.simpoint.max_k = max_k;
        let (err, k) = eval(&cfg, WaitPolicy::Passive, true);
        t.row(&[max_k.to_string(), f(err, 2), k.to_string()]);
    }
    t.print();

    println!("\n(c) spin filter on/off (active wait policy, barrier/lock-heavy 644.nab_s.1):");
    let mut t = Table::new(&["filter", "error %", "regions"]);
    for filter in [true, false] {
        let mut cfg = LoopPointConfig::with_slice_base(8_000);
        cfg.filter_spin = filter;
        let (err, k) = eval_app("644.nab_s.1", &cfg, WaitPolicy::Active, true);
        t.row(&[filter.to_string(), f(err, 2), k.to_string()]);
    }
    t.print();
    println!("shape: disabling the §IV-F filter lets spin instructions pollute BBVs,\nslice targets, and multipliers under the active policy.");

    println!("\n(d) warmup on/off:");
    let mut t = Table::new(&["warmup", "error %"]);
    for warm in [true, false] {
        let cfg = LoopPointConfig::with_slice_base(8_000);
        let (err, _) = eval(&cfg, WaitPolicy::Passive, warm);
        t.row(&[warm.to_string(), f(err, 2)]);
    }
    t.print();
    println!("shape: cold microarchitectural state overstates region cost (§III-F).");

    println!("\n(e) varying-length intervals (§III-B extension):");
    let mut t = Table::new(&["policy", "error %", "regions"]);
    for (name, policy) in [
        ("fixed", lp_bbv::SlicePolicy::Fixed),
        ("varying", lp_bbv::SlicePolicy::Varying),
    ] {
        let mut cfg = LoopPointConfig::with_slice_base(8_000);
        cfg.slice_policy = policy;
        let (err, k) = eval(&cfg, WaitPolicy::Passive, true);
        t.row(&[name.to_string(), f(err, 2), k.to_string()]);
    }
    t.print();

    println!("\n(f) projection dimensionality:");
    let mut t = Table::new(&["dims", "error %", "regions"]);
    for dims in [4usize, 16, 100, 400] {
        let mut cfg = LoopPointConfig::with_slice_base(8_000);
        cfg.simpoint.proj_dims = dims;
        let (err, k) = eval(&cfg, WaitPolicy::Passive, true);
        t.row(&[dims.to_string(), f(err, 2), k.to_string()]);
    }
    t.print();
}
