//! Fig. 6: NPB runtime prediction errors with 8 and 16 threads (passive
//! wait policy, class C inputs) — LoopPoint supports varying the thread
//! count, re-profiling per team size as §III requires.

use lp_bench::paper;
use lp_bench::table::{f, title, Table};
use lp_bench::{evaluate_app, mean};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{npb_workloads, InputClass};

fn main() {
    title(
        "Fig. 6",
        "NPB runtime prediction error %, class C, passive, 8 vs 16 threads",
    );
    let mut t = Table::new(&["Kernel", "8 threads %", "16 threads %"]);
    let mut e8 = Vec::new();
    let mut e16 = Vec::new();
    for spec in npb_workloads() {
        let r8 = evaluate_app(
            &spec,
            InputClass::NpbC,
            8,
            WaitPolicy::Passive,
            &SimConfig::gainestown(8),
        )
        .unwrap();
        let r16 = evaluate_app(
            &spec,
            InputClass::NpbC,
            16,
            WaitPolicy::Passive,
            &SimConfig::gainestown(16),
        )
        .unwrap();
        e8.push(r8.runtime_error_pct());
        e16.push(r16.runtime_error_pct());
        t.row(&[
            spec.name.to_string(),
            f(r8.runtime_error_pct(), 2),
            f(r16.runtime_error_pct(), 2),
        ]);
    }
    t.row(&[
        "AVERAGE (measured)".to_string(),
        f(mean(e8.iter().copied()), 2),
        f(mean(e16.iter().copied()), 2),
    ]);
    t.row(&[
        "AVERAGE (paper)".to_string(),
        f(paper::FIG6_AVG_ERROR_8T_PCT, 2),
        f(paper::FIG6_AVG_ERROR_16T_PCT, 2),
    ]);
    t.print();
}
