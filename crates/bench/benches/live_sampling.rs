//! Live-sampling benchmark: one-pass online sampling (Pac-Sim-style)
//! against both baselines, emitting a machine-readable `BENCH_live.json`.
//!
//! For each workload, three runs over the identical program:
//!
//! 1. **Full detail** — `simulate_whole`, the ground truth (and the cost
//!    ceiling);
//! 2. **Two-phase** — the classic LoopPoint pipeline (`run_job`): a
//!    profiling prequel, clustering, then representative simulation;
//! 3. **Live** — `analyze_live`: no prequel, regions classified online,
//!    unmatched regions simulated in detail from warm checkpoints,
//!    matched regions predicted from their cluster's last detailed IPC.
//!
//! The JSON records, per workload, each mode's cycle estimate, error
//! versus full detail, wall-clock, and — for live — the detailed-region
//! fraction the acceptance gate pins (< 40%). Run via `cargo bench
//! --bench live_sampling` (`-- --smoke` for the CI gate's single-workload
//! variant; `--out PATH` to redirect the JSON).

use looppoint::{error_pct, run_job, simulate_whole, LiveConfig, LoopPointConfig, SimOptions};
use lp_obs::json;
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, matrix_demo, InputClass, WorkloadSpec};
use std::time::Instant;

const NTHREADS: usize = 2;
const SLICE_BASE: u64 = 2_000;
const WARMUP_SLICES: usize = 2;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: std::env::var("BENCH_LIVE_OUT").unwrap_or_else(|_| "BENCH_live.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through; ignore unknown flags so
            // the target stays harness-compatible.
            _ => {}
        }
    }
    args
}

fn resolve(name: &str) -> Option<WorkloadSpec> {
    match name {
        "demo-matrix-1" => Some(matrix_demo(1)),
        "demo-matrix-2" => Some(matrix_demo(2)),
        "demo-matrix-3" => Some(matrix_demo(3)),
        other => lp_workloads::find(other),
    }
}

fn main() {
    let args = parse_args();
    let workloads: &[&str] = if args.smoke {
        &["npb-cg"]
    } else {
        &["npb-cg", "demo-matrix-3", "npb-ft"]
    };

    println!(
        "live-sampling benchmark: {} threads | slice base {SLICE_BASE} {}",
        NTHREADS,
        if args.smoke { "(smoke)" } else { "" }
    );

    let mut rows = String::new();
    for (i, name) in workloads.iter().enumerate() {
        let spec = resolve(name).expect("bench workload exists");
        let nthreads = spec.effective_threads(NTHREADS);
        let program = build(&spec, InputClass::Test, NTHREADS, WaitPolicy::Passive);
        let simcfg = SimConfig::gainestown(nthreads.max(NTHREADS));

        // 1. Ground truth.
        let t = Instant::now();
        let full = simulate_whole(&program, nthreads, &simcfg).unwrap();
        let full_ms = t.elapsed().as_secs_f64() * 1e3;

        // 2. Two-phase LoopPoint.
        let mut cfg = LoopPointConfig::with_slice_base(SLICE_BASE);
        cfg.max_steps = looppoint::DEFAULT_MAX_STEPS;
        let t = Instant::now();
        let two_phase = run_job(
            &program,
            nthreads,
            &cfg,
            &simcfg,
            &SimOptions::default(),
            WARMUP_SLICES,
            None,
        )
        .unwrap();
        let two_phase_ms = t.elapsed().as_secs_f64() * 1e3;
        let two_phase_err = error_pct(two_phase.predicted_cycles, full.cycles as f64);

        // 3. Live (one pass, online).
        let live_cfg = LiveConfig::with_slice_base(SLICE_BASE);
        let t = Instant::now();
        let live =
            looppoint::analyze_live(&program, nthreads, &live_cfg, &simcfg, &mut |_| {}).unwrap();
        let live_ms = t.elapsed().as_secs_f64() * 1e3;
        let live_err = error_pct(live.est_total_cycles, full.cycles as f64);

        println!(
            "  {name:<16} full {:>9} cyc ({full_ms:7.1} ms) | two-phase err {two_phase_err:5.2}% ({two_phase_ms:7.1} ms) | live err {live_err:5.2}%, {:.1}% detailed ({live_ms:7.1} ms)",
            full.cycles,
            live.detailed_fraction() * 100.0,
        );

        rows.push_str(&format!(
            "  {{\"workload\": \"{name}\", \"nthreads\": {nthreads},\n   \
             \"full\": {{\"cycles\": {}, \"ms\": {full_ms:.1}}},\n   \
             \"two_phase\": {{\"predicted_cycles\": {:.1}, \"err_pct\": {two_phase_err:.3}, \"regions\": {}, \"clusters\": {}, \"ms\": {two_phase_ms:.1}}},\n   \
             \"live\": {{\"est_cycles\": {:.1}, \"err_pct\": {live_err:.3}, \"regions\": {}, \"clusters\": {}, \"detailed_regions\": {}, \"detailed_pct\": {:.4}, \"ms\": {live_ms:.1}}}}}{}\n",
            full.cycles,
            two_phase.predicted_cycles,
            two_phase.regions,
            two_phase.clusters,
            live.est_total_cycles,
            live.regions.len(),
            live.clusters.len(),
            live.detailed_regions,
            live.detailed_fraction(),
            if i + 1 == workloads.len() { "" } else { "," },
        ));
    }

    let json_text = format!(
        "{{\n \"slice_base\": {SLICE_BASE},\n \"rows\": [\n{rows} ],\n \"smoke\": {}\n}}\n",
        args.smoke
    );
    // Self-validate before writing: the committed baseline and the CI gate
    // both rely on this file being well-formed.
    let parsed = json::parse(&json_text).expect("benchmark JSON must parse");
    for key in ["slice_base", "rows", "smoke"] {
        assert!(parsed.get(key).is_some(), "missing key {key}");
    }
    std::fs::write(&args.out, &json_text).expect("write BENCH_live.json");
    println!("\nwrote {}", args.out);
}
