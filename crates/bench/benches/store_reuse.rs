//! Artifact-store benchmark: cold vs warm pipeline front halves, plus a
//! multi-config clustering sweep, emitting machine-readable
//! `BENCH_store.json`.
//!
//! Three measurements:
//!
//! 1. **Cold** — `analyze_cached` + `prepare_region_checkpoints_cached`
//!    against an empty store: the full record/replay/DCFG/slicing/
//!    clustering/checkpoint pipeline *plus* the cost of persisting all
//!    five artifacts (the worst case for the store);
//! 2. **Warm** — the same two calls again: everything is served from
//!    disk, zero recording or replay;
//! 3. **Sweep** — five clustering configurations over the same program.
//!    The program-dependent artifacts differ per key, but a warm sweep
//!    re-run skips all recomputation — the "parameter study" workflow the
//!    store exists for (§IV sensitivity studies re-cluster the same
//!    profile many times).
//!
//! Warm results are asserted byte-identical to cold before any timing is
//! reported. Run via `cargo bench --bench store_reuse` (`-- --smoke` for
//! the CI gate's quick variant; `--out PATH` to redirect the JSON).

use looppoint::persist::{encode_clustering, encode_profile};
use looppoint::{analyze_cached, prepare_region_checkpoints_cached, LoopPointConfig};
use lp_obs::{json, Observer};
use lp_omp::WaitPolicy;
use lp_store::Store;
use lp_workloads::{build, spec_workloads, InputClass};
use std::path::PathBuf;
use std::time::Instant;

const NTHREADS: usize = 8;
const WARMUP_SLICES: usize = 2;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: std::env::var("BENCH_STORE_OUT").unwrap_or_else(|_| "BENCH_store.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through; ignore unknown flags so
            // the target stays harness-compatible.
            _ => {}
        }
    }
    args
}

fn fresh_store_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lp-bench-store-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).expect("create bench store dir");
    d
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let (input, slice_base): (InputClass, u64) = if args.smoke {
        (InputClass::Test, 2_000)
    } else {
        (InputClass::Train, 4_000)
    };
    let spec = spec_workloads()
        .into_iter()
        .next()
        .expect("spec suite is non-empty");
    let nthreads = spec.effective_threads(NTHREADS);
    let program = build(&spec, input, NTHREADS, WaitPolicy::Passive);
    let cfg = LoopPointConfig::with_slice_base(slice_base);

    println!(
        "store-reuse benchmark: {} | {} threads | slice base {} {}",
        spec.name,
        nthreads,
        slice_base,
        if args.smoke { "(smoke)" } else { "" }
    );

    // --- cold vs warm, one configuration ---------------------------------
    let dir = fresh_store_dir("single");
    let store = Store::open(&dir, Observer::disabled()).expect("open store");

    let mut cold_analysis = None;
    let cold_ms = time_ms(|| {
        let (a, hit) = analyze_cached(&program, nthreads, &cfg, &store).unwrap();
        assert!(!hit, "first run must be cold");
        let (ck, hit) =
            prepare_region_checkpoints_cached(&a, &program, nthreads, &cfg, WARMUP_SLICES, &store)
                .unwrap();
        assert!(!hit);
        cold_analysis = Some((a, ck));
    });
    let (cold_a, cold_ck) = cold_analysis.unwrap();

    let mut warm_analysis = None;
    let warm_ms = time_ms(|| {
        let (a, hit) = analyze_cached(&program, nthreads, &cfg, &store).unwrap();
        assert!(hit, "second run must be warm");
        let (ck, hit) =
            prepare_region_checkpoints_cached(&a, &program, nthreads, &cfg, WARMUP_SLICES, &store)
                .unwrap();
        assert!(hit);
        warm_analysis = Some((a, ck));
    });
    let (warm_a, warm_ck) = warm_analysis.unwrap();

    // Correctness gate before any timing claims: warm == cold, bytewise.
    assert_eq!(cold_a.pinball.to_bytes(), warm_a.pinball.to_bytes());
    assert_eq!(
        encode_profile(&cold_a.profile),
        encode_profile(&warm_a.profile)
    );
    assert_eq!(
        encode_clustering(&cold_a.clustering),
        encode_clustering(&warm_a.clustering)
    );
    assert_eq!(warm_ck.replay_passes, 0, "warm checkpoints replay nothing");
    assert_eq!(cold_ck.regions.len(), warm_ck.regions.len());

    let stats = store.stats();
    let speedup = cold_ms / warm_ms.max(1e-9);
    println!(
        "  cold {cold_ms:9.2} ms   warm {warm_ms:9.2} ms   speedup {speedup:6.2}x   \
         ({} artifacts, {} B stored / {} B raw)",
        store.len(),
        stats.bytes_stored,
        stats.bytes_raw
    );

    // --- five-configuration sweep ----------------------------------------
    let sweep_dir = fresh_store_dir("sweep");
    let sweep_store = Store::open(&sweep_dir, Observer::disabled()).expect("open sweep store");
    let configs: Vec<LoopPointConfig> = (0..5)
        .map(|i| {
            let mut c = LoopPointConfig::with_slice_base(slice_base);
            c.simpoint.max_k = 10 + 10 * i;
            c.simpoint.seed = 42 + i as u64;
            c
        })
        .collect();
    let sweep_cold_ms = time_ms(|| {
        for c in &configs {
            let (a, hit) = analyze_cached(&program, nthreads, c, &sweep_store).unwrap();
            assert!(!hit);
            std::hint::black_box(a);
        }
    });
    let sweep_warm_ms = time_ms(|| {
        for c in &configs {
            let (a, hit) = analyze_cached(&program, nthreads, c, &sweep_store).unwrap();
            assert!(hit, "sweep re-run must be fully warm");
            std::hint::black_box(a);
        }
    });
    let sweep_speedup = sweep_cold_ms / sweep_warm_ms.max(1e-9);
    println!(
        "  sweep ({} configs)      cold {sweep_cold_ms:9.2} ms   warm {sweep_warm_ms:9.2} ms   speedup {sweep_speedup:6.2}x",
        configs.len()
    );

    let compression = if stats.bytes_stored > 0 {
        stats.bytes_raw as f64 / stats.bytes_stored as f64
    } else {
        1.0
    };
    let json_text = format!(
        "{{\n  \"workload\": \"{}\",\n  \"nthreads\": {},\n  \"slice_base\": {},\n  \
         \"cold\": {{\"cold_ms\": {cold_ms:.3}, \"warm_ms\": {warm_ms:.3}, \"speedup\": {speedup:.3}}},\n  \
         \"sweep\": {{\"configs\": {}, \"cold_ms\": {sweep_cold_ms:.3}, \"warm_ms\": {sweep_warm_ms:.3}, \"speedup\": {sweep_speedup:.3}}},\n  \
         \"store\": {{\"artifacts\": {}, \"bytes_raw\": {}, \"bytes_stored\": {}, \"compression_ratio\": {compression:.3}}},\n  \
         \"smoke\": {}\n}}\n",
        spec.name,
        nthreads,
        slice_base,
        configs.len(),
        store.len(),
        stats.bytes_raw,
        stats.bytes_stored,
        args.smoke
    );
    // Self-validate before writing: the committed baseline and the CI gate
    // both rely on this file being well-formed.
    let parsed = json::parse(&json_text).expect("benchmark JSON must parse");
    for key in ["workload", "cold", "sweep", "store"] {
        assert!(parsed.get(key).is_some(), "missing key {key}");
    }
    std::fs::write(&args.out, &json_text).expect("write BENCH_store.json");
    println!("\nwrote {}", args.out);

    // Cleanup: bench stores are throwaway.
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&sweep_dir);
}
