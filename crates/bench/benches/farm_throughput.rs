//! Farm throughput benchmark: a multi-tenant burst of mixed duplicate
//! and unique jobs through the real lp-farm service (HTTP wire path,
//! queue, dedup, worker pool, pipeline backend), emitting
//! machine-readable `BENCH_farm.json`.
//!
//! The burst models the workload the farm exists for: several tenants
//! submitting overlapping design-space points at once. Each unique
//! (program, threads, slice-base) combination must be computed exactly
//! once; every duplicate must ride along as a dedup subscriber. The
//! bench asserts that invariant against the farm's own counters before
//! reporting any numbers, then derives:
//!
//! * **jobs/sec** — burst size over wall-clock from first submission to
//!   queue idle;
//! * **dedup ratio** — deduplicated submissions over total submissions;
//! * **queue latency p50/p99** — per-compute wait between submission and
//!   a worker picking the job up, from the job records themselves.
//!
//! Run via `cargo bench --bench farm_throughput` (`-- --smoke` for the
//! CI gate's quick variant; `--out PATH` to redirect the JSON).

use lp_farm::{Farm, FarmConfig, FarmServer, JobSpec, PipelineBackend};
use lp_obs::{json, names, Observer};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: std::env::var("BENCH_FARM_OUT").unwrap_or_else(|_| "BENCH_farm.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through; ignore unknown flags so
            // the target stays harness-compatible.
            _ => {}
        }
    }
    args
}

/// The tenant burst: `repeats` copies of each unique spec, interleaved
/// the way concurrent tenants would submit them (A B C A B C ...).
fn burst_specs(unique: usize, repeats: usize, slice_base: u64) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for round in 0..repeats {
        for u in 0..unique {
            let spec = JobSpec {
                program: format!("demo-matrix-{}", 1 + u % 3),
                ncores: 2,
                // Same program at different slice bases is distinct work:
                // the content key covers the full analysis config.
                slice_base: slice_base + 500 * (u / 3) as u64,
                priority: (round % 2) as i64,
                ..JobSpec::default()
            };
            specs.push(spec);
        }
    }
    specs
}

fn main() {
    let args = parse_args();
    let (unique, repeats, slice_base, workers) = if args.smoke {
        (3usize, 4usize, 2_000u64, 2usize)
    } else {
        (6, 8, 4_000, 4)
    };

    let obs = Observer::enabled();
    let backend = Arc::new(PipelineBackend::new(None, obs.clone()));
    let cfg = FarmConfig {
        workers,
        queue_capacity: unique * repeats + 8,
        ..FarmConfig::default()
    };
    let farm = Farm::start(cfg, backend, obs.clone()).expect("start farm");
    let server = FarmServer::start("127.0.0.1:0", farm.clone()).expect("bind farm server");
    let addr = server.local_addr().to_string();

    let specs = burst_specs(unique, repeats, slice_base);
    let total = specs.len();
    println!(
        "farm-throughput benchmark: {total} jobs ({unique} unique x {repeats} tenants) | \
         {workers} workers {}",
        if args.smoke { "(smoke)" } else { "" }
    );

    // One NDJSON POST per tenant round, like concurrent clients would.
    let t0 = Instant::now();
    for round in specs.chunks(unique) {
        let mut body = String::new();
        for spec in round {
            body.push_str(&spec.to_value().to_string());
            body.push('\n');
        }
        let (status, _) =
            lp_obs::http::client_request(&addr, "POST", "/jobs", &body).expect("submit burst");
        assert_eq!(status, 202, "burst must be accepted");
    }
    assert!(
        farm.wait_idle(Duration::from_secs(600)),
        "burst did not drain"
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Correctness gate before any throughput claims: exactly one compute
    // per unique spec, every other submission deduplicated, all done.
    let computes = obs.counter(names::FARM_COMPUTES).get();
    let dedup_hits = obs.counter(names::FARM_DEDUP_HITS).get();
    assert_eq!(computes as usize, unique, "one compute per unique spec");
    assert_eq!(
        dedup_hits as usize,
        total - unique,
        "every duplicate must dedup"
    );
    for id in 1..=total as u64 {
        let rec = farm.job(id).expect("job record");
        assert_eq!(rec.state, lp_farm::JobState::Done, "job {id} not done");
    }
    // Queue latency from the farm's own telemetry histogram — the same
    // log2-bucket quantile estimator every export surface uses, so the
    // benchmark JSON, /metrics, and --metrics-out never disagree.
    let waits = obs.snapshot().histograms[names::FARM_QUEUE_WAIT_US].clone();
    assert_eq!(
        waits.count, computes,
        "one queue-wait sample per actual compute"
    );
    let p50 = waits.p50() as u64;
    let p99 = waits.p99() as u64;

    let jobs_per_sec = total as f64 / (wall_ms / 1e3).max(1e-9);
    let dedup_ratio = dedup_hits as f64 / total as f64;
    println!(
        "  {total} jobs in {wall_ms:9.2} ms   {jobs_per_sec:8.2} jobs/s   \
         {computes} computes + {dedup_hits} dedup ({:.0}% deduped)   \
         queue wait p50 {p50} us / p99 {p99} us",
        dedup_ratio * 100.0
    );

    let json_text = format!(
        "{{\n  \"workers\": {workers},\n  \"burst\": {total},\n  \"unique_specs\": {unique},\n  \
         \"slice_base\": {slice_base},\n  \"wall_ms\": {wall_ms:.3},\n  \
         \"jobs_per_sec\": {jobs_per_sec:.3},\n  \
         \"dedup\": {{\"submitted\": {total}, \"computes\": {computes}, \"hits\": {dedup_hits}, \"ratio\": {dedup_ratio:.4}}},\n  \
         \"queue_latency_us\": {{\"p50\": {p50}, \"p99\": {p99}}},\n  \
         \"smoke\": {}\n}}\n",
        args.smoke
    );
    // Self-validate before writing: the committed baseline and the CI gate
    // both rely on this file being well-formed.
    let parsed = json::parse(&json_text).expect("benchmark JSON must parse");
    for key in [
        "workers",
        "burst",
        "dedup",
        "queue_latency_us",
        "jobs_per_sec",
    ] {
        assert!(parsed.get(key).is_some(), "missing key {key}");
    }
    std::fs::write(&args.out, &json_text).expect("write BENCH_farm.json");
    println!("\nwrote {}", args.out);

    farm.shutdown(lp_farm::ShutdownMode::Drain);
    farm.join();
    server.stop();
}
