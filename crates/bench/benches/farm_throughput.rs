//! Farm throughput benchmark: a multi-tenant burst of mixed duplicate
//! and unique jobs through the real lp-farm service (HTTP wire path,
//! queue, dedup, worker pool, pipeline backend), emitting
//! machine-readable `BENCH_farm.json`.
//!
//! Two phases, so the number measures the *data plane* rather than cold
//! pipeline compute:
//!
//! 1. **Warm-up (unmeasured)** — a first farm instance computes every
//!    unique spec once into a shared artifact store, drains, and shuts
//!    down, leaving its journal checkpointed.
//! 2. **Burst (measured)** — a fresh farm over the same store and
//!    journal directory takes the full burst from `clients` concurrent
//!    keep-alive HTTP clients (each submitting half its share as one
//!    NDJSON batch POST and half as single POSTs), exactly how tenants
//!    hit a long-running daemon whose store already holds their design
//!    space. Wall-clock runs from first submission to queue idle.
//!
//! The bench asserts the dedup invariant (one compute per unique spec,
//! every duplicate a subscriber, everything `done`) before reporting:
//!
//! * **jobs/sec** — burst size over measured wall-clock;
//! * **dedup ratio** — deduplicated submissions over total submissions;
//! * **queue latency p50/p99** — per-compute wait between submission and
//!   a worker picking the job up, from the farm's own histogram;
//! * **keepalive / batch / journal_fsyncs** — connection reuses across
//!   the burst, request mix, and group-committed fsyncs (which must stay
//!   strictly below the number of journaled transitions).
//!
//! Run via `cargo bench --bench farm_throughput` (`-- --smoke` for the
//! CI gate's quick variant; `--out PATH` to redirect the JSON).

use lp_farm::{Farm, FarmConfig, FarmServer, JobSpec, PipelineBackend};
use lp_obs::http::HttpClient;
use lp_obs::{json, names, Observer};
use lp_store::Store;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: std::env::var("BENCH_FARM_OUT").unwrap_or_else(|_| "BENCH_farm.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through; ignore unknown flags so
            // the target stays harness-compatible.
            _ => {}
        }
    }
    args
}

/// The tenant burst: `repeats` copies of each unique spec, interleaved
/// the way concurrent tenants would submit them (A B C A B C ...).
fn burst_specs(unique: usize, repeats: usize, slice_base: u64) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for round in 0..repeats {
        for u in 0..unique {
            let spec = JobSpec {
                program: format!("demo-matrix-{}", 1 + u % 3),
                ncores: 2,
                // Same program at different slice bases is distinct work:
                // the content key covers the full analysis config.
                slice_base: slice_base + 500 * (u / 3) as u64,
                priority: (round % 2) as i64,
                ..JobSpec::default()
            };
            specs.push(spec);
        }
    }
    specs
}

fn farm_config(workers: usize, capacity: usize, dir: &Path) -> FarmConfig {
    FarmConfig {
        workers,
        queue_capacity: capacity,
        dir: Some(dir.to_path_buf()),
        ..FarmConfig::default()
    }
}

fn main() {
    let args = parse_args();
    let (unique, repeats, slice_base, workers, clients) = if args.smoke {
        (3usize, 4usize, 2_000u64, 2usize, 2usize)
    } else {
        (6, 8, 4_000, 4, 4)
    };
    let total = unique * repeats;

    let bench_dir = std::env::temp_dir().join(format!("lp-bench-farm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bench_dir);
    let store_dir = bench_dir.join("store");
    let farm_dir = bench_dir.join("farm");
    std::fs::create_dir_all(&farm_dir).expect("create bench dirs");

    println!(
        "farm-throughput benchmark: {total} jobs ({unique} unique x {repeats} tenants) | \
         {workers} workers, {clients} keep-alive clients {}",
        if args.smoke { "(smoke)" } else { "" }
    );

    // ---- Phase 1 (unmeasured): compute every unique spec cold into the
    // shared store, then shut down. The measured phase below exercises
    // the data plane — wire, queue, dedup, journal — over warm artifacts.
    {
        let obs = Observer::enabled();
        let store = Store::open(&store_dir, obs.clone()).expect("open store");
        let backend = Arc::new(PipelineBackend::new(Some(Arc::new(store)), obs.clone()));
        let farm = Farm::start(farm_config(workers, total + 8, &farm_dir), backend, obs)
            .expect("start warm-up farm");
        for spec in burst_specs(unique, 1, slice_base) {
            farm.submit(spec).expect("warm-up submit");
        }
        assert!(
            farm.wait_idle(Duration::from_secs(600)),
            "warm-up did not drain"
        );
        farm.shutdown(lp_farm::ShutdownMode::Drain);
        farm.join();
    }

    // ---- Phase 2 (measured): fresh farm, same store + journal dir,
    // full burst from concurrent keep-alive clients.
    let obs = Observer::enabled();
    let store = Store::open(&store_dir, obs.clone()).expect("reopen store");
    let backend = Arc::new(PipelineBackend::new(Some(Arc::new(store)), obs.clone()));
    let farm = Farm::start(
        farm_config(workers, total + 8, &farm_dir),
        backend,
        obs.clone(),
    )
    .expect("start measured farm");
    let server = FarmServer::start("127.0.0.1:0", farm.clone()).expect("bind farm server");
    let addr = server.local_addr().to_string();

    // Deal the interleaved burst round-robin across the clients, like
    // independent tenants each holding one persistent connection.
    let mut shares: Vec<Vec<String>> = vec![Vec::new(); clients];
    for (i, spec) in burst_specs(unique, repeats, slice_base)
        .into_iter()
        .enumerate()
    {
        shares[i % clients].push(spec.to_value().to_string());
    }

    let t0 = Instant::now();
    let threads: Vec<_> = shares
        .into_iter()
        .map(|share| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr);
                let mut ids: Vec<u64> = Vec::new();
                let mut accept = |(status, body): (u16, String)| {
                    assert_eq!(status, 202, "burst must be accepted: {body}");
                    ids.extend(
                        body.lines()
                            .filter_map(|l| json::parse(l).ok())
                            .filter_map(|v| v.get("id").and_then(json::Value::as_u64)),
                    );
                };
                // Half the share as one NDJSON batch, half as single
                // POSTs — both wire shapes on one reused connection.
                let batch_n = share.len() / 2;
                let mut body = share[..batch_n].join("\n");
                body.push('\n');
                accept(
                    client
                        .request("POST", "/jobs", &body)
                        .expect("batch submit"),
                );
                for line in &share[batch_n..] {
                    accept(
                        client
                            .request("POST", "/jobs", &format!("{line}\n"))
                            .expect("single submit"),
                    );
                }
                (ids, batch_n.min(1), share.len() - batch_n, client.reuses())
            })
        })
        .collect();
    let mut ids = Vec::new();
    let (mut batch_posts, mut single_posts, mut reuses) = (0usize, 0usize, 0u64);
    for t in threads {
        let (i, b, s, r) = t.join().expect("client thread panicked");
        ids.extend(i);
        batch_posts += b;
        single_posts += s;
        reuses += r;
    }
    assert!(
        farm.wait_idle(Duration::from_secs(600)),
        "burst did not drain"
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Correctness gate before any throughput claims: exactly one compute
    // per unique spec, every other submission deduplicated, all done.
    let computes = obs.counter(names::FARM_COMPUTES).get();
    let dedup_hits = obs.counter(names::FARM_DEDUP_HITS).get();
    assert_eq!(ids.len(), total, "every submission must return an id");
    assert_eq!(computes as usize, unique, "one compute per unique spec");
    assert_eq!(
        dedup_hits as usize,
        total - unique,
        "every duplicate must dedup"
    );
    for &id in &ids {
        let rec = farm.job(id).expect("job record");
        assert_eq!(rec.state, lp_farm::JobState::Done, "job {id} not done");
    }
    // Group commit must coalesce: strictly fewer fsyncs than journaled
    // transitions (one enqueue and one terminal per job, one start per
    // actual compute).
    let fsyncs = obs.counter(names::FARM_JOURNAL_FSYNCS).get();
    let transitions = 2 * total as u64 + computes;
    assert!(
        fsyncs < transitions,
        "group commit must batch: {fsyncs} fsyncs for {transitions} transitions"
    );
    assert!(reuses > 0, "keep-alive clients must reuse connections");
    // Queue latency from the farm's own telemetry histogram — the same
    // log2-bucket quantile estimator every export surface uses, so the
    // benchmark JSON, /metrics, and --metrics-out never disagree.
    let waits = obs.snapshot().histograms[names::FARM_QUEUE_WAIT_US].clone();
    assert_eq!(
        waits.count, computes,
        "one queue-wait sample per actual compute"
    );
    let p50 = waits.p50() as u64;
    let p99 = waits.p99() as u64;

    let jobs_per_sec = total as f64 / (wall_ms / 1e3).max(1e-9);
    let dedup_ratio = dedup_hits as f64 / total as f64;
    println!(
        "  {total} jobs in {wall_ms:9.2} ms   {jobs_per_sec:8.2} jobs/s   \
         {computes} computes + {dedup_hits} dedup ({:.0}% deduped)   \
         queue wait p50 {p50} us / p99 {p99} us   \
         {reuses} keep-alive reuses   {fsyncs} fsyncs / {transitions} transitions",
        dedup_ratio * 100.0
    );

    let json_text = format!(
        "{{\n  \"workers\": {workers},\n  \"burst\": {total},\n  \"unique_specs\": {unique},\n  \
         \"slice_base\": {slice_base},\n  \"wall_ms\": {wall_ms:.3},\n  \
         \"jobs_per_sec\": {jobs_per_sec:.3},\n  \
         \"dedup\": {{\"submitted\": {total}, \"computes\": {computes}, \"hits\": {dedup_hits}, \"ratio\": {dedup_ratio:.4}}},\n  \
         \"queue_latency_us\": {{\"p50\": {p50}, \"p99\": {p99}}},\n  \
         \"keepalive\": {{\"clients\": {clients}, \"reuses\": {reuses}}},\n  \
         \"batch\": {{\"batch_posts\": {batch_posts}, \"single_posts\": {single_posts}}},\n  \
         \"journal_fsyncs\": {fsyncs},\n  \"journal_transitions\": {transitions},\n  \
         \"smoke\": {}\n}}\n",
        args.smoke
    );
    // Self-validate before writing: the committed baseline and the CI gate
    // both rely on this file being well-formed.
    let parsed = json::parse(&json_text).expect("benchmark JSON must parse");
    for key in [
        "workers",
        "burst",
        "dedup",
        "queue_latency_us",
        "jobs_per_sec",
        "keepalive",
        "batch",
        "journal_fsyncs",
    ] {
        assert!(parsed.get(key).is_some(), "missing key {key}");
    }
    std::fs::write(&args.out, &json_text).expect("write BENCH_farm.json");
    println!("\nwrote {}", args.out);

    farm.shutdown(lp_farm::ShutdownMode::Drain);
    farm.join();
    server.stop();
    let _ = std::fs::remove_dir_all(&bench_dir);
}
