//! Fig. 8: theoretical and actual speedups (serial and parallel) of
//! LoopPoint over full detailed simulation, SPEC train, active policy.

use lp_bench::paper;
use lp_bench::table::{title, x, Table};
use lp_bench::{evaluate_app_mode, geomean, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{spec_workloads, InputClass};

fn main() {
    title(
        "Fig. 8",
        "LoopPoint speedups over full detailed simulation (SPEC train, active)",
    );
    let cfg = SimConfig::gainestown(SPEC_THREADS);
    let mut t = Table::new(&[
        "Application",
        "theor. serial",
        "theor. parallel",
        "actual serial",
        "actual parallel",
        "regions",
    ]);
    let mut ts = Vec::new();
    let mut tp = Vec::new();
    let mut as_ = Vec::new();
    let mut ap = Vec::new();
    for spec in spec_workloads() {
        let e = evaluate_app_mode(
            &spec,
            InputClass::Train,
            SPEC_THREADS,
            WaitPolicy::Active,
            &cfg,
            true, // checkpoint-driven regions, as the paper deploys them
        )
        .unwrap();
        ts.push(e.speedup.theoretical_serial);
        tp.push(e.speedup.theoretical_parallel);
        as_.push(e.speedup.actual_serial);
        ap.push(e.speedup.actual_parallel);
        t.row(&[
            spec.name.to_string(),
            x(e.speedup.theoretical_serial),
            x(e.speedup.theoretical_parallel),
            x(e.speedup.actual_serial),
            x(e.speedup.actual_parallel),
            e.results.len().to_string(),
        ]);
    }
    t.row(&[
        "GEOMEAN (measured)".to_string(),
        x(geomean(ts.iter().copied())),
        x(geomean(tp.iter().copied())),
        x(geomean(as_.iter().copied())),
        x(geomean(ap.iter().copied())),
        String::new(),
    ]);
    t.print();
    println!();
    println!(
        "Paper reference (real-scale workloads): avg serial {}x, avg parallel {}x, max {}x.",
        paper::FIG8_AVG_SERIAL_TRAIN,
        paper::FIG8_AVG_PARALLEL_TRAIN,
        paper::FIG8_MAX_SPEEDUP_TRAIN
    );
    println!(
        "Our instruction counts are ~1000x smaller (DESIGN.md §7), so slice counts — and\n\
         therefore attainable speedups — scale down correspondingly; the serial < parallel\n\
         ordering and the per-app ranking are the reproduced shape. Regions are simulated\n\
         checkpoint-driven with 2-slice warmup (the paper's deployment)."
    );
}
