//! Fig. 4: an example representative region — loop-header markers and the
//! IPC-over-time trace of the full run versus the chosen region.

use lp_bench::table::{f, title, Table};
use lp_bench::{analyze_app, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_sim::{Mode, Simulator, StopCond};
use lp_uarch::SimConfig;
use lp_workloads::InputClass;

fn main() {
    title(
        "Fig. 4",
        "A representative region of 638.imagick_s.1: (PC,count) markers and IPC trace",
    );
    let spec = lp_workloads::find("638.imagick_s.1").unwrap();
    let (program, nthreads, analysis) =
        analyze_app(&spec, InputClass::Train, SPEC_THREADS, WaitPolicy::Passive).unwrap();

    // The region with the largest multiplier, as the figure highlights.
    let region = analysis
        .looppoints
        .iter()
        .max_by(|a, b| a.multiplier.partial_cmp(&b.multiplier).unwrap())
        .unwrap();
    println!("\nchosen region (slice {}):", region.slice_index);
    if let Some(s) = region.start {
        println!(
            "  start marker: pc={} [{}], count={}",
            s.pc,
            program.symbolize(s.pc),
            s.count
        );
    }
    if let Some(e) = region.end {
        println!(
            "  end marker:   pc={} [{}], count={}",
            e.pc,
            program.symbolize(e.pc),
            e.count
        );
    }
    println!(
        "  multiplier: {:.2}  (cluster {} of {})",
        region.multiplier, region.cluster, analysis.clustering.k
    );

    // (4b) IPC over time: full application.
    let cfg = SimConfig::gainestown(SPEC_THREADS);
    let mut sim = Simulator::new(program.clone(), nthreads, cfg.clone());
    let interval = analysis.profile.total_insts / 60;
    sim.set_ipc_sampling(interval.max(1));
    let full = sim.run(Mode::Detailed, None, u64::MAX).unwrap();
    println!(
        "\nIPC over time (full application, {} samples):",
        full.ipc_trace.len()
    );
    let mut t = Table::new(&["insts", "ipc", "bar"]);
    for s in &full.ipc_trace {
        let bars = "#".repeat((s.ipc * 4.0).round() as usize);
        t.row(&[s.instructions.to_string(), f(s.ipc, 2), bars]);
    }
    t.print();

    // IPC of the chosen region alone (warmup + detailed).
    if let (Some(s), Some(e)) = (region.start, region.end) {
        let mut sim = Simulator::new(program.clone(), nthreads, cfg);
        sim.watch_pc(s.pc);
        sim.watch_pc(e.pc);
        sim.run(Mode::FastForward, Some(StopCond::Marker(s)), u64::MAX)
            .unwrap();
        let stats = sim
            .run(Mode::Detailed, Some(StopCond::Marker(e)), u64::MAX)
            .unwrap();
        println!(
            "\nregion IPC = {:.2} over {} instructions (full-app aggregate IPC = {:.2})",
            stats.ipc(),
            stats.instructions,
            full.ipc()
        );
    }
}
