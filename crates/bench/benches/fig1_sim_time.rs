//! Fig. 1: approximate time to evaluate multi-threaded benchmarks with
//! different methodologies, at the paper's 100 KIPS detailed-simulation
//! speed, assuming unlimited parallel simulation hosts.
//!
//! The paper computes this for the real suites' instruction counts
//! (multi-trillion for SPEC ref); we print both our synthetic suites'
//! actual counts and, for scale context, the counts re-inflated by the
//! DESIGN.md ~1000x scaling factor.

use looppoint::{human_duration, SimTimeModel};
use lp_bench::table::{f, title, Table};
use lp_bench::{analyze_app, geomean, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_workloads::{npb_workloads, spec_workloads, InputClass};

fn main() {
    title(
        "Fig. 1",
        "Approximate evaluation time per methodology (100 KIPS detailed, parallel hosts)",
    );
    let model = SimTimeModel::default();
    let scale_back = 1000.0; // DESIGN.md §7 instruction-count scaling

    let suites: [(&str, Vec<lp_workloads::WorkloadSpec>, InputClass); 3] = [
        ("SPEC train", spec_workloads(), InputClass::Train),
        ("SPEC ref", spec_workloads(), InputClass::Ref),
        ("NPB C", npb_workloads(), InputClass::NpbC),
    ];

    let mut t = Table::new(&[
        "Suite",
        "Full detailed",
        "Time-based (10%)",
        "BarrierPoint",
        "LoopPoint",
        "LoopPoint speedup",
    ]);
    for (label, specs, input) in suites {
        let mut fulls = Vec::new();
        let mut times = Vec::new();
        let mut barrier_largest = Vec::new();
        let mut looppoint_largest = Vec::new();
        let mut lp_speedups = Vec::new();
        for spec in &specs {
            let (program, nthreads, analysis) =
                analyze_app(spec, input, SPEC_THREADS, WaitPolicy::Passive).unwrap();
            let total = analysis.profile.total_insts as f64 * scale_back;
            fulls.push(total);
            times.push(total);
            // BarrierPoint: bounded by the largest inter-barrier region.
            let bp = looppoint::baselines::analyze_barrierpoint(
                &analysis.pinball,
                &program,
                std::sync::Arc::new(analysis.dcfg),
                &Default::default(),
                u64::MAX,
            )
            .unwrap();
            barrier_largest.push(bp.largest_region() as f64 * scale_back);
            let largest = analysis
                .looppoints
                .iter()
                .map(|r| r.filtered_insts)
                .max()
                .unwrap_or(0) as f64
                * scale_back;
            looppoint_largest.push(largest);
            lp_speedups.push(analysis.profile.total_filtered as f64 / (largest / scale_back));
            let _ = nthreads;
        }
        let sum = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        t.row(&[
            label.to_string(),
            human_duration(model.full_detailed(sum(&fulls) as u64)),
            human_duration(model.time_based(sum(&times) as u64, 0.1)),
            human_duration(model.checkpoint_parallel(sum(&barrier_largest) as u64)),
            human_duration(model.checkpoint_parallel(sum(&looppoint_largest) as u64)),
            format!("{}x", f(geomean(lp_speedups.iter().copied()), 0)),
        ]);
    }
    t.print();
    println!(
        "\nPaper shape: full detailed and time-based approach months-years for ref inputs;\n\
         BarrierPoint helps only when inter-barrier regions are small; LoopPoint stays hours."
    );
}
