//! Criterion microbenchmarks for the performance-critical components:
//! the functional VM, cache hierarchy, branch predictor, BBV distance,
//! random projection, and k-means.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lp_isa::{Addr, Pc};
use lp_isa::{AluOp, Machine, ProgramBuilder, Reg};
use lp_simpoint::{kmeans, project};
use lp_uarch::{BranchPredictor, MemoryHierarchy, SimConfig};
use std::sync::Arc;

fn vm_throughput(c: &mut Criterion) {
    let mut pb = ProgramBuilder::new("bench");
    let mut code = pb.main_code();
    code.li(Reg::R1, 0);
    code.counted_loop("hot", Reg::R2, 1_000_000, |c| {
        c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        c.alui(AluOp::Mul, Reg::R3, Reg::R1, 17);
        c.alui(AluOp::Xor, Reg::R3, Reg::R3, 0x55);
    });
    code.halt();
    code.finish();
    let program = Arc::new(pb.finish());

    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("step_100k", |b| {
        b.iter(|| {
            let mut m = Machine::new(program.clone(), 1);
            for _ in 0..100_000 {
                black_box(m.step(0).unwrap());
            }
        })
    });
    g.finish();
}

fn cache_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("uarch");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("hierarchy_10k_stream", |b| {
        let cfg = SimConfig::gainestown(8);
        b.iter(|| {
            let mut h = MemoryHierarchy::new(&cfg);
            for i in 0..10_000u64 {
                black_box(h.access_data(0, Addr(i * 64), i % 7 == 0, true));
            }
        })
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("branch_predictor_10k", |b| {
        b.iter(|| {
            let mut bp = BranchPredictor::default();
            for i in 0..10_000u32 {
                let pc = Pc::new(lp_isa::ImageId(0), i % 37);
                black_box(bp.predict_cond(pc, i % 3 != 0));
            }
        })
    });
    g.finish();
}

fn clustering(c: &mut Criterion) {
    // 100 sparse vectors of 200 nnz each.
    let vectors: Vec<Vec<(u64, f64)>> = (0..100)
        .map(|i| {
            (0..200)
                .map(|j| ((i * 31 + j * 7) % 4096, (j + 1) as f64))
                .collect()
        })
        .collect();
    let refs: Vec<&[(u64, f64)]> = vectors.iter().map(|v| v.as_slice()).collect();

    let mut g = c.benchmark_group("simpoint");
    g.bench_function("project_100x200_to_100d", |b| {
        b.iter(|| black_box(project(&refs, 100, 42)))
    });
    let points = project(&refs, 100, 42);
    g.bench_function("kmeans_k10", |b| {
        b.iter(|| black_box(kmeans(&points, 10, 7, 60)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = vm_throughput, cache_hierarchy, clustering
}
criterion_main!(benches);
