//! Table II: SPEC CPU2017 speed application attributes.

use lp_bench::table::{title, Table};
use lp_workloads::spec_workloads;

fn main() {
    title(
        "Table II",
        "SPEC CPU2017 speed application attributes (stand-ins)",
    );
    let mut t = Table::new(&[
        "Application",
        "Lang.",
        "KLOC",
        "Application Area",
        "Threads",
    ]);
    for w in spec_workloads() {
        t.row(&[
            w.name.to_string(),
            w.language.to_string(),
            w.kloc.to_string(),
            w.area.to_string(),
            w.fixed_threads
                .map(|n| n.to_string())
                .unwrap_or_else(|| "8 (default)".to_string()),
        ]);
    }
    t.print();
    println!("\nNote: variants of one binary (e.g. 603.bwaves_s.1/.2) differ by input.");
}
