//! Fig. 7: prediction quality for other metrics (unconstrained mode,
//! train, 8 threads): (a) cycle-count error %, (b) branch-MPKI absolute
//! difference, (c) L2-MPKI absolute difference — absolute differences for
//! the MPKI metrics, exactly as the paper presents them.

use lp_bench::table::{f, title, Table};
use lp_bench::{evaluate_app, mean, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{spec_workloads, InputClass};

fn main() {
    title(
        "Fig. 7",
        "Metric prediction: cycles error %, branch-MPKI |diff|, L2-MPKI |diff| (active & passive)",
    );
    let cfg = SimConfig::gainestown(SPEC_THREADS);
    let mut t = Table::new(&[
        "Application",
        "cyc% act",
        "cyc% pas",
        "brMPKI act",
        "brMPKI pas",
        "L2MPKI act",
        "L2MPKI pas",
    ]);
    let mut sums = [
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
    ];
    for spec in spec_workloads() {
        let a = evaluate_app(
            &spec,
            InputClass::Train,
            SPEC_THREADS,
            WaitPolicy::Active,
            &cfg,
        )
        .unwrap();
        let p = evaluate_app(
            &spec,
            InputClass::Train,
            SPEC_THREADS,
            WaitPolicy::Passive,
            &cfg,
        )
        .unwrap();
        let vals = [
            a.cycles_error_pct(),
            p.cycles_error_pct(),
            a.branch_mpki_diff(),
            p.branch_mpki_diff(),
            a.l2_mpki_diff(),
            p.l2_mpki_diff(),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            s.push(v);
        }
        t.row(&[
            spec.name.to_string(),
            f(vals[0], 2),
            f(vals[1], 2),
            f(vals[2], 3),
            f(vals[3], 3),
            f(vals[4], 3),
            f(vals[5], 3),
        ]);
    }
    t.row(&[
        "AVERAGE".to_string(),
        f(mean(sums[0].iter().copied()), 2),
        f(mean(sums[1].iter().copied()), 2),
        f(mean(sums[2].iter().copied()), 3),
        f(mean(sums[3].iter().copied()), 3),
        f(mean(sums[4].iter().copied()), 3),
        f(mean(sums[5].iter().copied()), 3),
    ]);
    t.print();
    println!(
        "\nPaper shape: cycle errors a few percent; MPKI absolute differences small\n\
         (the paper reports diffs because the metrics' absolute values are small)."
    );
}
