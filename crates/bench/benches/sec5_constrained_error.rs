//! §V-A.1: constrained (replay-driven) simulation introduces artificial
//! thread stalls and can mislead runtime extrapolation — the paper
//! observes up to 19.6% error for 657.xz_s.2, an application with few
//! synchronization points and high run-to-run variability.

use looppoint::constrained::simulate_constrained;
use looppoint::{error_pct, simulate_whole};
use lp_bench::paper;
use lp_bench::table::{f, title, Table};
use lp_bench::{analyze_app, SPEC_THREADS};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::InputClass;

fn main() {
    title(
        "Sec. V-A.1",
        "Constrained vs unconstrained whole-application runtime (passive, train)",
    );
    let cfg = SimConfig::gainestown(SPEC_THREADS);
    let mut t = Table::new(&[
        "Application",
        "unconstrained cycles",
        "constrained cycles",
        "error %",
    ]);
    for name in ["657.xz_s.2", "603.bwaves_s.1", "619.lbm_s.1", "644.nab_s.1"] {
        let spec = lp_workloads::find(name).unwrap();
        let (program, nthreads, analysis) =
            analyze_app(&spec, InputClass::Train, SPEC_THREADS, WaitPolicy::Passive).unwrap();
        let unconstrained = simulate_whole(&program, nthreads, &cfg).unwrap();
        let constrained =
            simulate_constrained(&analysis.pinball, &program, &cfg, u64::MAX).unwrap();
        let err = error_pct(constrained.cycles as f64, unconstrained.cycles as f64);
        t.row(&[
            name.to_string(),
            unconstrained.cycles.to_string(),
            constrained.cycles.to_string(),
            f(err, 2),
        ]);
    }
    t.print();
    println!(
        "\nPaper reference: constrained replay errs up to {}% (657.xz_s.2); the recorded\n\
         interleaving plus artificial shared-access stalls does not match the machine's\n\
         natural execution — hence LoopPoint simulates regions *unconstrained*.",
        paper::SEC5_CONSTRAINED_XZ_ERROR_PCT
    );
}
