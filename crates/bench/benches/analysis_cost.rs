//! Analysis-cost benchmark: measures what this PR optimized and emits a
//! machine-readable `BENCH_analysis.json`.
//!
//! Three measurements, each before/after:
//!
//! 1. **Checkpoint generation** — legacy per-region replays (O(k·N)) vs
//!    the single-pass multi-marker generator (O(N));
//! 2. **Clustering** — serial per-k k-means sweep vs the bounded-pool
//!    parallel sweep (bit-identical results, deterministic per-k seeds);
//! 3. **End-to-end** — `analyze` + checkpoint construction + checkpointed
//!    region simulation, pre-PR path vs current path.
//!
//! The region set is padded to ≥ `MIN_REGIONS` by sampling profile slices
//! directly, so the k·N-vs-N comparison is exercised at the k ≥ 8 scale
//! the paper's workloads produce. Run via `cargo bench --bench
//! analysis_cost` (`-- --smoke` for the CI gate's quick variant; `--out
//! PATH` to redirect the JSON).

use looppoint::{
    analyze, prepare_region_checkpoints, prepare_region_checkpoints_per_region, simulate_prepared,
    Analysis, LoopPointConfig, LoopPointRegion, SimOptions,
};
use lp_obs::json;
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{build, spec_workloads, InputClass};
use std::time::Instant;

const NTHREADS: usize = 8;
const WARMUP_SLICES: usize = 2;
const MIN_REGIONS: usize = 20;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: std::env::var("BENCH_ANALYSIS_OUT")
            .unwrap_or_else(|_| "BENCH_analysis.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            // `cargo bench` passes --bench through; ignore unknown flags so
            // the target stays harness-compatible.
            _ => {}
        }
    }
    args
}

fn config(slice_base: u64, parallel_sweep: bool) -> LoopPointConfig {
    let mut cfg = LoopPointConfig::with_slice_base(slice_base);
    cfg.simpoint.parallel_sweep = parallel_sweep;
    cfg
}

/// Pads the analysis' looppoints with regions sampled straight from the
/// slice profile until at least `want` regions exist — checkpoint cost is
/// per *region*, so this is the honest way to exercise k ≥ 8 on a small
/// workload. Slices are taken from the end of the profile backwards, like
/// real representatives they are spread deep into the execution (a
/// per-region replay pays nearly the whole recording for each).
/// Deterministic: both measured paths get the same set.
fn pad_regions(analysis: &mut Analysis, want: usize) {
    let nslices = analysis.profile.slices.len();
    let mut extra = 0usize;
    let mut idx = nslices.saturating_sub(1);
    while analysis.looppoints.len() < want && extra < nslices {
        if idx <= WARMUP_SLICES {
            break;
        }
        if analysis.looppoints.iter().all(|r| r.slice_index != idx) {
            let s = &analysis.profile.slices[idx];
            analysis.looppoints.push(LoopPointRegion {
                slice_index: idx,
                cluster: analysis.looppoints.len(),
                start: s.start,
                end: s.end,
                multiplier: 1.0,
                filtered_insts: s.filtered_insts,
                cluster_filtered_insts: s.filtered_insts,
            });
        }
        idx -= 1;
        extra += 1;
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn section(name: &str, before_ms: f64, after_ms: f64, out: &mut String) {
    let speedup = before_ms / after_ms.max(1e-9);
    println!(
        "  {name:<24} before {before_ms:9.2} ms   after {after_ms:9.2} ms   speedup {speedup:6.2}x"
    );
    out.push_str(&format!(
        "  \"{name}\": {{\"before_ms\": {before_ms:.3}, \"after_ms\": {after_ms:.3}, \"speedup\": {speedup:.3}}},\n"
    ));
}

fn main() {
    let args = parse_args();
    // The SPEC-like stand-ins run long enough (Train class) that the profile
    // has tens of slices, so the region set genuinely reaches k >= 8 and the
    // k·N replay cost dominates checkpoint generation, as in the paper's
    // workloads. Smoke uses the Test class for the CI gate.
    let (input, slice_base): (InputClass, u64) = if args.smoke {
        (InputClass::Test, 2_000)
    } else {
        (InputClass::Train, 4_000)
    };
    let spec = spec_workloads()
        .into_iter()
        .next()
        .expect("spec suite is non-empty");
    let nthreads = spec.effective_threads(NTHREADS);
    let program = build(&spec, input, NTHREADS, WaitPolicy::Passive);
    let simcfg = SimConfig::gainestown(NTHREADS);

    println!(
        "analysis-cost benchmark: {} | {} threads | slice base {} {}",
        spec.name,
        nthreads,
        slice_base,
        if args.smoke { "(smoke)" } else { "" }
    );

    // --- clustering sweep: serial vs parallel (identical inputs) --------
    let probe = analyze(&program, nthreads, &config(slice_base, true)).unwrap();
    let vectors: Vec<&[(u64, f64)]> = probe
        .profile
        .slices
        .iter()
        .map(|s| s.bbv.entries())
        .collect();
    let serial_cfg = config(slice_base, false).simpoint;
    let parallel_cfg = config(slice_base, true).simpoint;
    let cluster_serial_ms = time_ms(|| {
        std::hint::black_box(lp_simpoint::cluster(&vectors, &serial_cfg));
    });
    let cluster_parallel_ms = time_ms(|| {
        std::hint::black_box(lp_simpoint::cluster(&vectors, &parallel_cfg));
    });

    // --- checkpoint generation: per-region vs single-pass ---------------
    let mut analysis = probe;
    pad_regions(&mut analysis, MIN_REGIONS);
    let regions = analysis.looppoints.len();
    let per_region_ms = time_ms(|| {
        std::hint::black_box(
            prepare_region_checkpoints_per_region(&analysis, &program, WARMUP_SLICES).unwrap(),
        );
    });
    let mut replay_passes = 0u64;
    let single_pass_ms = time_ms(|| {
        let prep = prepare_region_checkpoints(&analysis, &program, WARMUP_SLICES).unwrap();
        replay_passes = prep.replay_passes;
        std::hint::black_box(prep);
    });
    assert_eq!(
        replay_passes, 1,
        "single-pass generation must replay the pinball exactly once for {regions} regions"
    );

    // --- end to end: analyze + checkpoints + checkpointed simulation ----
    let serial_opts = SimOptions::default();
    let pool_opts = SimOptions::parallel();
    let before_ms = time_ms(|| {
        let mut a = analyze(&program, nthreads, &config(slice_base, false)).unwrap();
        pad_regions(&mut a, MIN_REGIONS);
        let prep = prepare_region_checkpoints_per_region(&a, &program, WARMUP_SLICES).unwrap();
        std::hint::black_box(
            simulate_prepared(&prep, &program, nthreads, &simcfg, &serial_opts).unwrap(),
        );
    });
    let after_ms = time_ms(|| {
        let mut a = analyze(&program, nthreads, &config(slice_base, true)).unwrap();
        pad_regions(&mut a, MIN_REGIONS);
        let prep = prepare_region_checkpoints(&a, &program, WARMUP_SLICES).unwrap();
        std::hint::black_box(
            simulate_prepared(&prep, &program, nthreads, &simcfg, &pool_opts).unwrap(),
        );
    });

    // --- report ----------------------------------------------------------
    println!("\nregions: {regions} (padded to >= {MIN_REGIONS}), replay passes: {replay_passes}");
    let mut body = String::new();
    section(
        "checkpoint_generation",
        per_region_ms,
        single_pass_ms,
        &mut body,
    );
    section(
        "clustering_sweep",
        cluster_serial_ms,
        cluster_parallel_ms,
        &mut body,
    );
    section("end_to_end", before_ms, after_ms, &mut body);

    let json_text = format!(
        "{{\n  \"workload\": \"{}\",\n  \"nthreads\": {},\n  \"slice_base\": {},\n  \"regions\": {},\n  \"replay_passes\": {},\n{}  \"smoke\": {}\n}}\n",
        spec.name, nthreads, slice_base, regions, replay_passes, body, args.smoke
    );
    // Self-validate before writing: the committed baseline and the CI gate
    // both rely on this file being well-formed.
    let parsed = json::parse(&json_text).expect("benchmark JSON must parse");
    for key in [
        "workload",
        "regions",
        "replay_passes",
        "checkpoint_generation",
        "clustering_sweep",
        "end_to_end",
    ] {
        assert!(parsed.get(key).is_some(), "missing key {key}");
    }
    std::fs::write(&args.out, &json_text).expect("write BENCH_analysis.json");
    println!("\nwrote {}", args.out);

    let e2e = parsed
        .get("end_to_end")
        .and_then(|v| v.get("speedup"))
        .and_then(json::Value::as_f64)
        .unwrap();
    println!("end-to-end speedup at k = {regions}: {e2e:.2}x");
}
