//! Fig. 10: actual LoopPoint speedups on the NPB-like suite with 8 and 16
//! cores (class C, passive wait policy).

use lp_bench::paper;
use lp_bench::table::{title, x, Table};
use lp_bench::{evaluate_app_mode, geomean};
use lp_omp::WaitPolicy;
use lp_uarch::SimConfig;
use lp_workloads::{npb_workloads, InputClass};

fn main() {
    title(
        "Fig. 10",
        "NPB actual speedups (serial & parallel), class C, passive, 8 vs 16 threads",
    );
    let mut t = Table::new(&[
        "Kernel",
        "8t serial",
        "8t parallel",
        "16t serial",
        "16t parallel",
    ]);
    let mut p8 = Vec::new();
    let mut p16 = Vec::new();
    for spec in npb_workloads() {
        let e8 = evaluate_app_mode(
            &spec,
            InputClass::NpbC,
            8,
            WaitPolicy::Passive,
            &SimConfig::gainestown(8),
            true,
        )
        .unwrap();
        let e16 = evaluate_app_mode(
            &spec,
            InputClass::NpbC,
            16,
            WaitPolicy::Passive,
            &SimConfig::gainestown(16),
            true,
        )
        .unwrap();
        p8.push(e8.speedup.actual_parallel);
        p16.push(e16.speedup.actual_parallel);
        t.row(&[
            spec.name.to_string(),
            x(e8.speedup.actual_serial),
            x(e8.speedup.actual_parallel),
            x(e16.speedup.actual_serial),
            x(e16.speedup.actual_parallel),
        ]);
    }
    t.row(&[
        "GEOMEAN (measured)".to_string(),
        String::new(),
        x(geomean(p8.iter().copied())),
        String::new(),
        x(geomean(p16.iter().copied())),
    ]);
    t.print();
    println!(
        "\nPaper reference (real-scale): 8t parallel max {}x avg {}x; 16t max {}x avg {}x\n\
         (16-thread speedups are lower than 8-thread, a shape this table should echo).",
        paper::FIG10_MAX_8T,
        paper::FIG10_AVG_8T,
        paper::FIG10_MAX_16T,
        paper::FIG10_AVG_16T
    );
}
