//! Property tests for the diagnostics layer:
//!
//! 1. `DiagReport` JSON round-trips *byte-identically* — serialize, parse,
//!    re-serialize must produce the same document, and the parsed report
//!    must equal the original value-for-value.
//! 2. The attribution invariants hold for arbitrary inputs: per-cluster
//!    signed errors sum (within 1e-9, relative) to the end-to-end signed
//!    error, and each cluster's three cause components sum to its error.

use lp_diag::{attribute, ClusterInput, DiagReport, PhaseCost, SelfProfile};
use proptest::prelude::*;

fn arb_cluster_input() -> impl Strategy<Value = ClusterInput> {
    (
        (
            0.0f64..50.0,
            1u64..1_000_000,
            0u64..1_000_000,
            0u64..2_000_000,
            0u64..500_000,
        ),
        (0.0f64..10.0, 0.0f64..10.0),
    )
        .prop_map(
            |((multiplier, filtered, cycles, insts, ff), (rep_d, mean_d))| ClusterInput {
                cluster: 0, // densified below, once the vector length is known
                slice_index: 0,
                multiplier,
                cluster_filtered_insts: filtered,
                rep_cycles: cycles,
                rep_instructions: insts,
                ff_instructions: ff,
                rep_distance: rep_d,
                mean_member_distance: mean_d,
            },
        )
}

fn arb_inputs() -> impl Strategy<Value = Vec<ClusterInput>> {
    proptest::collection::vec(arb_cluster_input(), 1..8).prop_map(|mut v| {
        for (i, c) in v.iter_mut().enumerate() {
            c.cluster = i;
            c.slice_index = i * 3;
        }
        v
    })
}

proptest! {
    #[test]
    fn cluster_errors_sum_to_total(inputs in arb_inputs(), actual in 0.0f64..1e9) {
        let a = attribute(&inputs, actual);
        let sum: f64 = a.clusters.iter().map(|c| c.error_cycles).sum();
        let tolerance = 1e-9 * a.error_cycles.abs().max(1.0);
        prop_assert!(
            (sum - a.error_cycles).abs() <= tolerance,
            "sum of cluster errors {} != total {}",
            sum,
            a.error_cycles
        );
    }

    #[test]
    fn components_sum_to_cluster_error(inputs in arb_inputs(), actual in 0.0f64..1e9) {
        let a = attribute(&inputs, actual);
        for c in &a.clusters {
            let s = c.components.representativeness
                + c.components.warmup
                + c.components.extrapolation;
            let tolerance = 1e-9 * c.error_cycles.abs().max(1.0);
            prop_assert!(
                (s - c.error_cycles).abs() <= tolerance,
                "components {} != cluster error {}",
                s,
                c.error_cycles
            );
        }
    }

    #[test]
    fn report_json_round_trips_byte_identically(
        inputs in arb_inputs(),
        actual in 0.0f64..1e9,
        nthreads in 1u64..64,
        wall in 0u64..1_000_000,
    ) {
        let attribution = attribute(&inputs, actual);
        let profile = SelfProfile {
            wall_us: wall,
            phases: vec![PhaseCost {
                name: "analyze".to_string(),
                total_us: wall / 2,
                count: 1,
                max_us: wall / 2,
            }],
            critical_path: Vec::new(),
        };
        let report = DiagReport::new("prop-workload", nthreads, attribution, profile);
        let text = report.to_json();
        let back = DiagReport::from_json(&text).unwrap();
        prop_assert_eq!(&back, &report, "parsed report differs from the original");
        prop_assert_eq!(back.to_json(), text, "re-serialization is not byte-identical");
    }
}
