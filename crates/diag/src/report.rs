//! The diagnostics report: machine-readable JSON (stable schema,
//! byte-identical round-trip) plus a human-readable table.

use crate::attribution::Attribution;
use crate::profile::{CriticalStep, PhaseCost, SelfProfile};
use crate::SCHEMA_VERSION;
use lp_obs::json::{self, Value};
use std::fmt::Write as _;

/// Signed error cycles of one cluster, split by cause. The three fields
/// sum exactly to the cluster's `error_cycles` (see
/// [`crate::attribution`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorComponents {
    /// Error charged to a representative far from its centroid.
    pub representativeness: f64,
    /// Error charged to approximated warmup/boundary state.
    pub warmup: f64,
    /// The multiplier-extrapolation residual (exact remainder).
    pub extrapolation: f64,
}

/// Per-cluster accuracy diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterDiag {
    /// Cluster id.
    pub cluster: usize,
    /// Profile index of the representative slice.
    pub slice_index: usize,
    /// Eq. 2 multiplier.
    pub multiplier: f64,
    /// Fraction of whole-program filtered work this cluster stands for.
    pub weight: f64,
    /// This cluster's contribution to the extrapolated total (cycles).
    pub predicted_cycles: f64,
    /// Share of the measured total charged to this cluster (cycles).
    pub attributed_actual_cycles: f64,
    /// Signed error in cycles (`predicted − attributed actual`).
    pub error_cycles: f64,
    /// Absolute percentage error against the attributed actual share.
    pub error_pct: f64,
    /// BBV distance of the representative to its centroid.
    pub rep_distance: f64,
    /// Mean BBV distance of cluster members to the centroid.
    pub mean_member_distance: f64,
    /// The per-cause decomposition of `error_cycles`.
    pub components: ErrorComponents,
}

/// A complete accuracy-attribution report for one workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagReport {
    /// Workload name.
    pub workload: String,
    /// Thread count the run used.
    pub nthreads: u64,
    /// Number of clusters (`clusters.len()`, denormalized for tooling).
    pub k: u64,
    /// Extrapolated total cycles.
    pub predicted_cycles: f64,
    /// Measured total cycles the prediction is judged against.
    pub actual_cycles: f64,
    /// End-to-end signed error in cycles.
    pub error_cycles: f64,
    /// End-to-end absolute percentage error.
    pub error_pct: f64,
    /// Per-cluster decomposition (sums to `error_cycles`).
    pub clusters: Vec<ClusterDiag>,
    /// Where the pipeline's own wall-clock went.
    pub profile: SelfProfile,
}

impl DiagReport {
    /// Assembles a report from an [`Attribution`] and a [`SelfProfile`].
    pub fn new(
        workload: impl Into<String>,
        nthreads: u64,
        attribution: Attribution,
        profile: SelfProfile,
    ) -> DiagReport {
        DiagReport {
            workload: workload.into(),
            nthreads,
            k: attribution.clusters.len() as u64,
            predicted_cycles: attribution.predicted_cycles,
            actual_cycles: attribution.actual_cycles,
            error_cycles: attribution.error_cycles,
            error_pct: attribution.error_pct,
            clusters: attribution.clusters,
            profile,
        }
    }

    /// Serializes the report as a self-describing JSON document
    /// (`schema_version` = [`SCHEMA_VERSION`]). Round-trips through
    /// [`DiagReport::from_json`] byte-identically.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// The report as a JSON value tree (for embedding into larger
    /// documents, e.g. the driver's multi-workload report array).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("schema_version".to_string(), Value::from(SCHEMA_VERSION)),
            ("workload".to_string(), Value::from(self.workload.clone())),
            ("nthreads".to_string(), Value::from(self.nthreads)),
            ("k".to_string(), Value::from(self.k)),
            ("predicted_cycles".to_string(), jnum(self.predicted_cycles)),
            ("actual_cycles".to_string(), jnum(self.actual_cycles)),
            ("error_cycles".to_string(), jnum(self.error_cycles)),
            ("error_pct".to_string(), jnum(self.error_pct)),
            (
                "clusters".to_string(),
                Value::Arr(self.clusters.iter().map(cluster_value).collect()),
            ),
            ("profile".to_string(), profile_value(&self.profile)),
        ])
    }

    /// Parses a document produced by [`DiagReport::to_json`].
    ///
    /// # Errors
    /// Malformed JSON, wrong `schema_version`, or missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<DiagReport, String> {
        let doc = json::parse(text).map_err(|e| format!("diag report JSON: {e:?}"))?;
        DiagReport::from_value(&doc)
    }

    /// Parses a report from an already-parsed JSON value (one element of
    /// the driver's report array).
    ///
    /// # Errors
    /// Wrong `schema_version`, or missing/mistyped fields.
    pub fn from_value(doc: &Value) -> Result<DiagReport, String> {
        let version = field_u64(doc, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported diag schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let clusters = doc
            .get("clusters")
            .and_then(Value::as_arr)
            .ok_or("missing clusters array")?
            .iter()
            .map(cluster_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DiagReport {
            workload: field_str(doc, "workload")?,
            nthreads: field_u64(doc, "nthreads")?,
            k: field_u64(doc, "k")?,
            predicted_cycles: field_f64(doc, "predicted_cycles")?,
            actual_cycles: field_f64(doc, "actual_cycles")?,
            error_cycles: field_f64(doc, "error_cycles")?,
            error_pct: field_f64(doc, "error_pct")?,
            clusters,
            profile: profile_from_value(doc.get("profile").ok_or("missing profile")?)?,
        })
    }

    /// Renders the report as a human-readable fixed-width table: totals,
    /// one row per cluster with the per-cause split, and the self-profile
    /// summary (top phases + critical path).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "accuracy attribution: {} ({} threads, k = {})",
            self.workload, self.nthreads, self.k
        );
        let _ = writeln!(
            out,
            "  predicted {:.0} cycles, actual {:.0} cycles -> signed error {:+.0} ({:.2}%)",
            self.predicted_cycles, self.actual_cycles, self.error_cycles, self.error_pct
        );
        let _ = writeln!(
            out,
            "\n  cluster  weight%   error_cycles    repr%  warmup%  extrap%"
        );
        for c in &self.clusters {
            let split = |part: f64| {
                if c.error_cycles == 0.0 {
                    0.0
                } else {
                    part / c.error_cycles * 100.0
                }
            };
            let _ = writeln!(
                out,
                "  {:>7}  {:>6.2}  {:>+13.0}  {:>6.1}  {:>6.1}  {:>6.1}",
                c.cluster,
                c.weight * 100.0,
                c.error_cycles,
                split(c.components.representativeness),
                split(c.components.warmup),
                split(c.components.extrapolation),
            );
        }
        let _ = writeln!(out, "\n  self-profile ({} us wall):", self.profile.wall_us);
        for p in self.profile.phases.iter().take(6) {
            let _ = writeln!(
                out,
                "    {:<24} {:>10} us  x{}",
                p.name, p.total_us, p.count
            );
        }
        if !self.profile.critical_path.is_empty() {
            let chain: Vec<String> = self
                .profile
                .critical_path
                .iter()
                .map(|s| format!("{} ({} us)", s.name, s.dur_us))
                .collect();
            let _ = writeln!(out, "  critical path: {}", chain.join(" > "));
        }
        out
    }
}

/// A float as a JSON value; non-finite values render as the strings
/// `"NaN"` / `"+Inf"` / `"-Inf"` so the document stays valid JSON and
/// round-trips losslessly.
fn jnum(v: f64) -> Value {
    if v.is_finite() {
        Value::from(v)
    } else if v.is_nan() {
        Value::Str("NaN".to_string())
    } else if v > 0.0 {
        Value::Str("+Inf".to_string())
    } else {
        Value::Str("-Inf".to_string())
    }
}

fn num_from(v: &Value) -> Option<f64> {
    match v {
        Value::Str(s) => match s.as_str() {
            "NaN" => Some(f64::NAN),
            "+Inf" => Some(f64::INFINITY),
            "-Inf" => Some(f64::NEG_INFINITY),
            _ => None,
        },
        other => other.as_f64(),
    }
}

fn field_f64(doc: &Value, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(num_from)
        .ok_or_else(|| format!("missing/mistyped number field {key:?}"))
}

fn field_u64(doc: &Value, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing/mistyped integer field {key:?}"))
}

fn field_str(doc: &Value, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing/mistyped string field {key:?}"))
}

fn cluster_value(c: &ClusterDiag) -> Value {
    Value::Obj(vec![
        ("cluster".to_string(), Value::from(c.cluster as u64)),
        ("slice_index".to_string(), Value::from(c.slice_index as u64)),
        ("multiplier".to_string(), jnum(c.multiplier)),
        ("weight".to_string(), jnum(c.weight)),
        ("predicted_cycles".to_string(), jnum(c.predicted_cycles)),
        (
            "attributed_actual_cycles".to_string(),
            jnum(c.attributed_actual_cycles),
        ),
        ("error_cycles".to_string(), jnum(c.error_cycles)),
        ("error_pct".to_string(), jnum(c.error_pct)),
        ("rep_distance".to_string(), jnum(c.rep_distance)),
        (
            "mean_member_distance".to_string(),
            jnum(c.mean_member_distance),
        ),
        (
            "components".to_string(),
            Value::Obj(vec![
                (
                    "representativeness".to_string(),
                    jnum(c.components.representativeness),
                ),
                ("warmup".to_string(), jnum(c.components.warmup)),
                (
                    "extrapolation".to_string(),
                    jnum(c.components.extrapolation),
                ),
            ]),
        ),
    ])
}

fn cluster_from_value(v: &Value) -> Result<ClusterDiag, String> {
    let comp = v.get("components").ok_or("missing components")?;
    Ok(ClusterDiag {
        cluster: field_u64(v, "cluster")? as usize,
        slice_index: field_u64(v, "slice_index")? as usize,
        multiplier: field_f64(v, "multiplier")?,
        weight: field_f64(v, "weight")?,
        predicted_cycles: field_f64(v, "predicted_cycles")?,
        attributed_actual_cycles: field_f64(v, "attributed_actual_cycles")?,
        error_cycles: field_f64(v, "error_cycles")?,
        error_pct: field_f64(v, "error_pct")?,
        rep_distance: field_f64(v, "rep_distance")?,
        mean_member_distance: field_f64(v, "mean_member_distance")?,
        components: ErrorComponents {
            representativeness: field_f64(comp, "representativeness")?,
            warmup: field_f64(comp, "warmup")?,
            extrapolation: field_f64(comp, "extrapolation")?,
        },
    })
}

fn profile_value(p: &SelfProfile) -> Value {
    Value::Obj(vec![
        ("wall_us".to_string(), Value::from(p.wall_us)),
        (
            "phases".to_string(),
            Value::Arr(
                p.phases
                    .iter()
                    .map(|ph| {
                        Value::Obj(vec![
                            ("name".to_string(), Value::from(ph.name.clone())),
                            ("total_us".to_string(), Value::from(ph.total_us)),
                            ("count".to_string(), Value::from(ph.count)),
                            ("max_us".to_string(), Value::from(ph.max_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "critical_path".to_string(),
            Value::Arr(
                p.critical_path
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("name".to_string(), Value::from(s.name.clone())),
                            ("dur_us".to_string(), Value::from(s.dur_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn profile_from_value(v: &Value) -> Result<SelfProfile, String> {
    let phases = v
        .get("phases")
        .and_then(Value::as_arr)
        .ok_or("missing profile.phases")?
        .iter()
        .map(|p| {
            Ok(PhaseCost {
                name: field_str(p, "name")?,
                total_us: field_u64(p, "total_us")?,
                count: field_u64(p, "count")?,
                max_us: field_u64(p, "max_us")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let critical_path = v
        .get("critical_path")
        .and_then(Value::as_arr)
        .ok_or("missing profile.critical_path")?
        .iter()
        .map(|s| {
            Ok(CriticalStep {
                name: field_str(s, "name")?,
                dur_us: field_u64(s, "dur_us")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SelfProfile {
        wall_us: field_u64(v, "wall_us")?,
        phases,
        critical_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::{attribute, ClusterInput};

    fn sample_report() -> DiagReport {
        let inputs = vec![
            ClusterInput {
                cluster: 0,
                slice_index: 2,
                multiplier: 3.25,
                cluster_filtered_insts: 3_000,
                rep_cycles: 1_000,
                rep_instructions: 2_400,
                ff_instructions: 600,
                rep_distance: 0.05,
                mean_member_distance: 0.2,
            },
            ClusterInput {
                cluster: 1,
                slice_index: 5,
                multiplier: 1.0,
                cluster_filtered_insts: 1_000,
                rep_cycles: 700,
                rep_instructions: 1_500,
                ff_instructions: 0,
                rep_distance: 0.0,
                mean_member_distance: 0.0,
            },
        ];
        let attribution = attribute(&inputs, 4_000.0);
        let profile = SelfProfile {
            wall_us: 12_345,
            phases: vec![PhaseCost {
                name: "analyze".to_string(),
                total_us: 9_000,
                count: 1,
                max_us: 9_000,
            }],
            critical_path: vec![CriticalStep {
                name: "analyze".to_string(),
                dur_us: 9_000,
            }],
        };
        DiagReport::new("demo", 4, attribution, profile)
    }

    #[test]
    fn json_round_trip_is_byte_identical_and_lossless() {
        let report = sample_report();
        let text = report.to_json();
        let back = DiagReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn non_finite_values_survive_the_round_trip() {
        let mut report = sample_report();
        report.error_pct = f64::INFINITY;
        report.clusters[0].error_pct = f64::NAN;
        let text = report.to_json();
        lp_obs::json::parse(&text).expect("must stay valid JSON");
        let back = DiagReport::from_json(&text).unwrap();
        assert!(back.error_pct.is_infinite() && back.error_pct > 0.0);
        assert!(back.clusters[0].error_pct.is_nan());
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text =
            sample_report()
                .to_json()
                .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
        let err = DiagReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn table_names_totals_clusters_and_critical_path() {
        let t = sample_report().render_table();
        assert!(t.contains("accuracy attribution: demo"));
        assert!(t.contains("signed error"));
        assert!(t.contains("cluster  weight%"));
        assert!(t.contains("critical path: analyze"));
        // One row per cluster.
        assert!(
            t.lines()
                .filter(|l| l.trim_start().starts_with('0') || l.trim_start().starts_with('1'))
                .count()
                >= 2,
            "{t}"
        );
    }
}
