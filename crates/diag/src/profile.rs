//! Self-profile: where the pipeline's own wall-clock went, summarized
//! from the recorded trace spans.
//!
//! Two views are derived from the Chrome-trace event stream:
//!
//! * **per-phase totals** — complete spans aggregated by name (total
//!   duration, call count, max single duration), sorted by total
//!   descending, so the dominant cost is the first row;
//! * **critical path** — starting from the longest *root* span (one not
//!   enclosed by any other span on the same lane), repeatedly descend
//!   into the longest directly-enclosed child. The resulting chain names
//!   the nested phases that actually bound the run's wall-clock.

use lp_obs::trace::Phase;
use lp_obs::TraceEvent;

/// Aggregated cost of one named span across the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Span name (e.g. `analyze.clustering`, `region.sim`).
    pub name: String,
    /// Sum of all durations, microseconds.
    pub total_us: u64,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

/// One step of the critical path: a span name and its duration.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// Span name.
    pub name: String,
    /// Duration of the chosen span, microseconds.
    pub dur_us: u64,
}

/// The pipeline's own cost summary (see the module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelfProfile {
    /// Observed wall-clock: last span end minus first span start,
    /// microseconds (0 with no complete spans).
    pub wall_us: u64,
    /// Per-name totals, sorted by `total_us` descending, then by name.
    pub phases: Vec<PhaseCost>,
    /// Longest root-to-leaf span chain (outermost first).
    pub critical_path: Vec<CriticalStep>,
}

impl SelfProfile {
    /// Builds the profile from recorded trace events; only complete
    /// (`"X"`) spans participate.
    pub fn from_events(events: &[TraceEvent]) -> SelfProfile {
        let spans: Vec<&TraceEvent> = events.iter().filter(|e| e.ph == Phase::Complete).collect();
        if spans.is_empty() {
            return SelfProfile::default();
        }

        let start = spans.iter().map(|e| e.ts_us).min().unwrap_or(0);
        let end = spans.iter().map(|e| e.ts_us + e.dur_us).max().unwrap_or(0);

        let mut by_name: std::collections::BTreeMap<&str, PhaseCost> =
            std::collections::BTreeMap::new();
        for e in &spans {
            let entry = by_name.entry(e.name.as_str()).or_insert_with(|| PhaseCost {
                name: e.name.clone(),
                total_us: 0,
                count: 0,
                max_us: 0,
            });
            entry.total_us += e.dur_us;
            entry.count += 1;
            entry.max_us = entry.max_us.max(e.dur_us);
        }
        let mut phases: Vec<PhaseCost> = by_name.into_values().collect();
        phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

        SelfProfile {
            wall_us: end.saturating_sub(start),
            phases,
            critical_path: critical_path(&spans),
        }
    }
}

/// `a` strictly encloses `b` on the same lane (proper containment; ties
/// on both endpoints do not count, so a span never encloses itself).
fn encloses(a: &TraceEvent, b: &TraceEvent) -> bool {
    a.tid == b.tid
        && a.ts_us <= b.ts_us
        && a.ts_us + a.dur_us >= b.ts_us + b.dur_us
        && (a.ts_us, a.ts_us + a.dur_us) != (b.ts_us, b.ts_us + b.dur_us)
}

fn critical_path(spans: &[&TraceEvent]) -> Vec<CriticalStep> {
    // Roots: spans not enclosed by any other span.
    let root = spans
        .iter()
        .filter(|s| !spans.iter().any(|o| encloses(o, s)))
        .max_by_key(|s| s.dur_us);
    let Some(mut current) = root.copied() else {
        return Vec::new();
    };
    let mut path = vec![CriticalStep {
        name: current.name.clone(),
        dur_us: current.dur_us,
    }];
    loop {
        // Direct children: enclosed by `current` but by no other span that
        // is itself enclosed by `current` (i.e. nearest enclosure).
        let children: Vec<&&TraceEvent> = spans
            .iter()
            .filter(|s| encloses(current, s))
            .filter(|s| {
                !spans
                    .iter()
                    .any(|mid| encloses(current, mid) && encloses(mid, s))
            })
            .collect();
        match children.into_iter().max_by_key(|s| s.dur_us) {
            Some(child) => {
                path.push(CriticalStep {
                    name: child.name.clone(),
                    dur_us: child.dur_us,
                });
                current = child;
            }
            None => break,
        }
        if path.len() > 64 {
            break; // degenerate nesting guard
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_obs::trace::Phase;

    fn span(name: &str, tid: u64, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "pipeline",
            ph: Phase::Complete,
            ts_us: ts,
            dur_us: dur,
            tid,
            args: Vec::new(),
            ctx: None,
        }
    }

    #[test]
    fn empty_events_give_default_profile() {
        let p = SelfProfile::from_events(&[]);
        assert_eq!(p, SelfProfile::default());
    }

    #[test]
    fn phases_aggregate_and_sort_by_total() {
        let events = vec![
            span("a", 0, 0, 10),
            span("a", 0, 20, 30),
            span("b", 0, 60, 100),
        ];
        let p = SelfProfile::from_events(&events);
        assert_eq!(p.wall_us, 160);
        assert_eq!(p.phases[0].name, "b");
        assert_eq!(p.phases[0].total_us, 100);
        assert_eq!(p.phases[1].name, "a");
        assert_eq!(p.phases[1].total_us, 40);
        assert_eq!(p.phases[1].count, 2);
        assert_eq!(p.phases[1].max_us, 30);
    }

    #[test]
    fn critical_path_descends_into_longest_children() {
        // analyze [0,100) encloses slicing [10,70) and clustering [70,95);
        // slicing encloses replay [20,60).
        let events = vec![
            span("analyze", 0, 0, 100),
            span("analyze.slicing", 0, 10, 60),
            span("analyze.clustering", 0, 70, 25),
            span("analyze.slicing.replay", 0, 20, 40),
            // A long span on another lane that is NOT a root child.
            span("region.sim", 1, 0, 80),
        ];
        let p = SelfProfile::from_events(&events);
        let names: Vec<&str> = p.critical_path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["analyze", "analyze.slicing", "analyze.slicing.replay"]
        );
        assert_eq!(p.critical_path[0].dur_us, 100);
    }

    #[test]
    fn identical_twin_spans_do_not_recurse_forever() {
        // Two spans with the same interval must not enclose each other.
        let events = vec![span("x", 0, 0, 10), span("x", 0, 0, 10)];
        let p = SelfProfile::from_events(&events);
        assert!(p.critical_path.len() <= 2, "{:?}", p.critical_path);
        assert_eq!(p.phases[0].count, 2);
    }
}
