//! The error-attribution math: per-cluster signed error decomposition
//! with an exact-sum guarantee.
//!
//! # The accounting scheme
//!
//! Let `pred_c = rep_cycles_c × multiplier_c` be cluster *c*'s
//! contribution to the extrapolated total (Eq. 1), and let
//! `weight_c = cluster_filtered_c / total_filtered` be the fraction of
//! whole-program (spin-filtered) work the cluster stands for. The actual
//! total is charged to clusters by weight, so the per-cluster signed
//! error is
//!
//! ```text
//! e_c = pred_c − weight_c × actual_total_cycles
//! ```
//!
//! Because `Σ pred_c` is the prediction and `Σ weight_c = 1` over a
//! partition of the filtered work, `Σ e_c` equals the end-to-end signed
//! error *exactly* — attribution never invents or loses error mass.
//!
//! Each `e_c` is then split by cause:
//!
//! * a **representativeness** fraction `ρ_c`, the representative's
//!   BBV-space distance to its centroid relative to the cluster's mean
//!   member distance (clamped to `[0, 1]`; a rep sitting on the centroid
//!   contributes none of the error to this cause);
//! * a **warmup/boundary** fraction `β_c`, the fast-forwarded share of
//!   the region's executed instructions (approximated state at the
//!   boundary);
//! * the **extrapolation** component is the exact remainder
//!   `e_c − ρ_c·e_c − β_c·e_c`, so the three components always sum to
//!   `e_c` regardless of rounding.
//!
//! When `ρ_c + β_c > 1` both fractions are rescaled to sum to 1 — the
//! remainder is then 0, never negative-by-construction noise.

use crate::report::{ClusterDiag, ErrorComponents};

/// Per-cluster observations feeding [`attribute`]. One entry per cluster,
/// produced by the pipeline (see `looppoint::diagnose`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInput {
    /// Cluster id (dense, `0..k`).
    pub cluster: usize,
    /// Profile index of the representative slice.
    pub slice_index: usize,
    /// Eq. 2 multiplier of the representative region.
    pub multiplier: f64,
    /// Spin-filtered instructions across the whole cluster.
    pub cluster_filtered_insts: u64,
    /// Detailed cycles the representative's simulation took.
    pub rep_cycles: u64,
    /// Detailed instructions the representative's simulation retired.
    pub rep_instructions: u64,
    /// Instructions fast-forwarded before the detailed window (warmup).
    pub ff_instructions: u64,
    /// BBV-space distance of the representative to its cluster centroid.
    pub rep_distance: f64,
    /// Mean BBV-space distance of all cluster members to the centroid.
    pub mean_member_distance: f64,
}

/// The result of [`attribute`]: per-cluster diagnostics plus the totals
/// they provably sum to.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Per-cluster decomposition, in cluster order.
    pub clusters: Vec<ClusterDiag>,
    /// Extrapolated total cycles (`Σ pred_c`).
    pub predicted_cycles: f64,
    /// Measured total cycles the errors are charged against.
    pub actual_cycles: f64,
    /// End-to-end signed error in cycles (`predicted − actual`;
    /// equals `Σ e_c` exactly).
    pub error_cycles: f64,
    /// End-to-end absolute percentage error.
    pub error_pct: f64,
}

fn guarded_ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 && num.is_finite() {
        (num / den).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Decomposes the extrapolation error of one workload run into
/// per-cluster, per-cause signed contributions (see the module docs for
/// the scheme and its exact-sum invariants).
///
/// `actual_cycles` is the measured whole-program total the prediction is
/// judged against. Pass the prediction itself when no reference run
/// exists — every error then attributes to exactly zero, which keeps the
/// report well-formed for pipelines that skip the full-simulation
/// baseline.
pub fn attribute(inputs: &[ClusterInput], actual_cycles: f64) -> Attribution {
    let total_filtered: u64 = inputs.iter().map(|c| c.cluster_filtered_insts).sum();
    let predicted: f64 = inputs
        .iter()
        .map(|c| c.rep_cycles as f64 * c.multiplier)
        .sum();

    let clusters = inputs
        .iter()
        .map(|c| {
            let pred_c = c.rep_cycles as f64 * c.multiplier;
            let weight = if total_filtered == 0 {
                0.0
            } else {
                c.cluster_filtered_insts as f64 / total_filtered as f64
            };
            let attributed_actual = weight * actual_cycles;
            let error = pred_c - attributed_actual;

            let mut rho = guarded_ratio(c.rep_distance, c.mean_member_distance);
            let mut beta = guarded_ratio(
                c.ff_instructions as f64,
                c.ff_instructions as f64 + c.rep_instructions as f64,
            );
            let causes = rho + beta;
            if causes > 1.0 {
                rho /= causes;
                beta /= causes;
            }
            let representativeness = rho * error;
            let warmup = beta * error;
            // Exact remainder: the three components sum to `error` by
            // construction, immune to floating-point cause-fraction noise.
            let extrapolation = error - representativeness - warmup;

            ClusterDiag {
                cluster: c.cluster,
                slice_index: c.slice_index,
                multiplier: c.multiplier,
                weight,
                predicted_cycles: pred_c,
                attributed_actual_cycles: attributed_actual,
                error_cycles: error,
                error_pct: if attributed_actual != 0.0 {
                    (error / attributed_actual * 100.0).abs()
                } else if error == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                },
                rep_distance: c.rep_distance,
                mean_member_distance: c.mean_member_distance,
                components: ErrorComponents {
                    representativeness,
                    warmup,
                    extrapolation,
                },
            }
        })
        .collect::<Vec<_>>();

    let error_cycles = predicted - actual_cycles;
    Attribution {
        clusters,
        predicted_cycles: predicted,
        actual_cycles,
        error_cycles,
        error_pct: if actual_cycles != 0.0 {
            (error_cycles / actual_cycles * 100.0).abs()
        } else if error_cycles == 0.0 {
            0.0
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(cluster: usize, mult: f64, filtered: u64, cycles: u64) -> ClusterInput {
        ClusterInput {
            cluster,
            slice_index: cluster * 2,
            multiplier: mult,
            cluster_filtered_insts: filtered,
            rep_cycles: cycles,
            rep_instructions: cycles * 2,
            ff_instructions: cycles / 2,
            rep_distance: 0.1,
            mean_member_distance: 0.4,
        }
    }

    #[test]
    fn cluster_errors_sum_to_total_error() {
        let inputs = vec![
            input(0, 3.0, 3_000, 1_000),
            input(1, 1.0, 1_000, 700),
            input(2, 2.5, 2_500, 400),
        ];
        let actual = 4_500.0;
        let a = attribute(&inputs, actual);
        let sum: f64 = a.clusters.iter().map(|c| c.error_cycles).sum();
        assert!(
            (sum - a.error_cycles).abs() < 1e-9,
            "Σe_c = {sum} vs total {}",
            a.error_cycles
        );
        assert!((a.predicted_cycles - (3_000.0 + 700.0 + 1_000.0)).abs() < 1e-9);
    }

    #[test]
    fn components_sum_exactly_to_cluster_error() {
        let inputs = vec![input(0, 7.3, 10, 999), input(1, 0.2, 90, 123)];
        let a = attribute(&inputs, 1_234.5);
        for c in &a.clusters {
            let s =
                c.components.representativeness + c.components.warmup + c.components.extrapolation;
            assert!(
                (s - c.error_cycles).abs() <= 1e-9 * c.error_cycles.abs().max(1.0),
                "components {s} != error {}",
                c.error_cycles
            );
        }
    }

    #[test]
    fn perfect_prediction_attributes_zero_everywhere() {
        let inputs = vec![input(0, 2.0, 100, 500)];
        let a = attribute(&inputs, 1_000.0); // pred = 500*2 = actual
        assert_eq!(a.error_cycles, 0.0);
        assert_eq!(a.error_pct, 0.0);
        let c = &a.clusters[0];
        assert_eq!(c.error_cycles, 0.0);
        assert_eq!(c.components.representativeness, 0.0);
        assert_eq!(c.components.warmup, 0.0);
        assert_eq!(c.components.extrapolation, 0.0);
    }

    #[test]
    fn cause_fractions_are_clamped_and_normalized() {
        let mut i = input(0, 1.0, 100, 100);
        i.rep_distance = 10.0; // ρ clamps to 1
        i.mean_member_distance = 0.5;
        i.ff_instructions = 1_000_000; // β near 1; ρ+β > 1 → rescale
        let a = attribute(&[i], 50.0);
        let c = &a.clusters[0];
        let s = c.components.representativeness + c.components.warmup + c.components.extrapolation;
        assert!((s - c.error_cycles).abs() < 1e-9);
        // After normalization the remainder is ~0.
        assert!(c.components.extrapolation.abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn degenerate_inputs_are_finite() {
        let mut i = input(0, 0.0, 0, 0);
        i.rep_distance = f64::NAN;
        i.mean_member_distance = 0.0;
        i.ff_instructions = 0;
        i.rep_instructions = 0;
        let a = attribute(&[i], 0.0);
        assert_eq!(a.error_cycles, 0.0);
        assert_eq!(a.error_pct, 0.0);
        let c = &a.clusters[0];
        assert!(c.error_cycles.is_finite());
        assert!(c.components.representativeness.is_finite());
    }

    #[test]
    fn no_reference_run_means_zero_error() {
        let inputs = vec![input(0, 2.0, 60, 300), input(1, 1.0, 40, 400)];
        let predicted = 300.0 * 2.0 + 400.0;
        let a = attribute(&inputs, predicted);
        assert_eq!(a.error_cycles, 0.0);
        let sum: f64 = a.clusters.iter().map(|c| c.error_cycles).sum();
        assert!(sum.abs() < 1e-9);
    }
}
