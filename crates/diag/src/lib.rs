//! Accuracy-attribution diagnostics for sampled simulation.
//!
//! A LoopPoint prediction can be wrong for several distinct reasons, and
//! knowing the *total* error says nothing about which one to fix. This
//! crate decomposes the end-to-end extrapolation error into per-cluster
//! signed contributions and splits each contribution into three causes:
//!
//! * **representativeness** — the chosen representative region sits far
//!   from its cluster centroid in BBV space, so it stands for work it does
//!   not resemble (§III-E's clustering quality, made visible per cluster);
//! * **warmup / boundary** — microarchitectural state at the region
//!   boundary was approximated (fast-forward warming instead of true
//!   history), proportional to the warmup share of the region's execution;
//! * **extrapolation** — the Eq. 2 multiplier residual: whatever error
//!   remains once the other two causes are accounted for.
//!
//! The decomposition is *exact by construction*: per-cluster signed errors
//! sum to the end-to-end signed error, and the three components sum to
//! each cluster's error (see [`attribution::attribute`]). That invariant
//! is what makes the report trustworthy as a debugging tool — no error
//! mass appears or disappears in the accounting.
//!
//! The crate also summarizes the pipeline's *own* cost from recorded
//! trace spans ([`profile::SelfProfile`]) so a report answers both "why
//! is the prediction wrong?" and "where did the analysis time go?".
//!
//! Reports serialize to JSON ([`DiagReport::to_json`] /
//! [`DiagReport::from_json`] round-trip byte-identically) and render as a
//! human-readable table ([`DiagReport::render_table`]).

#![warn(missing_docs)]

pub mod attribution;
pub mod profile;
pub mod report;

pub use attribution::{attribute, Attribution, ClusterInput};
pub use profile::{PhaseCost, SelfProfile};
pub use report::{ClusterDiag, DiagReport, ErrorComponents};

/// Report schema version (the `schema_version` field of the JSON
/// document). Bump on any structural change so downstream tooling can
/// reject documents it does not understand.
pub const SCHEMA_VERSION: u64 = 1;
