//! # lp-workloads — synthetic multi-threaded benchmark suites
//!
//! Stand-ins for the paper's workloads (SPEC CPU2017 *speed* OpenMP subset,
//! NAS Parallel Benchmarks 3.3 class C, and the artifact's `matrix-omp`
//! demo), generated as `lp-isa` programs over the `lp-omp` runtime.
//!
//! The substitution preserves what the LoopPoint methodology actually
//! depends on (instruction counts are scaled ~1000× down; DESIGN.md §7):
//!
//! * **phase structure** — every app is a schedule of rounds over distinct
//!   kernels (stream, stencil, random access, compute chains, reductions,
//!   locked updates), so clustering has real phases to find;
//! * **synchronization mix** — each SPEC-like app uses exactly the
//!   primitives Table III lists for it (static/dynamic for, barriers,
//!   master, single, reductions, atomics, locks), and both `657.xz_s`
//!   stand-ins are barrier-free (the BarrierPoint failure case);
//! * **parallelism profile** — `657.xz_s.1` is single-threaded,
//!   `657.xz_s.2` runs four heterogeneous threads (Fig. 3's imbalance);
//!   everything else follows the requested thread count;
//! * **steady state** — every array is pre-touched in a dedicated init
//!   phase so cold-cache transients live in their own cluster, mirroring
//!   how the paper's 100 M-instruction slices amortize warmup.
//!
//! ## Example
//!
//! ```
//! use lp_workloads::{build, InputClass, spec_workloads};
//! use lp_omp::WaitPolicy;
//!
//! let spec = &spec_workloads()[0]; // 603.bwaves_s.1
//! let program = build(spec, InputClass::Test, 8, WaitPolicy::Passive);
//! assert_eq!(program.name(), "603.bwaves_s.1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demo;
pub mod kernels;
mod npb;
mod recipe;
mod spec;

pub use demo::matrix_demo;
pub use npb::npb_workloads;
pub use recipe::{build, InputClass, Suite, SyncPrimitives, WorkloadSpec};
pub use spec::spec_workloads;

/// Convenience: look up a workload by name across all suites.
pub fn find(name: &str) -> Option<WorkloadSpec> {
    spec_workloads()
        .into_iter()
        .chain(npb_workloads())
        .find(|w| w.name == name)
}
