//! Workload specifications and the recipe interpreter.

use crate::kernels::{self, KernelCtx, Schedule};
use lp_isa::{Program, ProgramBuilder, Reg};
use lp_omp::{LockId, OmpRuntime, WaitPolicy, APP_BASE};
use std::sync::Arc;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU2017-speed-like applications.
    Spec,
    /// NAS-Parallel-Benchmarks-like kernels.
    Npb,
    /// Demo applications (the artifact's `matrix-omp`).
    Demo,
}

/// Synchronization primitives a workload uses (Table III columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct SyncPrimitives {
    pub static_for: bool,
    pub dynamic_for: bool,
    pub barrier: bool,
    pub master: bool,
    pub single: bool,
    pub reduction: bool,
    pub atomic: bool,
    pub lock: bool,
}

/// Input scale (the paper's input sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputClass {
    /// Tiny inputs for tests and the demo (seconds end-to-end).
    Test,
    /// The paper's `train` scale (full pipelines validated against full
    /// detailed simulation).
    Train,
    /// The paper's `ref` scale (~12× train; profiled and sampled, full
    /// detailed reference impractical — exactly as in the paper).
    Ref,
    /// NPB class C equivalent.
    NpbC,
}

impl InputClass {
    /// Round-count multiplier relative to the base recipe.
    pub fn round_multiplier(self) -> u64 {
        match self {
            InputClass::Test => 1,
            InputClass::Train => 6,
            InputClass::Ref => 72,
            InputClass::NpbC => 8,
        }
    }

    /// Lower-case name (as used in result tables).
    pub fn name(self) -> &'static str {
        match self {
            InputClass::Test => "test",
            InputClass::Train => "train",
            InputClass::Ref => "ref",
            InputClass::NpbC => "C",
        }
    }
}

/// A phase inside a workload round: one parallel region running a kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    Stream {
        base: u64,
        stride: u64,
        iters: u64,
        sched: Schedule,
    },
    Stencil {
        src: u64,
        dst: u64,
        iters: u64,
        sched: Schedule,
    },
    Random {
        base: u64,
        table_words: u64,
        iters: u64,
        sched: Schedule,
    },
    IntCompute {
        iters: u64,
        depth: u32,
        sched: Schedule,
    },
    FpCompute {
        iters: u64,
        depth: u32,
        div: bool,
        sched: Schedule,
    },
    Reduce {
        iters: u64,
        addr: u64,
    },
    Locked {
        iters: u64,
        lock: usize,
        addr: u64,
    },
    Histogram {
        iters: u64,
        base: u64,
        buckets: u64,
    },
    Skewed {
        iters: u64,
        base: u64,
        spread: u64,
        sched: Schedule,
    },
}

impl Phase {
    fn schedule(&self) -> Schedule {
        match *self {
            Phase::Stream { sched, .. }
            | Phase::Stencil { sched, .. }
            | Phase::Random { sched, .. }
            | Phase::IntCompute { sched, .. }
            | Phase::FpCompute { sched, .. }
            | Phase::Skewed { sched, .. } => sched,
            Phase::Reduce { .. } | Phase::Locked { .. } | Phase::Histogram { .. } => {
                Schedule::Static
            }
        }
    }
}

/// The declarative program recipe a spec builds from.
#[derive(Debug, Clone)]
pub(crate) struct Recipe {
    /// Arrays to pre-touch (base address, length in words).
    pub init_arrays: Vec<(u64, u64)>,
    /// Rounds of the phase schedule at `InputClass::Test` scale.
    pub base_rounds: u64,
    /// The per-round phase schedule.
    pub phases: Vec<Phase>,
    /// Scale *iterations* (phase sizes) with the input class instead of
    /// the round count — applications whose serial structure is fixed but
    /// whose working set grows (the paper's 638.imagick: one inter-barrier
    /// region spanning almost the whole application at ref scale).
    pub scale_iters: bool,
    /// Decorate one region per round with a `master` section.
    pub use_master: bool,
    /// Decorate one region per round with a `single` section.
    pub use_single: bool,
    /// Emit an explicit mid-region barrier in stencil phases.
    pub use_barrier: bool,
}

/// A workload's identity and metadata (Tables II and III).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmark name (e.g. `603.bwaves_s.1`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Source language (Table II).
    pub language: &'static str,
    /// Thousands of lines of code in the original (Table II).
    pub kloc: u32,
    /// Application area (Table II).
    pub area: &'static str,
    /// Synchronization primitives (Table III).
    pub sync: SyncPrimitives,
    /// Fixed thread count, if the app dictates one (`657.xz_s.1` = 1,
    /// `657.xz_s.2` = 4).
    pub fixed_threads: Option<usize>,
    pub(crate) recipe: Recipe,
}

impl WorkloadSpec {
    /// The thread count this workload will actually run with when asked
    /// for `requested` threads.
    pub fn effective_threads(&self, requested: usize) -> usize {
        self.fixed_threads.unwrap_or(requested)
    }
}

/// Builds the executable program for a workload at the given input scale,
/// thread count, and wait policy.
///
/// The returned program pairs with a machine/simulator of
/// [`WorkloadSpec::effective_threads`] threads.
pub fn build(
    spec: &WorkloadSpec,
    input: InputClass,
    nthreads: usize,
    policy: WaitPolicy,
) -> Arc<Program> {
    let nthreads = spec.effective_threads(nthreads);
    let (rounds, iter_mult) = if spec.recipe.scale_iters {
        (spec.recipe.base_rounds, input.round_multiplier())
    } else {
        (spec.recipe.base_rounds * input.round_multiplier(), 1)
    };

    let mut pb = ProgramBuilder::new(spec.name);
    let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);

    // Steady-state warmers: pre-touch every array in dedicated phases.
    // Iteration-scaled recipes touch proportionally larger extents, so the
    // pre-touch must grow with them to keep cold-start transients out of
    // the measured phases.
    for (i, &(base, words)) in spec.recipe.init_arrays.iter().enumerate() {
        let words = words * iter_mult;
        rt.emit_parallel(&mut c, &format!("init{i}"), |c, rt| {
            kernels::init_array(c, rt, &format!("init{i}.loop"), base, words);
        });
    }

    // The round loop. r10 is the round counter; kernels only use r1–r8 and
    // the worksharing helpers r16–r23, so it survives parallel regions on
    // the main thread.
    c.li(Reg::R10, rounds as i64);
    c.counted_loop_reg("main.rounds", Reg::R10, |c| {
        for (pi, phase) in spec.recipe.phases.iter().enumerate() {
            if matches!(phase.schedule(), Schedule::Dynamic { .. }) {
                rt.emit_dyn_reset(c);
            }
            let region = format!("p{pi}");
            let decorate_master = spec.recipe.use_master && pi == 0;
            let decorate_single = spec.recipe.use_single && pi == 1 % spec.recipe.phases.len();
            rt.emit_parallel(c, &region, |c, rt| {
                if decorate_master {
                    rt.emit_master(c, |c, _| {
                        // Serial bookkeeping by the master thread.
                        c.li(Reg::R1, (APP_BASE + 0x80) as i64);
                        c.load(Reg::R2, Reg::R1, 0);
                        c.alui(lp_isa::AluOp::Add, Reg::R2, Reg::R2, 1);
                        c.store(Reg::R2, Reg::R1, 0);
                    });
                }
                if decorate_single {
                    rt.emit_single(c, |c, _| {
                        c.li(Reg::R1, (APP_BASE + 0x88) as i64);
                        c.load(Reg::R2, Reg::R1, 0);
                        c.alui(lp_isa::AluOp::Add, Reg::R2, Reg::R2, 1);
                        c.store(Reg::R2, Reg::R1, 0);
                    });
                }
                emit_phase(c, rt, &region, phase, spec.recipe.use_barrier, iter_mult);
            });
        }
    });

    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    Arc::new(pb.finish())
}

fn emit_phase(
    c: &mut lp_isa::CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    region: &str,
    phase: &Phase,
    use_barrier: bool,
    iter_mult: u64,
) {
    let name = format!("{region}.loop");
    let m = iter_mult;
    match *phase {
        Phase::Stream {
            base,
            stride,
            iters,
            sched,
        } => {
            kernels::stream(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: sched,
                },
                base,
                stride,
            );
        }
        Phase::Stencil {
            src,
            dst,
            iters,
            sched,
        } => {
            kernels::stencil(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: sched,
                },
                src,
                dst,
            );
            if use_barrier {
                // Sweep back after a barrier: classic red/black iteration.
                rt.emit_barrier(c);
                kernels::stencil(
                    c,
                    rt,
                    &format!("{region}.loop2"),
                    KernelCtx {
                        iters: iters * m,
                        schedule: sched,
                    },
                    dst,
                    src,
                );
            }
        }
        Phase::Random {
            base,
            table_words,
            iters,
            sched,
        } => {
            kernels::random_access(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: sched,
                },
                base,
                table_words,
            );
        }
        Phase::IntCompute {
            iters,
            depth,
            sched,
        } => {
            kernels::int_compute(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: sched,
                },
                depth,
            );
        }
        Phase::FpCompute {
            iters,
            depth,
            div,
            sched,
        } => {
            kernels::fp_compute(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: sched,
                },
                depth,
                div,
            );
        }
        Phase::Reduce { iters, addr } => {
            kernels::reduce_sum(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: Schedule::Static,
                },
                addr,
            );
        }
        Phase::Locked { iters, lock, addr } => {
            kernels::locked_update(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: Schedule::Static,
                },
                LockId(lock),
                addr,
            );
        }
        Phase::Histogram {
            iters,
            base,
            buckets,
        } => {
            kernels::atomic_histogram(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: Schedule::Static,
                },
                base,
                buckets,
            );
        }
        Phase::Skewed {
            iters,
            base,
            spread,
            sched,
        } => {
            kernels::skewed_work(
                c,
                rt,
                &name,
                KernelCtx {
                    iters: iters * m,
                    schedule: sched,
                },
                base,
                spread,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_class_scaling() {
        assert_eq!(InputClass::Test.round_multiplier(), 1);
        assert!(InputClass::Ref.round_multiplier() > 10 * InputClass::Test.round_multiplier());
        assert_eq!(InputClass::Train.name(), "train");
        assert_eq!(InputClass::NpbC.name(), "C");
    }
}
