//! Reusable loop kernels the workload recipes are assembled from.
//!
//! Every kernel emits a worksharing loop (static or dynamic schedule) whose
//! body exercises one behaviour class: streaming, stencil, random access,
//! integer/floating-point compute chains, reductions, or lock-contended
//! updates. Loop headers get unique exported names, so each kernel is a
//! distinct code signature for BBV clustering.
//!
//! Register budget inside bodies: `r1`–`r15` (per `lp-omp` conventions);
//! the induction variable arrives in `r16`.

use lp_isa::{AluOp, CodeBuilder, FpuOp, Reg};
use lp_omp::{LockId, OmpRuntime};

/// Schedule selector for worksharing kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)`.
    Static,
    /// `schedule(dynamic, chunk)`.
    Dynamic {
        /// Chunk size.
        chunk: u64,
    },
}

/// Parameters shared by every kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx {
    /// Loop trip count.
    pub iters: u64,
    /// Schedule.
    pub schedule: Schedule,
}

fn workshare(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
) {
    match ctx.schedule {
        Schedule::Static => {
            rt.emit_static_for(c, name, ctx.iters, body);
        }
        Schedule::Dynamic { chunk } => {
            rt.emit_dynamic_for(c, name, ctx.iters, chunk, body);
        }
    }
}

/// Sequentially initializes `words` words at `base` (pre-touch / warmup
/// phase; gives cold-start transients their own code signature).
pub fn init_array(c: &mut CodeBuilder<'_>, rt: &mut OmpRuntime, name: &str, base: u64, words: u64) {
    rt.emit_static_for(c, name, words, |c, _| {
        c.li(Reg::R1, base as i64);
        c.alui(AluOp::Shl, Reg::R2, Reg::R16, 3);
        c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
        c.alui(AluOp::Add, Reg::R3, Reg::R16, 1);
        c.store(Reg::R3, Reg::R1, 0);
    });
}

/// Streaming read-modify-write over consecutive cache lines.
pub fn stream(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    base: u64,
    stride_words: u64,
) {
    workshare(c, rt, name, ctx, |c, _| {
        c.li(Reg::R1, base as i64);
        c.li(Reg::R4, stride_words as i64 * 8);
        c.alu(AluOp::Mul, Reg::R2, Reg::R16, Reg::R4);
        c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
        c.load(Reg::R3, Reg::R1, 0);
        c.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        c.store(Reg::R3, Reg::R1, 0);
    });
}

/// 1-D three-point stencil with floating-point arithmetic.
pub fn stencil(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    src: u64,
    dst: u64,
) {
    workshare(c, rt, name, ctx, |c, _| {
        c.li(Reg::R1, src as i64);
        c.alui(AluOp::Shl, Reg::R2, Reg::R16, 3);
        c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
        c.load(Reg::R3, Reg::R1, 0);
        c.load(Reg::R4, Reg::R1, 8);
        c.load(Reg::R5, Reg::R1, 16);
        c.fpu(FpuOp::FAdd, Reg::R6, Reg::R3, Reg::R4);
        c.fpu(FpuOp::FAdd, Reg::R6, Reg::R6, Reg::R5);
        c.lf(Reg::R7, 1.0 / 3.0);
        c.fpu(FpuOp::FMul, Reg::R6, Reg::R6, Reg::R7);
        c.li(Reg::R8, dst as i64);
        c.alu(AluOp::Add, Reg::R8, Reg::R8, Reg::R2);
        c.store(Reg::R6, Reg::R8, 0);
    });
}

/// Pseudo-random gather over a table (LCG computed in registers — the
/// cache-hostile access pattern of sparse/irregular codes).
pub fn random_access(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    base: u64,
    table_words: u64,
) {
    assert!(table_words.is_power_of_two());
    workshare(c, rt, name, ctx, |c, _| {
        // LCG over the induction variable: a*x + c, masked to the table.
        c.li(Reg::R1, 6364136223846793005u64 as i64);
        c.alu(AluOp::Mul, Reg::R2, Reg::R16, Reg::R1);
        c.alui(AluOp::Add, Reg::R2, Reg::R2, 1442695040888963407u64 as i64);
        c.alui(AluOp::Shr, Reg::R2, Reg::R2, 11);
        c.alui(AluOp::And, Reg::R2, Reg::R2, (table_words - 1) as i64);
        c.li(Reg::R3, base as i64);
        c.alui(AluOp::Shl, Reg::R2, Reg::R2, 3);
        c.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R2);
        c.load(Reg::R4, Reg::R3, 0);
        c.alu(AluOp::Xor, Reg::R5, Reg::R5, Reg::R4);
    });
}

/// Dependent integer compute chain (latency-bound; mul/add/xor mix).
pub fn int_compute(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    depth: u32,
) {
    workshare(c, rt, name, ctx, |c, _| {
        c.alui(AluOp::Add, Reg::R1, Reg::R16, 1);
        for i in 0..depth {
            c.alui(AluOp::Mul, Reg::R1, Reg::R1, 17 + i64::from(i % 5));
            c.alui(AluOp::Xor, Reg::R1, Reg::R1, 0x5bd1);
        }
    });
}

/// Floating-point compute chain (FMA-like chains with an occasional
/// divide; the profile of dense numerical kernels).
pub fn fp_compute(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    depth: u32,
    with_div: bool,
) {
    workshare(c, rt, name, ctx, |c, _| {
        c.lf(Reg::R1, 1.0001);
        c.lf(Reg::R2, 0.9997);
        c.lf(Reg::R3, 1.5);
        for _ in 0..depth {
            c.fpu(FpuOp::FMul, Reg::R3, Reg::R3, Reg::R1);
            c.fpu(FpuOp::FAdd, Reg::R3, Reg::R3, Reg::R2);
        }
        if with_div {
            c.fpu(FpuOp::FDiv, Reg::R3, Reg::R3, Reg::R1);
        }
    });
}

/// Worksharing loop feeding an integer `reduction(+)`.
pub fn reduce_sum(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    result_addr: u64,
) {
    workshare(c, rt, name, ctx, |c, rt| {
        c.alui(AluOp::Mul, Reg::R1, Reg::R16, 3);
        c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        rt.emit_reduce_add_u64(c, Reg::R1, result_addr);
    });
}

/// Lock-contended shared counter updates (critical sections).
pub fn locked_update(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    lock: LockId,
    counter_addr: u64,
) {
    workshare(c, rt, name, ctx, |c, rt| {
        rt.emit_critical(c, lock, |c, _| {
            c.li(Reg::R1, counter_addr as i64);
            c.load(Reg::R2, Reg::R1, 0);
            c.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
            c.store(Reg::R2, Reg::R1, 0);
        });
    });
}

/// Atomic histogram updates (integer-sort/counting flavour).
pub fn atomic_histogram(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    base: u64,
    buckets: u64,
) {
    assert!(buckets.is_power_of_two());
    workshare(c, rt, name, ctx, |c, _| {
        c.li(Reg::R1, 2862933555777941757u64 as i64);
        c.alu(AluOp::Mul, Reg::R2, Reg::R16, Reg::R1);
        c.alui(AluOp::Shr, Reg::R2, Reg::R2, 17);
        c.alui(AluOp::And, Reg::R2, Reg::R2, (buckets - 1) as i64);
        c.li(Reg::R3, base as i64);
        c.alui(AluOp::Shl, Reg::R2, Reg::R2, 3);
        c.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R2);
        c.li(Reg::R4, 1);
        c.atomic_add(Reg::R5, Reg::R3, 0, Reg::R4);
    });
}

/// Skewed per-iteration work: iteration `i` runs an inner loop of
/// `base + (i % spread)` steps. With a dynamic schedule this produces the
/// thread-imbalance profile of `657.xz_s.2` (Fig. 3).
pub fn skewed_work(
    c: &mut CodeBuilder<'_>,
    rt: &mut OmpRuntime,
    name: &str,
    ctx: KernelCtx,
    base: u64,
    spread: u64,
) {
    assert!(spread.is_power_of_two());
    workshare(c, rt, name, ctx, |c, _| {
        c.alui(AluOp::And, Reg::R1, Reg::R16, (spread - 1) as i64);
        c.alui(AluOp::Add, Reg::R1, Reg::R1, base as i64);
        // Inner loop in r1 (counts down); header intentionally unnamed so
        // the outer worksharing header remains the region marker.
        c.counted_loop_reg("", Reg::R1, |c| {
            c.alui(AluOp::Mul, Reg::R2, Reg::R2, 13);
            c.alui(AluOp::Add, Reg::R2, Reg::R2, 7);
        });
    });
}
