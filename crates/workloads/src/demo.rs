//! The artifact's `matrix-omp` demo application.

use crate::kernels::Schedule;
use crate::recipe::{Phase, Recipe, Suite, SyncPrimitives, WorkloadSpec};
use lp_omp::APP_BASE;

/// The `demo-matrix-N` application of the LoopPoint artifact: a small
/// OpenMP matrix kernel usable to test the end-to-end methodology quickly
/// (`./run-looppoint.py -p demo-matrix-1`).
///
/// `variant` selects among the artifact's demo-matrix-1/2/3 (differing in
/// rounds and loop sizes).
pub fn matrix_demo(variant: usize) -> WorkloadSpec {
    let (name, rounds, n): (&'static str, u64, u64) = match variant {
        1 => ("demo-matrix-1", 2, 1024),
        2 => ("demo-matrix-2", 3, 1024),
        _ => ("demo-matrix-3", 2, 2048),
    };
    let a = APP_BASE + 0x10_000;
    let b = APP_BASE + 0x200_000;
    WorkloadSpec {
        name,
        suite: Suite::Demo,
        language: "C",
        kloc: 1,
        area: "Matrix arithmetic demo",
        sync: SyncPrimitives {
            static_for: true,
            reduction: true,
            atomic: true,
            ..Default::default()
        },
        fixed_threads: None,
        recipe: Recipe {
            init_arrays: vec![(a, n), (b, n)],
            base_rounds: rounds,
            phases: vec![
                Phase::Stencil {
                    src: a,
                    dst: b,
                    iters: n,
                    sched: Schedule::Static,
                },
                Phase::FpCompute {
                    iters: n / 2,
                    depth: 6,
                    div: false,
                    sched: Schedule::Static,
                },
                Phase::Reduce {
                    iters: n / 2,
                    addr: APP_BASE + 0x100,
                },
            ],
            scale_iters: false,
            use_master: false,
            use_single: false,
            use_barrier: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_variants() {
        assert_eq!(matrix_demo(1).name, "demo-matrix-1");
        assert_eq!(matrix_demo(2).name, "demo-matrix-2");
        assert_eq!(matrix_demo(3).name, "demo-matrix-3");
        assert_eq!(matrix_demo(99).name, "demo-matrix-3");
        assert_eq!(matrix_demo(1).suite, Suite::Demo);
    }
}
