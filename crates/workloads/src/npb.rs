//! NAS-Parallel-Benchmarks-like kernel recipes (OpenMP version 3.3, class
//! C scale, §IV-B — `dc` is omitted exactly as in the paper).

use crate::kernels::Schedule;
use crate::recipe::{Phase, Recipe, Suite, SyncPrimitives, WorkloadSpec};
use lp_omp::APP_BASE;

const A0: u64 = APP_BASE + 0x10_000;
const A1: u64 = APP_BASE + 0x200_000;
const A2: u64 = APP_BASE + 0x400_000;
const RESULT: u64 = APP_BASE + 0x100;
const STATIC: Schedule = Schedule::Static;

fn npb(
    name: &'static str,
    area: &'static str,
    sync: SyncPrimitives,
    recipe: Recipe,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        suite: Suite::Npb,
        language: "Fortran",
        kloc: 10,
        area,
        sync,
        fixed_threads: None,
        recipe,
    }
}

/// The nine NPB-like kernels (all but `dc`).
pub fn npb_workloads() -> Vec<WorkloadSpec> {
    let bar_sta = SyncPrimitives {
        static_for: true,
        barrier: true,
        ..Default::default()
    };
    vec![
        npb(
            "npb-bt",
            "Block tridiagonal solver",
            bar_sta,
            Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192)],
                base_rounds: 3,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 1536,
                        sched: STATIC,
                    },
                    Phase::Stencil {
                        src: A1,
                        dst: A0,
                        iters: 1536,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1024,
                        depth: 6,
                        div: false,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: true,
            },
        ),
        npb(
            "npb-cg",
            "Conjugate gradient",
            SyncPrimitives {
                static_for: true,
                reduction: true,
                atomic: true,
                ..Default::default()
            },
            Recipe {
                init_arrays: vec![(A2, 16384)],
                base_rounds: 3,
                phases: vec![
                    Phase::Random {
                        base: A2,
                        table_words: 16384,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::Reduce {
                        iters: 1024,
                        addr: RESULT,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        ),
        npb(
            "npb-ep",
            "Embarrassingly parallel",
            SyncPrimitives {
                static_for: true,
                reduction: true,
                atomic: true,
                ..Default::default()
            },
            Recipe {
                init_arrays: vec![],
                base_rounds: 3,
                phases: vec![
                    Phase::FpCompute {
                        iters: 3072,
                        depth: 10,
                        div: true,
                        sched: STATIC,
                    },
                    Phase::Reduce {
                        iters: 512,
                        addr: RESULT,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        ),
        npb(
            "npb-ft",
            "3-D FFT",
            SyncPrimitives {
                static_for: true,
                barrier: true,
                master: true,
                ..Default::default()
            },
            Recipe {
                init_arrays: vec![(A0, 32768)],
                base_rounds: 2,
                phases: vec![
                    // Strided passes — the transpose-like access of FFT.
                    Phase::Stream {
                        base: A0,
                        stride: 1,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::Stream {
                        base: A0,
                        stride: 16,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1024,
                        depth: 8,
                        div: false,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: true,
                use_single: false,
                use_barrier: true,
            },
        ),
        npb(
            "npb-is",
            "Integer sort",
            SyncPrimitives {
                static_for: true,
                atomic: true,
                ..Default::default()
            },
            Recipe {
                init_arrays: vec![(A0, 8192)],
                base_rounds: 3,
                phases: vec![
                    Phase::Histogram {
                        iters: 2048,
                        base: A0,
                        buckets: 4096,
                    },
                    Phase::Stream {
                        base: A0,
                        stride: 1,
                        iters: 2048,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        ),
        npb(
            "npb-lu",
            "LU solver",
            SyncPrimitives {
                static_for: true,
                barrier: true,
                ..Default::default()
            },
            Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192)],
                base_rounds: 3,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 1280,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1280,
                        depth: 7,
                        div: true,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: true,
            },
        ),
        npb(
            "npb-mg",
            "Multigrid",
            bar_sta,
            Recipe {
                init_arrays: vec![(A0, 16384), (A1, 4096)],
                base_rounds: 3,
                phases: vec![
                    // Fine and coarse grid sweeps.
                    Phase::Stencil {
                        src: A0,
                        dst: A0 + 8,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::Stencil {
                        src: A1,
                        dst: A1 + 8,
                        iters: 512,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: true,
            },
        ),
        npb(
            "npb-sp",
            "Scalar pentadiagonal solver",
            bar_sta,
            Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192)],
                base_rounds: 3,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 1536,
                        sched: STATIC,
                    },
                    Phase::Stream {
                        base: A1,
                        stride: 8,
                        iters: 1024,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 768,
                        depth: 5,
                        div: false,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: true,
            },
        ),
        npb(
            "npb-ua",
            "Unstructured adaptive mesh",
            SyncPrimitives {
                static_for: true,
                dynamic_for: true,
                atomic: true,
                lock: true,
                ..Default::default()
            },
            Recipe {
                init_arrays: vec![(A2, 8192)],
                base_rounds: 3,
                phases: vec![
                    Phase::Random {
                        base: A2,
                        table_words: 8192,
                        iters: 1280,
                        sched: Schedule::Dynamic { chunk: 8 },
                    },
                    Phase::Skewed {
                        iters: 512,
                        base: 4,
                        spread: 16,
                        sched: Schedule::Dynamic { chunk: 4 },
                    },
                    Phase::Locked {
                        iters: 256,
                        lock: 3,
                        addr: RESULT + 24,
                    },
                    Phase::Histogram {
                        iters: 768,
                        base: A2,
                        buckets: 1024,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_kernels_no_dc() {
        let npb = npb_workloads();
        assert_eq!(npb.len(), 9);
        assert!(npb.iter().all(|w| w.suite == Suite::Npb));
        assert!(
            !npb.iter().any(|w| w.name.contains("dc")),
            "dc is excluded, as in the paper"
        );
        let mut names: Vec<_> = npb.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn npb_kernels_follow_requested_threads() {
        for w in npb_workloads() {
            assert_eq!(w.effective_threads(8), 8);
            assert_eq!(w.effective_threads(16), 16, "{}", w.name);
        }
    }
}
