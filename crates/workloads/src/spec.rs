//! SPEC CPU2017-speed-like application recipes (Tables II and III).
//!
//! Each stand-in reproduces the original's *methodology-relevant* traits:
//! source-language/size metadata (Table II), the synchronization primitives
//! it uses (Table III), its thread-count peculiarities (both `657.xz_s`
//! variants), and a phase schedule whose kernel mix evokes the application
//! domain. The extracted Table III in the paper text is partially garbled;
//! where ambiguous, primitive assignments follow the row as printed plus
//! the prose (xz has no barriers at all).

use crate::kernels::Schedule;
use crate::recipe::{Phase, Recipe, Suite, SyncPrimitives, WorkloadSpec};
use lp_omp::APP_BASE;

const A0: u64 = APP_BASE + 0x10_000;
const A1: u64 = APP_BASE + 0x200_000;
const A2: u64 = APP_BASE + 0x400_000;
/// Wide-spaced array for iteration-scaled recipes whose footprint grows
/// with the input class (imagick's ref-scale stencils span megabytes).
const AWIDE: u64 = APP_BASE + 0x800_000;
const RESULT: u64 = APP_BASE + 0x100;
const STATIC: Schedule = Schedule::Static;

fn dyn4(chunk: u64) -> Schedule {
    Schedule::Dynamic { chunk }
}

/// All 14 SPEC-like workload specs, in the paper's figure order.
pub fn spec_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "603.bwaves_s.1",
            suite: Suite::Spec,
            language: "Fortran",
            kloc: 1,
            area: "Explosion modeling",
            sync: SyncPrimitives {
                static_for: true,
                reduction: true,
                atomic: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 4096), (A1, 4096)],
                base_rounds: 3,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1536,
                        depth: 6,
                        div: false,
                        sched: STATIC,
                    },
                    Phase::Reduce {
                        iters: 1024,
                        addr: RESULT,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "603.bwaves_s.2",
            suite: Suite::Spec,
            language: "Fortran",
            kloc: 1,
            area: "Explosion modeling",
            sync: SyncPrimitives {
                static_for: true,
                reduction: true,
                atomic: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192)],
                base_rounds: 2,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 3072,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 2048,
                        depth: 8,
                        div: true,
                        sched: STATIC,
                    },
                    Phase::Reduce {
                        iters: 1536,
                        addr: RESULT,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "607.cactuBSSN_s.1",
            suite: Suite::Spec,
            language: "Fortran, C++",
            kloc: 257,
            area: "Physics: relativity",
            sync: SyncPrimitives {
                static_for: true,
                dynamic_for: true,
                barrier: true,
                reduction: true,
                atomic: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192)],
                base_rounds: 2,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1024,
                        depth: 10,
                        div: true,
                        sched: dyn4(16),
                    },
                    Phase::Reduce {
                        iters: 768,
                        addr: RESULT,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: true,
            },
        },
        WorkloadSpec {
            name: "619.lbm_s.1",
            suite: Suite::Spec,
            language: "C",
            kloc: 1,
            area: "Fluid dynamics",
            sync: SyncPrimitives {
                static_for: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 16384), (A1, 16384)],
                base_rounds: 3,
                phases: vec![
                    Phase::Stream {
                        base: A0,
                        stride: 8,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 2048,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "621.wrf_s.1",
            suite: Suite::Spec,
            language: "Fortran, C",
            kloc: 991,
            area: "Weather forecasting",
            sync: SyncPrimitives {
                dynamic_for: true,
                master: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192), (A2, 4096)],
                base_rounds: 2,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 1536,
                        sched: dyn4(8),
                    },
                    Phase::Random {
                        base: A2,
                        table_words: 4096,
                        iters: 1024,
                        sched: dyn4(8),
                    },
                    Phase::FpCompute {
                        iters: 1024,
                        depth: 7,
                        div: false,
                        sched: dyn4(16),
                    },
                    Phase::IntCompute {
                        iters: 1024,
                        depth: 4,
                        sched: dyn4(16),
                    },
                ],
                scale_iters: false,
                use_master: true,
                use_single: false,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "627.cam4_s.1",
            suite: Suite::Spec,
            language: "Fortran, C",
            kloc: 407,
            area: "Atmosphere modeling",
            sync: SyncPrimitives {
                static_for: true,
                dynamic_for: true,
                barrier: true,
                master: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192)],
                base_rounds: 2,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 1536,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1280,
                        depth: 6,
                        div: false,
                        sched: dyn4(8),
                    },
                    Phase::Stream {
                        base: A1,
                        stride: 8,
                        iters: 1280,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: true,
                use_single: false,
                use_barrier: true,
            },
        },
        WorkloadSpec {
            name: "628.pop2_s.1",
            suite: Suite::Spec,
            language: "Fortran, C",
            kloc: 338,
            area: "Wide-scale ocean modeling",
            sync: SyncPrimitives {
                static_for: true,
                barrier: true,
                master: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 16384), (A1, 16384)],
                base_rounds: 2,
                phases: vec![
                    Phase::Stream {
                        base: A0,
                        stride: 8,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 1536,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1024,
                        depth: 5,
                        div: false,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: true,
                use_single: false,
                use_barrier: true,
            },
        },
        WorkloadSpec {
            name: "638.imagick_s.1",
            suite: Suite::Spec,
            language: "C",
            kloc: 259,
            area: "Image manipulation",
            sync: SyncPrimitives {
                static_for: true,
                barrier: true,
                single: true,
                reduction: true,
                atomic: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                // Convolution passes whose *size* grows with the input
                // while the serial structure stays fixed: at ref scale the
                // inter-barrier regions span almost the whole application —
                // the Fig. 9 BarrierPoint pain case (93.06B of 93.35B
                // instructions in the paper).
                init_arrays: vec![(A0, 16384), (AWIDE, 16384)],
                base_rounds: 1,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: AWIDE,
                        iters: 4096,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 4096,
                        depth: 9,
                        div: false,
                        sched: STATIC,
                    },
                    Phase::Stencil {
                        src: AWIDE,
                        dst: A0,
                        iters: 4096,
                        sched: STATIC,
                    },
                    Phase::Reduce {
                        iters: 2048,
                        addr: RESULT,
                    },
                ],
                scale_iters: true,
                use_master: false,
                use_single: true,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "644.nab_s.1",
            suite: Suite::Spec,
            language: "C",
            kloc: 24,
            area: "Molecular dynamics",
            sync: SyncPrimitives {
                dynamic_for: true,
                barrier: true,
                atomic: true,
                lock: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 4096), (A2, 4096)],
                base_rounds: 2,
                phases: vec![
                    Phase::Random {
                        base: A2,
                        table_words: 4096,
                        iters: 1280,
                        sched: dyn4(8),
                    },
                    Phase::FpCompute {
                        iters: 1280,
                        depth: 8,
                        div: true,
                        sched: dyn4(8),
                    },
                    Phase::Histogram {
                        iters: 1024,
                        base: A0,
                        buckets: 1024,
                    },
                    Phase::Locked {
                        iters: 256,
                        lock: 2,
                        addr: RESULT + 8,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: true,
            },
        },
        WorkloadSpec {
            name: "644.nab_s.2",
            suite: Suite::Spec,
            language: "C",
            kloc: 24,
            area: "Molecular dynamics",
            sync: SyncPrimitives {
                dynamic_for: true,
                barrier: true,
                atomic: true,
                lock: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 8192), (A2, 8192)],
                base_rounds: 2,
                phases: vec![
                    Phase::Random {
                        base: A2,
                        table_words: 8192,
                        iters: 1536,
                        sched: dyn4(16),
                    },
                    Phase::FpCompute {
                        iters: 1024,
                        depth: 10,
                        div: true,
                        sched: dyn4(16),
                    },
                    Phase::Histogram {
                        iters: 768,
                        base: A0,
                        buckets: 2048,
                    },
                    Phase::Locked {
                        iters: 192,
                        lock: 2,
                        addr: RESULT + 8,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: true,
            },
        },
        WorkloadSpec {
            name: "649.fotonik3d_s.1",
            suite: Suite::Spec,
            language: "Fortran",
            kloc: 14,
            area: "Comp. Electromagnetics",
            sync: SyncPrimitives {
                static_for: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 8192), (A1, 8192)],
                base_rounds: 3,
                phases: vec![
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::Stencil {
                        src: A1,
                        dst: A0,
                        iters: 2048,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "654.roms_s.1",
            suite: Suite::Spec,
            language: "Fortran",
            kloc: 210,
            area: "Regional ocean modeling",
            sync: SyncPrimitives {
                static_for: true,
                ..Default::default()
            },
            fixed_threads: None,
            recipe: Recipe {
                init_arrays: vec![(A0, 16384), (A1, 8192)],
                base_rounds: 2,
                phases: vec![
                    Phase::Stream {
                        base: A0,
                        stride: 8,
                        iters: 2048,
                        sched: STATIC,
                    },
                    Phase::FpCompute {
                        iters: 1536,
                        depth: 6,
                        div: false,
                        sched: STATIC,
                    },
                    Phase::Stencil {
                        src: A0,
                        dst: A1,
                        iters: 1024,
                        sched: STATIC,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "657.xz_s.1",
            suite: Suite::Spec,
            language: "C",
            kloc: 33,
            area: "General data compression",
            sync: SyncPrimitives {
                dynamic_for: true,
                atomic: true,
                lock: true,
                ..Default::default()
            },
            // Runs single-threaded in the paper.
            fixed_threads: Some(1),
            recipe: Recipe {
                init_arrays: vec![(A2, 8192)],
                base_rounds: 2,
                phases: vec![
                    Phase::IntCompute {
                        iters: 1536,
                        depth: 6,
                        sched: dyn4(16),
                    },
                    Phase::Random {
                        base: A2,
                        table_words: 8192,
                        iters: 1536,
                        sched: dyn4(16),
                    },
                    Phase::Skewed {
                        iters: 512,
                        base: 8,
                        spread: 16,
                        sched: dyn4(4),
                    },
                    Phase::Locked {
                        iters: 128,
                        lock: 1,
                        addr: RESULT + 16,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        },
        WorkloadSpec {
            name: "657.xz_s.2",
            suite: Suite::Spec,
            language: "C",
            kloc: 33,
            area: "General data compression",
            sync: SyncPrimitives {
                dynamic_for: true,
                atomic: true,
                lock: true,
                ..Default::default()
            },
            // Runs with 4 threads in the paper, with pronounced thread
            // imbalance (Fig. 3) and no barriers at all (Fig. 9's
            // BarrierPoint-unsuitable case; the only barriers are the
            // implicit region joins).
            fixed_threads: Some(4),
            recipe: Recipe {
                init_arrays: vec![(A2, 8192)],
                base_rounds: 2,
                phases: vec![
                    Phase::Skewed {
                        iters: 768,
                        base: 4,
                        spread: 64,
                        sched: dyn4(2),
                    },
                    Phase::IntCompute {
                        iters: 1024,
                        depth: 8,
                        sched: dyn4(8),
                    },
                    Phase::Random {
                        base: A2,
                        table_words: 8192,
                        iters: 1024,
                        sched: dyn4(8),
                    },
                    Phase::Locked {
                        iters: 256,
                        lock: 1,
                        addr: RESULT + 16,
                    },
                ],
                scale_iters: false,
                use_master: false,
                use_single: false,
                use_barrier: false,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_apps_in_figure_order() {
        let specs = spec_workloads();
        assert_eq!(specs.len(), 14);
        assert_eq!(specs[0].name, "603.bwaves_s.1");
        assert_eq!(specs[13].name, "657.xz_s.2");
        // Names are unique.
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn xz_thread_constraints() {
        let specs = spec_workloads();
        let xz1 = specs.iter().find(|s| s.name == "657.xz_s.1").unwrap();
        let xz2 = specs.iter().find(|s| s.name == "657.xz_s.2").unwrap();
        assert_eq!(xz1.effective_threads(8), 1);
        assert_eq!(xz2.effective_threads(8), 4);
        assert!(!xz1.sync.barrier && !xz2.sync.barrier, "xz has no barriers");
        let bw = &specs[0];
        assert_eq!(bw.effective_threads(8), 8);
        assert_eq!(bw.effective_threads(16), 16);
    }

    #[test]
    fn sync_flags_match_recipes() {
        use crate::kernels::Schedule;
        use crate::recipe::Phase;
        for s in spec_workloads() {
            let has_dyn = s.recipe.phases.iter().any(|p| {
                matches!(
                    p,
                    Phase::Stream {
                        sched: Schedule::Dynamic { .. },
                        ..
                    } | Phase::Stencil {
                        sched: Schedule::Dynamic { .. },
                        ..
                    } | Phase::Random {
                        sched: Schedule::Dynamic { .. },
                        ..
                    } | Phase::IntCompute {
                        sched: Schedule::Dynamic { .. },
                        ..
                    } | Phase::FpCompute {
                        sched: Schedule::Dynamic { .. },
                        ..
                    } | Phase::Skewed {
                        sched: Schedule::Dynamic { .. },
                        ..
                    }
                )
            });
            assert_eq!(has_dyn, s.sync.dynamic_for, "{}: dyn4 flag", s.name);
            let has_lock = s
                .recipe
                .phases
                .iter()
                .any(|p| matches!(p, Phase::Locked { .. }));
            assert_eq!(has_lock, s.sync.lock, "{}: lck flag", s.name);
            let has_red = s
                .recipe
                .phases
                .iter()
                .any(|p| matches!(p, Phase::Reduce { .. }));
            assert_eq!(has_red, s.sync.reduction, "{}: red flag", s.name);
            assert_eq!(s.recipe.use_master, s.sync.master, "{}: ma flag", s.name);
            assert_eq!(s.recipe.use_single, s.sync.single, "{}: si flag", s.name);
            // `single` carries an implicit barrier, so either decoration
            // satisfies the Table III `bar` column.
            assert_eq!(
                s.recipe.use_barrier || s.recipe.use_single,
                s.sync.barrier,
                "{}: bar flag",
                s.name
            );
        }
    }
}
