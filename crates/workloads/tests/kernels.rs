//! Functional correctness of the kernel building blocks.

use lp_isa::{Addr, Machine, ProgramBuilder, Reg};
use lp_omp::{LockId, OmpRuntime, WaitPolicy, APP_BASE};
use lp_workloads::kernels::{self, KernelCtx, Schedule};
use std::sync::Arc;

fn run(
    nthreads: usize,
    build: impl FnOnce(&mut lp_isa::CodeBuilder<'_>, &mut OmpRuntime),
) -> Machine {
    let mut pb = ProgramBuilder::new("kern");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    build(&mut c, &mut rt);
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    let mut m = Machine::new(Arc::new(pb.finish()), nthreads);
    m.run_to_completion(200_000_000).unwrap();
    assert!(m.is_finished());
    m
}

const CTX: KernelCtx = KernelCtx {
    iters: 64,
    schedule: Schedule::Static,
};

#[test]
fn init_array_writes_index_plus_one() {
    let base = APP_BASE + 0x1000;
    let m = run(4, |c, rt| {
        rt.emit_parallel(c, "init", |c, rt| {
            kernels::init_array(c, rt, "init.loop", base, 64);
        });
    });
    for i in 0..64 {
        assert_eq!(m.mem().load(Addr(base).word(i)), i + 1);
    }
}

#[test]
fn stream_increments_every_strided_word() {
    let base = APP_BASE + 0x1000;
    let m = run(4, |c, rt| {
        rt.emit_parallel(c, "s", |c, rt| {
            kernels::stream(c, rt, "s.loop", CTX, base, 8);
        });
    });
    for i in 0..64u64 {
        assert_eq!(m.mem().load(Addr(base + i * 64)), 1, "word {i}");
    }
}

#[test]
fn stencil_averages_three_neighbours() {
    let src = APP_BASE + 0x1000;
    let dst = APP_BASE + 0x4000;
    let m = run(2, |c, rt| {
        // Seed src with a constant so the average is exact.
        rt.emit_parallel(c, "seed", |c, rt| {
            rt.emit_static_for(c, "seed.loop", 70, |c, _| {
                c.lf(Reg::R1, 3.0);
                c.li(Reg::R2, src as i64);
                c.alui(lp_isa::AluOp::Shl, Reg::R3, Reg::R16, 3);
                c.alu(lp_isa::AluOp::Add, Reg::R2, Reg::R2, Reg::R3);
                c.store(Reg::R1, Reg::R2, 0);
            });
        });
        rt.emit_parallel(c, "st", |c, rt| {
            kernels::stencil(c, rt, "st.loop", CTX, src, dst);
        });
    });
    for i in 0..64u64 {
        let v = m.mem().load_f64(Addr(dst).word(i));
        assert!((v - 3.0).abs() < 1e-12, "cell {i} = {v}");
    }
}

#[test]
fn reduce_sum_totals_3i_plus_1() {
    let result = APP_BASE + 0x100;
    let m = run(4, |c, rt| {
        rt.emit_parallel(c, "r", |c, rt| {
            kernels::reduce_sum(c, rt, "r.loop", CTX, result);
        });
    });
    let expect: u64 = (0..64).map(|i| 3 * i + 1).sum();
    assert_eq!(m.mem().load(Addr(result)), expect);
}

#[test]
fn locked_update_is_exact_under_contention() {
    let counter = APP_BASE + 0x100;
    let m = run(8, |c, rt| {
        rt.emit_parallel(c, "l", |c, rt| {
            kernels::locked_update(
                c,
                rt,
                "l.loop",
                KernelCtx {
                    iters: 256,
                    schedule: Schedule::Static,
                },
                LockId(5),
                counter,
            );
        });
    });
    assert_eq!(m.mem().load(Addr(counter)), 256);
}

#[test]
fn histogram_buckets_total_the_iterations() {
    let base = APP_BASE + 0x8000;
    let buckets = 256u64;
    let m = run(4, |c, rt| {
        rt.emit_parallel(c, "h", |c, rt| {
            kernels::atomic_histogram(
                c,
                rt,
                "h.loop",
                KernelCtx {
                    iters: 500,
                    schedule: Schedule::Static,
                },
                base,
                buckets,
            );
        });
    });
    let total: u64 = (0..buckets).map(|i| m.mem().load(Addr(base).word(i))).sum();
    assert_eq!(total, 500, "every iteration lands in exactly one bucket");
}

#[test]
fn skewed_work_runs_all_iterations_under_dynamic_schedule() {
    // The inner loops terminate and the outer worksharing loop covers the
    // range for every schedule.
    for sched in [Schedule::Static, Schedule::Dynamic { chunk: 3 }] {
        let m = run(4, |c, rt| {
            if matches!(sched, Schedule::Dynamic { .. }) {
                rt.emit_dyn_reset(c);
            }
            rt.emit_parallel(c, "sk", |c, rt| {
                kernels::skewed_work(
                    c,
                    rt,
                    "sk.loop",
                    KernelCtx {
                        iters: 48,
                        schedule: sched,
                    },
                    4,
                    16,
                );
            });
        });
        assert!(m.is_finished());
    }
}
