//! Every workload must build and run to completion at test scale, with the
//! properties the figures rely on.

use lp_isa::Machine;
use lp_omp::WaitPolicy;
use lp_workloads::{build, matrix_demo, npb_workloads, spec_workloads, InputClass};

#[test]
fn all_spec_workloads_run_to_completion() {
    for spec in spec_workloads() {
        for policy in [WaitPolicy::Passive, WaitPolicy::Active] {
            let nthreads = spec.effective_threads(8);
            let p = build(&spec, InputClass::Test, 8, policy);
            let mut m = Machine::new(p, nthreads);
            m.run_to_completion(400_000_000)
                .unwrap_or_else(|e| panic!("{} ({policy}): {e}", spec.name));
            assert!(m.is_finished(), "{} ({policy}) finished", spec.name);
            assert!(
                m.global_retired() > 50_000,
                "{} ({policy}) does real work: {}",
                spec.name,
                m.global_retired()
            );
        }
    }
}

#[test]
fn all_npb_workloads_run_with_8_and_16_threads() {
    for spec in npb_workloads() {
        for nthreads in [8, 16] {
            let p = build(&spec, InputClass::Test, nthreads, WaitPolicy::Passive);
            let mut m = Machine::new(p, nthreads);
            m.run_to_completion(400_000_000)
                .unwrap_or_else(|e| panic!("{} ({nthreads}t): {e}", spec.name));
            assert!(m.is_finished(), "{} with {nthreads} threads", spec.name);
        }
    }
}

#[test]
fn input_classes_scale_instruction_counts() {
    let spec = &spec_workloads()[3]; // 619.lbm_s.1 — cheap
    let run = |input| {
        let p = build(spec, input, 8, WaitPolicy::Passive);
        let mut m = Machine::new(p, 8);
        m.run_to_completion(2_000_000_000).unwrap();
        m.global_retired()
    };
    let test = run(InputClass::Test);
    let train = run(InputClass::Train);
    // Init phases are constant-size, so the ratio is below the 6× round
    // multiplier but must still be substantial.
    assert!(
        train > 5 * test / 2,
        "train ({train}) must be much larger than test ({test})"
    );
    let reff = run(InputClass::Ref);
    assert!(reff > 8 * train, "ref ({reff}) ≫ train ({train})");
}

#[test]
fn xz2_is_heterogeneous_and_bwaves_is_balanced() {
    // Fig. 3: 657.xz_s.2 exhibits non-homogeneous per-thread work.
    let imbalance = |name: &str| -> f64 {
        let spec = lp_workloads::find(name).unwrap();
        let nthreads = spec.effective_threads(8);
        let p = build(&spec, InputClass::Test, 8, WaitPolicy::Passive);
        let mut m = Machine::new(p, nthreads);
        m.run_to_completion(400_000_000).unwrap();
        let counts: Vec<u64> = (0..nthreads).map(|t| m.retired(t)).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        max / min.max(1.0)
    };
    let xz = imbalance("657.xz_s.2");
    let bw = imbalance("603.bwaves_s.1");
    assert!(xz > bw, "xz imbalance {xz:.2} should exceed bwaves {bw:.2}");
}

#[test]
fn demo_runs_quickly() {
    for v in 1..=3 {
        let spec = matrix_demo(v);
        let p = build(&spec, InputClass::Test, 4, WaitPolicy::Passive);
        let mut m = Machine::new(p, 4);
        m.run_to_completion(100_000_000).unwrap();
        assert!(m.is_finished());
    }
}

#[test]
fn find_locates_workloads() {
    assert!(lp_workloads::find("657.xz_s.1").is_some());
    assert!(lp_workloads::find("npb-cg").is_some());
    assert!(lp_workloads::find("nope").is_none());
}

#[test]
fn programs_are_deterministic_builds() {
    let spec = &spec_workloads()[0];
    let a = build(spec, InputClass::Test, 8, WaitPolicy::Passive);
    let b = build(spec, InputClass::Test, 8, WaitPolicy::Passive);
    assert_eq!(a.code_size(), b.code_size());
    assert_eq!(a.entry_main(), b.entry_main());
}
