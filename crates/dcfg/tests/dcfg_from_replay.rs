//! End-to-end DCFG construction from constrained pinball replays.

use lp_dcfg::DcfgBuilder;
use lp_isa::{AluOp, ProgramBuilder, Reg};
use lp_omp::{OmpRuntime, WaitPolicy, APP_BASE};
use lp_pinball::{ExecObserver, Pinball, RecordConfig};
use std::sync::Arc;

fn build_dcfg(program: &Arc<lp_isa::Program>, nthreads: usize) -> lp_dcfg::Dcfg {
    let pinball = Pinball::record(program, nthreads, RecordConfig::default()).unwrap();
    let mut builder = DcfgBuilder::new(program.clone(), nthreads);
    {
        let obs: &mut dyn ExecObserver = &mut builder;
        pinball
            .replay(program.clone(), &mut [obs], u64::MAX)
            .unwrap();
    }
    builder.finish()
}

#[test]
fn single_threaded_loop_is_found() {
    let mut pb = ProgramBuilder::new("st-loop");
    let mut c = pb.main_code();
    c.li(Reg::R1, 0);
    let hdr = c.counted_loop("main.loop", Reg::R2, 37, |c| {
        c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    });
    c.halt();
    c.finish();
    let p = Arc::new(pb.finish());
    let dcfg = build_dcfg(&p, 1);

    assert!(dcfg.is_loop_header(hdr), "counted loop header identified");
    let l = dcfg
        .loops()
        .iter()
        .find(|l| l.header == hdr)
        .expect("loop present");
    assert_eq!(l.iterations, 37, "header executed once per iteration");
    assert_eq!(l.back_edge_trips, 36, "back edge taken n-1 times");
    assert_eq!(dcfg.main_image_loop_headers(), vec![hdr]);
}

#[test]
fn nested_loops_have_two_headers() {
    let mut pb = ProgramBuilder::new("nested");
    let mut c = pb.main_code();
    c.li(Reg::R1, 0);
    let outer = c.counted_loop("outer", Reg::R2, 5, |c| {
        c.counted_loop("inner", Reg::R3, 10, |c| {
            c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        });
    });
    c.halt();
    c.finish();
    let p = Arc::new(pb.finish());
    let inner = p.symbol("inner").unwrap();
    let dcfg = build_dcfg(&p, 1);

    assert!(dcfg.is_loop_header(outer));
    let inner_loop = dcfg
        .loops()
        .iter()
        .find(|l| l.header == inner)
        .expect("inner loop found");
    assert_eq!(inner_loop.iterations, 50, "10 iterations x 5 outer trips");
    let outer_loop = dcfg.loops().iter().find(|l| l.header == outer).unwrap();
    assert_eq!(outer_loop.iterations, 5);
    assert!(
        outer_loop.blocks.len() > inner_loop.blocks.len(),
        "outer body contains the inner loop"
    );
}

#[test]
fn library_spin_loops_are_excluded_from_main_headers() {
    let nthreads = 4;
    let mut pb = ProgramBuilder::new("spin");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Active);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    rt.emit_parallel(&mut c, "work", |c, rt| {
        rt.emit_static_for(c, "work.loop", 64, |c, _| {
            c.li(Reg::R1, APP_BASE as i64);
            c.li(Reg::R2, 1);
            c.atomic_add(Reg::R3, Reg::R1, 0, Reg::R2);
        });
        rt.emit_barrier(c);
    });
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    let p = Arc::new(pb.finish());
    let work_hdr = p.symbol("work.loop").unwrap();
    let dcfg = build_dcfg(&p, nthreads);

    // The barrier/doorbell spin loops are genuine loops in the library
    // image — found by the analysis, but never legal region boundaries.
    let lib_loops: Vec<_> = dcfg
        .loops()
        .iter()
        .filter(|l| p.is_library_pc(l.header))
        .collect();
    assert!(
        !lib_loops.is_empty(),
        "active-policy spin loops must appear in the DCFG"
    );
    let mains = dcfg.main_image_loop_headers();
    assert!(mains.contains(&work_hdr));
    assert!(mains.iter().all(|pc| !p.is_library_pc(*pc)));
}

#[test]
fn worksharing_iteration_counts_are_schedule_invariant() {
    // Global header executions equal the total trip count regardless of the
    // schedule (static vs dynamic) — the invariance (PC, count) relies on.
    for dynamic in [false, true] {
        let nthreads = 4;
        let total = 96u64;
        let mut pb = ProgramBuilder::new("sched");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        if dynamic {
            rt.emit_dyn_reset(&mut c);
        }
        rt.emit_parallel(&mut c, "work", |c, rt| {
            let body = |c: &mut lp_isa::CodeBuilder<'_>, rt: &mut OmpRuntime| {
                rt.emit_reduce_add_u64(c, Reg::R16, APP_BASE);
            };
            if dynamic {
                rt.emit_dynamic_for(c, "work.loop", total, 5, body);
            } else {
                rt.emit_static_for(c, "work.loop", total, body);
            }
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let hdr = p.symbol("work.loop").unwrap();
        let dcfg = build_dcfg(&p, nthreads);
        let l = dcfg
            .loops()
            .iter()
            .find(|l| l.header == hdr)
            .unwrap_or_else(|| panic!("worksharing loop found (dynamic={dynamic})"));
        assert_eq!(
            l.iterations, total,
            "global iteration count invariant (dynamic={dynamic})"
        );
    }
}

#[test]
fn edges_carry_per_thread_counts() {
    let nthreads = 4;
    let mut pb = ProgramBuilder::new("per-thread");
    let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
    let mut c = pb.main_code();
    rt.emit_main_init(&mut c);
    rt.emit_parallel(&mut c, "work", |c, rt| {
        rt.emit_static_for(c, "work.loop", 40, |c, _| {
            c.alui(AluOp::Add, Reg::R1, Reg::R16, 1);
        });
    });
    rt.emit_shutdown(&mut c);
    c.halt();
    c.finish();
    let p = Arc::new(pb.finish());
    let dcfg = build_dcfg(&p, nthreads);
    // Find the back edge of the worksharing loop and check per-thread trips.
    let hdr = p.symbol("work.loop").unwrap();
    let back = dcfg
        .edges()
        .iter()
        .find(|e| e.to == hdr && e.from > hdr)
        .expect("back edge recorded");
    assert_eq!(back.per_thread.len(), nthreads);
    assert_eq!(back.per_thread.iter().sum::<u64>(), back.total);
    // Static schedule of 40 over 4 threads: each thread loops 10 times,
    // taking the back edge 9 times.
    for (t, &c) in back.per_thread.iter().enumerate() {
        assert_eq!(c, 9, "thread {t}");
    }
}

#[test]
fn blocks_are_non_overlapping_and_cover_executed_pcs() {
    let mut pb = ProgramBuilder::new("cover");
    let mut c = pb.main_code();
    c.li(Reg::R1, 0);
    c.counted_loop("l", Reg::R2, 3, |c| {
        c.alui(AluOp::Add, Reg::R1, Reg::R1, 2);
    });
    c.halt();
    c.finish();
    let p = Arc::new(pb.finish());
    let dcfg = build_dcfg(&p, 1);

    // Non-overlap: each block's range is disjoint.
    let mut ranges: Vec<(u32, u32)> = dcfg
        .blocks()
        .iter()
        .map(|b| (b.leader.offset, b.leader.offset + b.len))
        .collect();
    ranges.sort();
    for w in ranges.windows(2) {
        assert!(w[0].1 <= w[1].0, "blocks overlap: {:?}", w);
    }
    // Every executed pc maps to a block.
    let pinball = Pinball::record(&p, 1, RecordConfig::default()).unwrap();
    let mut missing = 0;
    let mut check = lp_pinball::FnObserver(|r: &lp_isa::Retired| {
        if dcfg.block_of(r.pc).is_none() {
            missing += 1;
        }
    });
    {
        let obs: &mut dyn ExecObserver = &mut check;
        pinball.replay(p.clone(), &mut [obs], u64::MAX).unwrap();
    }
    assert_eq!(missing, 0, "all executed PCs covered by blocks");
}
