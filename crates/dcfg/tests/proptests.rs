//! Property-based tests: randomized structured programs must always yield
//! well-formed DCFGs whose loop census matches the generator's ground
//! truth.

use lp_dcfg::DcfgBuilder;
use lp_isa::{AluOp, CodeBuilder, ProgramBuilder, Reg};
use lp_pinball::{Pinball, RecordConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// A generator-side description of a (possibly nested) loop structure.
#[derive(Debug, Clone)]
enum Shape {
    /// `body_len` straight-line ALU instructions.
    Straight(u8),
    /// A counted loop with `trips` iterations around inner shapes.
    Loop { trips: u8, inner: Vec<Shape> },
}

fn arb_shape(depth: u32) -> impl Strategy<Value = Shape> {
    let leaf = (1u8..6).prop_map(Shape::Straight);
    // Trips start at 2: a 1-trip loop never takes its back edge, so a
    // *dynamic* CFG correctly does not classify it as a loop.
    leaf.prop_recursive(depth, 8, 3, |inner| {
        (2u8..6, prop::collection::vec(inner, 1..3))
            .prop_map(|(trips, inner)| Shape::Loop { trips, inner })
    })
}

/// Emits a shape; returns how many loops it contains and the total trip
/// count of header executions expected (given `outer_execs` executions of
/// this shape).
fn emit(
    c: &mut CodeBuilder<'_>,
    shape: &Shape,
    idx: &mut u32,
    outer_execs: u64,
    expected: &mut Vec<(lp_isa::Pc, u64)>,
) {
    match shape {
        Shape::Straight(n) => {
            for _ in 0..*n {
                c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
            }
        }
        Shape::Loop { trips, inner } => {
            let reg = Reg::from_index(2 + (*idx % 12) as u8);
            let name = format!("loop{idx}");
            *idx += 1;
            let my_execs = outer_execs * u64::from(*trips);
            let slot = expected.len();
            expected.push((lp_isa::Pc::INVALID, my_execs));
            let header = c.counted_loop(&name, reg, u64::from(*trips), |c| {
                // Keep at least one instruction so the header block exists.
                c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
                for s in inner {
                    emit(c, s, idx, my_execs, expected);
                }
            });
            expected[slot].0 = header;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated loop is discovered with exactly the iteration count
    /// the generator prescribed, and blocks never overlap.
    #[test]
    fn loop_census_matches_ground_truth(shapes in prop::collection::vec(arb_shape(2), 1..4)) {
        let mut pb = ProgramBuilder::new("prop-dcfg");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0);
        let mut idx = 0;
        let mut expected = Vec::new();
        for s in &shapes {
            emit(&mut c, s, &mut idx, 1, &mut expected);
        }
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());

        let pinball = Pinball::record(&p, 1, RecordConfig::default()).unwrap();
        let mut b = DcfgBuilder::new(p.clone(), 1);
        pinball.replay(p.clone(), &mut [&mut b], u64::MAX).unwrap();
        let dcfg = b.finish();

        for &(header, execs) in &expected {
            prop_assert!(dcfg.is_loop_header(header), "loop at {header} found");
            let info = dcfg
                .loops()
                .iter()
                .find(|l| l.header == header)
                .expect("loop info");
            prop_assert_eq!(info.iterations, execs, "trip count at {}", header);
        }
        // No spurious main-image loops beyond the generated ones.
        prop_assert_eq!(dcfg.main_image_loop_headers().len(), expected.len());

        // Blocks are disjoint.
        let mut ranges: Vec<(u64, u64)> = dcfg
            .blocks()
            .iter()
            .map(|b| {
                let base = b.leader.to_word();
                (base, base + u64::from(b.len))
            })
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "blocks overlap: {:?}", w);
        }
    }
}
