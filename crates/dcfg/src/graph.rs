//! Basic-block derivation and the finished DCFG.

use crate::builder::{DcfgBuilder, EdgeKind};
use crate::loops::{find_loops, LoopInfo, Routine};
use lp_isa::{ImageId, Inst, Pc, Program};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Index of a basic block within a [`Dcfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A single-entry/single-exit, non-overlapping basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// The block's id.
    pub id: BlockId,
    /// First instruction (the block leader).
    pub leader: Pc,
    /// Number of instruction slots in the block.
    pub len: u32,
    /// Times control entered the block during the profiled execution.
    pub executions: u64,
}

/// A dynamic control-flow edge with its trip counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source instruction (the control transfer).
    pub from: Pc,
    /// Destination instruction.
    pub to: Pc,
    /// Total trips across all threads.
    pub total: u64,
    /// Per-thread trip counts.
    pub per_thread: Vec<u64>,
}

/// The finished dynamic control-flow graph.
#[derive(Debug)]
pub struct Dcfg {
    program: Arc<Program>,
    blocks: Vec<BasicBlock>,
    /// Per image: sorted `(leader offset, block id)` for lookup.
    index: HashMap<ImageId, Vec<(u32, BlockId)>>,
    edges: Vec<Edge>,
    routines: Vec<Routine>,
    loops: Vec<LoopInfo>,
    loop_header_set: HashSet<Pc>,
}

impl Dcfg {
    pub(crate) fn build(program: Arc<Program>, entries: Vec<Pc>, builder: DcfgBuilder) -> Dcfg {
        // ---- 1. leader set --------------------------------------------------
        let mut leaders: HashSet<Pc> = entries.iter().copied().collect();
        for &(from, to) in builder.edges.keys() {
            leaders.insert(to);
            // The fall-through successor of any control transfer starts a
            // block (even if only reached on the not-taken path).
            leaders.insert(from.next());
        }
        // Keep only leaders that name real instructions.
        leaders.retain(|pc| program.inst(*pc).is_some());

        // ---- 2. blocks ------------------------------------------------------
        let mut per_image: HashMap<ImageId, Vec<u32>> = HashMap::new();
        for pc in &leaders {
            per_image.entry(pc.image).or_default().push(pc.offset);
        }
        let mut blocks = Vec::new();
        let mut index: HashMap<ImageId, Vec<(u32, BlockId)>> = HashMap::new();
        let mut image_ids: Vec<ImageId> = per_image.keys().copied().collect();
        image_ids.sort();
        for image in image_ids {
            let mut offs = per_image.remove(&image).unwrap();
            offs.sort_unstable();
            offs.dedup();
            let img = program.image(image).expect("leader in known image");
            let mut idx_entries = Vec::with_capacity(offs.len());
            for (i, &off) in offs.iter().enumerate() {
                let next_leader = offs.get(i + 1).copied().unwrap_or(img.len() as u32);
                // The block ends at the first control transfer or halt, or
                // just before the next leader.
                let mut end = next_leader;
                for o in off..next_leader {
                    match img.inst(o) {
                        Some(inst) if inst.is_control() || matches!(inst, Inst::Halt) => {
                            end = o + 1;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            end = o;
                            break;
                        }
                    }
                }
                let id = BlockId(blocks.len() as u32);
                blocks.push(BasicBlock {
                    id,
                    leader: Pc::new(image, off),
                    len: end.saturating_sub(off).max(1),
                    executions: 0,
                });
                idx_entries.push((off, id));
            }
            index.insert(image, idx_entries);
        }

        // ---- 3. edge list and execution counts ------------------------------
        let mut edges: Vec<Edge> = builder
            .edges
            .iter()
            .map(|(&(from, to), data)| Edge {
                from,
                to,
                total: data.counts.iter().sum(),
                per_thread: data.counts.clone(),
            })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));

        fn lookup_in(
            index: &HashMap<ImageId, Vec<(u32, BlockId)>>,
            blocks: &[BasicBlock],
            pc: Pc,
        ) -> Option<BlockId> {
            let v = index.get(&pc.image)?;
            let i = v.partition_point(|&(off, _)| off <= pc.offset);
            if i == 0 {
                return None;
            }
            let (off, id) = v[i - 1];
            let b = &blocks[id.0 as usize];
            (pc.offset < off + b.len).then_some(id)
        }
        let lookup = |pc: Pc| lookup_in(&index, &blocks, pc);

        // Dynamic entries via recorded edges.
        let mut exec: HashMap<BlockId, u64> = HashMap::new();
        for e in &edges {
            if let Some(b) = lookup(e.to) {
                *exec.entry(b).or_default() += e.total;
            }
        }
        for entry in &entries {
            if let Some(b) = lookup(*entry) {
                // Main entry runs once; worker entry once per extra thread.
                let times = if Some(*entry) == program.entry_worker() {
                    (builder.nthreads.saturating_sub(1)) as u64
                } else {
                    1
                };
                *exec.entry(b).or_default() += times;
            }
        }
        // Implicit straight-line fall-through: a block that ends without a
        // control transfer flows into the next block.
        let mut implicit: Vec<(Pc, Pc)> = Vec::new();
        for image_blocks in index.values() {
            for window in image_blocks.windows(2) {
                let (_, a_id) = window[0];
                let (next_off, b_id) = window[1];
                let a = &blocks[a_id.0 as usize];
                let last = Pc::new(a.leader.image, a.leader.offset + a.len - 1);
                let ends_with_ctrl = program
                    .inst(last)
                    .map(|i| i.is_control() || matches!(i, Inst::Halt))
                    .unwrap_or(true);
                if !ends_with_ctrl && a.leader.offset + a.len == next_off {
                    implicit.push((a.leader, blocks[b_id.0 as usize].leader));
                }
            }
        }
        // Propagate executions along implicit chains (per image, ascending
        // offsets, so predecessors are final before successors).
        for (from, to) in &implicit {
            let from_id = lookup(*from).expect("implicit edge from known block");
            let count = exec.get(&from_id).copied().unwrap_or(0);
            if count > 0 {
                let to_id = lookup(*to).expect("implicit edge to known block");
                *exec.entry(to_id).or_default() += count;
            }
        }
        for b in &mut blocks {
            b.executions = exec.get(&b.id).copied().unwrap_or(0);
        }

        // ---- 4. routines, dominators, loops ---------------------------------
        let mut intra: Vec<(BlockId, BlockId, u64)> = Vec::new();
        let mut routine_entries: HashSet<BlockId> = HashSet::new();
        for entry in &entries {
            if let Some(b) = lookup_in(&index, &blocks, *entry) {
                routine_entries.insert(b);
            }
        }
        for (&(from, to), data) in &builder.edges {
            let (Some(fb), Some(tb)) = (
                lookup_in(&index, &blocks, from),
                lookup_in(&index, &blocks, to),
            ) else {
                continue;
            };
            match data.kind.unwrap_or(EdgeKind::Intra) {
                EdgeKind::Intra => intra.push((fb, tb, data.counts.iter().sum())),
                EdgeKind::Call => {
                    routine_entries.insert(tb);
                    // Within the caller, a call is a straight-line step to
                    // its return point: connect the call block to the
                    // fall-through block so caller loops spanning calls
                    // stay intact.
                    if let Some(ret_b) = lookup_in(&index, &blocks, from.next()) {
                        intra.push((fb, ret_b, data.counts.iter().sum()));
                    }
                }
                EdgeKind::Ret => {}
            }
        }
        for (from, to) in &implicit {
            let (Some(fb), Some(tb)) = (
                lookup_in(&index, &blocks, *from),
                lookup_in(&index, &blocks, *to),
            ) else {
                continue;
            };
            let count = exec.get(&fb).copied().unwrap_or(0);
            intra.push((fb, tb, count));
        }

        let (routines, loops) = find_loops(&blocks, &intra, &routine_entries);
        let loop_header_set = loops.iter().map(|l| l.header).collect();

        Dcfg {
            program,
            blocks,
            index,
            edges,
            routines,
            loops,
            loop_header_set,
        }
    }

    /// Reassembles a graph from its serialized components, rebuilding the
    /// derived lookup structures (the per-image leader index and the
    /// loop-header set).
    ///
    /// This exists for the artifact store: a cached analysis persists the
    /// blocks/edges/routines/loops (all plain data with public fields) and
    /// reconstructs the `Dcfg` *without replaying the pinball*. The caller
    /// is responsible for pairing the parts with the same program they were
    /// profiled from (the store's content-addressed key guarantees this).
    pub fn from_raw_parts(
        program: Arc<Program>,
        blocks: Vec<BasicBlock>,
        edges: Vec<Edge>,
        routines: Vec<Routine>,
        loops: Vec<LoopInfo>,
    ) -> Dcfg {
        let mut index: HashMap<ImageId, Vec<(u32, BlockId)>> = HashMap::new();
        for b in &blocks {
            index
                .entry(b.leader.image)
                .or_default()
                .push((b.leader.offset, b.id));
        }
        for v in index.values_mut() {
            v.sort_unstable();
        }
        let loop_header_set = loops.iter().map(|l| l.header).collect();
        Dcfg {
            program,
            blocks,
            index,
            edges,
            routines,
            loops,
            loop_header_set,
        }
    }

    /// The program this graph was profiled from.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// All basic blocks.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All recorded dynamic edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Routines discovered from call edges.
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// Natural loops discovered from back edges.
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// The basic block containing `pc`, if one was derived there.
    pub fn block_of(&self, pc: Pc) -> Option<BlockId> {
        let v = self.index.get(&pc.image)?;
        let i = v.partition_point(|&(off, _)| off <= pc.offset);
        if i == 0 {
            return None;
        }
        let (off, id) = v[i - 1];
        let b = &self.blocks[id.0 as usize];
        (pc.offset < off + b.len).then_some(id)
    }

    /// A block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Whether `pc` is the header (entry) of an identified natural loop.
    pub fn is_loop_header(&self, pc: Pc) -> bool {
        self.loop_header_set.contains(&pc)
    }

    /// All loop-header PCs.
    pub fn loop_headers(&self) -> impl Iterator<Item = Pc> + '_ {
        self.loops.iter().map(|l| l.header)
    }

    /// Loop-header PCs in the main image only — the paper's legal slice
    /// boundaries (library loops are assumed to be synchronization).
    pub fn main_image_loop_headers(&self) -> Vec<Pc> {
        let mut v: Vec<Pc> = self
            .loops
            .iter()
            .map(|l| l.header)
            .filter(|pc| !self.program.is_library_pc(*pc))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}
