//! Routine partitioning, dominator analysis, and natural-loop detection.

use crate::graph::{BasicBlock, BlockId};
use lp_isa::Pc;
use std::collections::{HashMap, HashSet};

/// A routine: blocks reachable from one entry over intra-routine edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routine {
    /// Entry block's leader PC.
    pub entry: Pc,
    /// Blocks belonging to the routine.
    pub blocks: Vec<BlockId>,
}

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Loop header (entry) PC — the candidate region-boundary marker.
    pub header: Pc,
    /// The header's block.
    pub header_block: BlockId,
    /// Blocks in the loop body (header included).
    pub blocks: Vec<BlockId>,
    /// Dynamic trips over the loop's back edges.
    pub back_edge_trips: u64,
    /// Times the header block executed (≈ iteration count).
    pub iterations: u64,
}

/// Partitions blocks into routines and finds natural loops in each.
///
/// `intra` edges are branch/jump/fall-through transfers (call and return
/// edges split routines). Dominators use the iterative algorithm of Cooper,
/// Harvey & Kennedy on each routine's subgraph.
pub(crate) fn find_loops(
    blocks: &[BasicBlock],
    intra: &[(BlockId, BlockId, u64)],
    routine_entries: &HashSet<BlockId>,
) -> (Vec<Routine>, Vec<LoopInfo>) {
    // Adjacency over all blocks.
    let n = blocks.len();
    let mut succ: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for &(f, t, c) in intra {
        succ[f.0 as usize].push((t.0 as usize, c));
    }

    let mut entries: Vec<usize> = routine_entries.iter().map(|b| b.0 as usize).collect();
    entries.sort_unstable();

    let mut routines = Vec::new();
    let mut loops: Vec<LoopInfo> = Vec::new();

    for &entry in &entries {
        // Routine subgraph: DFS from the entry, not crossing into other
        // routine entries (tail-merged code stays with its first routine).
        let mut member: HashMap<usize, usize> = HashMap::new(); // global -> local
        let mut order: Vec<usize> = Vec::new(); // local -> global
        let mut stack = vec![entry];
        member.insert(entry, 0);
        order.push(entry);
        while let Some(b) = stack.pop() {
            for &(s, _) in &succ[b] {
                if s != entry && routine_entries.contains(&BlockId(s as u32)) {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = member.entry(s) {
                    e.insert(order.len());
                    order.push(s);
                    stack.push(s);
                }
            }
        }
        let m = order.len();
        routines.push(Routine {
            entry: blocks[entry].leader,
            blocks: order.iter().map(|&g| BlockId(g as u32)).collect(),
        });
        if m <= 1 {
            continue;
        }

        // Local adjacency and predecessors, RPO.
        let mut lsucc: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut lpred: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (&g, &l) in &member {
            for &(s, _) in &succ[g] {
                if let Some(&ls) = member.get(&s) {
                    lsucc[l].push(ls);
                    lpred[ls].push(l);
                }
            }
        }
        let rpo = reverse_postorder(0, &lsucc);
        let idom = dominators(0, &rpo, &lpred);

        // Back edges: u -> h with h dominating u.
        let mut headers: HashMap<usize, (Vec<usize>, u64)> = HashMap::new();
        for (&g, &l) in &member {
            for &(sg, count) in &succ[g] {
                let Some(&h) = member.get(&sg) else { continue };
                if dominates(h, l, &idom) {
                    let e = headers.entry(h).or_insert_with(|| (Vec::new(), 0));
                    e.0.push(l);
                    e.1 += count;
                }
            }
        }

        // Natural loop bodies: reverse reachability from back-edge sources
        // to the header.
        for (h, (sources, trips)) in headers {
            let mut body: HashSet<usize> = HashSet::new();
            body.insert(h);
            let mut stack: Vec<usize> = Vec::new();
            for &s in &sources {
                if body.insert(s) {
                    stack.push(s);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &lpred[b] {
                    if body.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let header_global = order[h];
            let mut body_ids: Vec<BlockId> =
                body.iter().map(|&l| BlockId(order[l] as u32)).collect();
            body_ids.sort();
            loops.push(LoopInfo {
                header: blocks[header_global].leader,
                header_block: BlockId(header_global as u32),
                blocks: body_ids,
                back_edge_trips: trips,
                iterations: blocks[header_global].executions,
            });
        }
    }

    loops.sort_by_key(|l| l.header);
    loops.dedup_by_key(|l| l.header);
    (routines, loops)
}

fn reverse_postorder(entry: usize, succ: &[Vec<usize>]) -> Vec<usize> {
    let n = succ.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit state stack.
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    visited[entry] = true;
    while let Some(&mut (node, ref mut child)) = stack.last_mut() {
        if *child < succ[node].len() {
            let next = succ[node][*child];
            *child += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            post.push(node);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Cooper-Harvey-Kennedy iterative dominator computation. Returns the
/// immediate-dominator array (local indices; `idom[entry] == entry`).
fn dominators(entry: usize, rpo: &[usize], pred: &[Vec<usize>]) -> Vec<usize> {
    let n = pred.len();
    let undefined = usize::MAX;
    let mut rpo_number = vec![undefined; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_number[b] = i;
    }
    let mut idom = vec![undefined; n];
    idom[entry] = entry;
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = undefined;
            for &p in &pred[b] {
                if idom[p] == undefined {
                    continue;
                }
                new_idom = if new_idom == undefined {
                    p
                } else {
                    intersect(p, new_idom, &idom, &rpo_number)
                };
            }
            if new_idom != undefined && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

fn intersect(mut a: usize, mut b: usize, idom: &[usize], rpo_number: &[usize]) -> usize {
    while a != b {
        while rpo_number[a] > rpo_number[b] {
            a = idom[a];
        }
        while rpo_number[b] > rpo_number[a] {
            b = idom[b];
        }
    }
    a
}

fn dominates(h: usize, mut u: usize, idom: &[usize]) -> bool {
    // Walk the dominator tree upward from u.
    loop {
        if u == h {
            return true;
        }
        if idom[u] == usize::MAX || idom[u] == u {
            return false;
        }
        u = idom[u];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpo_of_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let succ = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let rpo = reverse_postorder(0, &succ);
        assert_eq!(rpo[0], 0);
        assert_eq!(*rpo.last().unwrap(), 3);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn dominators_of_diamond() {
        let succ = vec![vec![1usize, 2], vec![3], vec![3], vec![]];
        let mut pred = vec![Vec::new(); 4];
        for (f, ss) in succ.iter().enumerate() {
            for &t in ss {
                pred[t].push(f);
            }
        }
        let rpo = reverse_postorder(0, &succ);
        let idom = dominators(0, &rpo, &pred);
        assert_eq!(idom[1], 0);
        assert_eq!(idom[2], 0);
        assert_eq!(idom[3], 0, "join is dominated by the fork, not a branch");
        assert!(dominates(0, 3, &idom));
        assert!(!dominates(1, 3, &idom));
    }

    #[test]
    fn dominators_of_loop() {
        // 0 -> 1 (header), 1 -> 2, 2 -> 1 (back edge), 1 -> 3
        let succ = vec![vec![1usize], vec![2, 3], vec![1], vec![]];
        let mut pred = vec![Vec::new(); 4];
        for (f, ss) in succ.iter().enumerate() {
            for &t in ss {
                pred[t].push(f);
            }
        }
        let rpo = reverse_postorder(0, &succ);
        let idom = dominators(0, &rpo, &pred);
        assert!(dominates(1, 2, &idom), "header dominates body");
        assert!(!dominates(2, 1, &idom));
    }
}
