//! # lp-dcfg — dynamic control-flow graphs
//!
//! LoopPoint identifies its unit of work — loop iterations — from a
//! *Dynamic* Control-Flow Graph (§III-D, §IV-D of the paper): a CFG whose
//! edges carry trip counts observed during a (constrained, reproducible)
//! execution. This crate builds that graph from the retirement stream of an
//! `lp-pinball` replay:
//!
//! 1. [`DcfgBuilder`] records every control-flow edge with per-thread trip
//!    counts;
//! 2. basic blocks are derived so they are single-entry/single-exit and
//!    non-overlapping (the property the paper notes distinguishes DCFG
//!    blocks from Pin's);
//! 3. routines are split at call edges; within each routine, immediate
//!    dominators are computed and **natural loops** identified from back
//!    edges (an edge `u → h` where `h` dominates `u`);
//! 4. [`Dcfg::loop_headers`] exposes the loop-entry PCs — filtered to the
//!    main image by callers, these are the legal slice boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod export;
mod graph;
mod loops;

pub use builder::DcfgBuilder;
pub use graph::{BasicBlock, BlockId, Dcfg, Edge};
pub use loops::{LoopInfo, Routine};
