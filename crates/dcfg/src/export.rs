//! Graphviz export of the DCFG — the visualization the DCFG tooling the
//! paper builds on (Yount et al., ISPASS 2015) provides for its graphs.

use crate::graph::Dcfg;
use std::fmt::Write;

impl Dcfg {
    /// Renders the graph in Graphviz `dot` syntax: one node per basic
    /// block (labelled with leader symbol, length, and execution count),
    /// solid edges for intra-routine flow with trip counts, dashed edges
    /// for calls. Loop headers are drawn with a double border.
    ///
    /// Blocks that never executed are omitted to keep graphs readable.
    pub fn to_dot(&self) -> String {
        let program = self.program().clone();
        let mut out = String::new();
        let _ = writeln!(out, "digraph dcfg {{");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for b in self.blocks() {
            if b.executions == 0 {
                continue;
            }
            let shape = if self.is_loop_header(b.leader) {
                ", peripheries=2"
            } else {
                ""
            };
            let lib = if program.is_library_pc(b.leader) {
                ", style=filled, fillcolor=lightgrey"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" [label=\"{}\\n{} insts, {} execs\"{shape}{lib}];",
                b.leader,
                program.symbolize(b.leader),
                b.len,
                b.executions
            );
        }
        for e in self.edges() {
            let (Some(from), Some(to)) = (self.block_of(e.from), self.block_of(e.to)) else {
                continue;
            };
            let from = self.block(from).leader;
            let to = self.block(to).leader;
            // Call edges land on routine entries; draw them dashed.
            let style = if self.routines().iter().any(|r| r.entry == to && from != to)
                && !self.is_loop_header(to)
            {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{from}\" -> \"{to}\" [label=\"{}\"]{style};",
                e.total
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::DcfgBuilder;
    use lp_isa::{AluOp, ProgramBuilder, Reg};
    use lp_pinball::{Pinball, RecordConfig};
    use std::sync::Arc;

    #[test]
    fn dot_output_is_wellformed() {
        let mut pb = ProgramBuilder::new("dot");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0);
        c.counted_loop("hot", Reg::R2, 9, |c| {
            c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        });
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let pinball = Pinball::record(&p, 1, RecordConfig::default()).unwrap();
        let mut b = DcfgBuilder::new(p.clone(), 1);
        pinball.replay(p.clone(), &mut [&mut b], u64::MAX).unwrap();
        let dcfg = b.finish();
        let dot = dcfg.to_dot();
        assert!(dot.starts_with("digraph dcfg {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("hot"), "loop header labelled: {dot}");
        assert!(dot.contains("peripheries=2"), "loop header double-bordered");
        assert!(dot.contains("->"), "has edges");
        // Balanced braces and quotes.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches('"').count() % 2, 0);
    }
}
