//! Edge collection from the retirement stream.

use crate::graph::Dcfg;
use lp_isa::{CtrlKind, Pc, Program, Retired};
use lp_pinball::ExecObserver;
use std::collections::HashMap;
use std::sync::Arc;

/// Classification of a recorded control-flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum EdgeKind {
    /// Branch (taken or fall-through) or jump: stays within a routine.
    Intra,
    /// Call edge (routine entry).
    Call,
    /// Return edge.
    Ret,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct EdgeData {
    pub kind: Option<EdgeKind>,
    /// Trip count per thread.
    pub counts: Vec<u64>,
}

/// Observer that accumulates a DCFG from retirements.
///
/// Feed it to [`lp_pinball::Pinball::replay`], then call
/// [`DcfgBuilder::finish`].
///
/// ```
/// use lp_dcfg::DcfgBuilder;
/// use lp_isa::{ProgramBuilder, Reg, AluOp};
/// use lp_pinball::{Pinball, RecordConfig};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pb = ProgramBuilder::new("demo");
/// let mut c = pb.main_code();
/// let header = c.counted_loop("hot", Reg::R1, 25, |c| {
///     c.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
/// });
/// c.halt();
/// c.finish();
/// let program = Arc::new(pb.finish());
///
/// let pinball = Pinball::record(&program, 1, RecordConfig::default())?;
/// let mut builder = DcfgBuilder::new(program.clone(), 1);
/// pinball.replay(program, &mut [&mut builder], u64::MAX)?;
/// let dcfg = builder.finish();
/// assert!(dcfg.is_loop_header(header));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DcfgBuilder {
    program: Arc<Program>,
    pub(crate) nthreads: usize,
    pub(crate) edges: HashMap<(Pc, Pc), EdgeData>,
    /// Per-thread PC of the last retired instruction, to record
    /// fall-through edges out of non-control instructions *only* when they
    /// terminate a block (we derive those statically instead).
    entry_pcs: Vec<Pc>,
}

impl DcfgBuilder {
    /// Creates a builder for executions of `program` with `nthreads`
    /// threads.
    pub fn new(program: Arc<Program>, nthreads: usize) -> Self {
        let mut entry_pcs = vec![program.entry_main()];
        if let Some(w) = program.entry_worker() {
            entry_pcs.push(w);
        }
        DcfgBuilder {
            program,
            nthreads,
            edges: HashMap::new(),
            entry_pcs,
        }
    }

    fn record(&mut self, tid: usize, from: Pc, to: Pc, kind: EdgeKind) {
        let data = self.edges.entry((from, to)).or_insert_with(|| EdgeData {
            kind: None,
            counts: vec![0; self.nthreads],
        });
        data.kind.get_or_insert(kind);
        data.counts[tid] += 1;
    }

    /// Finalizes the graph: derives non-overlapping basic blocks, splits
    /// routines at call edges, computes dominators, and identifies natural
    /// loops.
    pub fn finish(self) -> Dcfg {
        Dcfg::build(self.program.clone(), self.entry_pcs.clone(), self)
    }
}

impl ExecObserver for DcfgBuilder {
    fn on_retire(&mut self, r: &Retired) {
        let Some(ctrl) = r.ctrl else { return };
        let kind = match ctrl.kind {
            CtrlKind::CondTaken | CtrlKind::CondNotTaken | CtrlKind::Jump => EdgeKind::Intra,
            CtrlKind::Call => EdgeKind::Call,
            CtrlKind::Ret => EdgeKind::Ret,
        };
        self.record(r.tid, r.pc, ctrl.target, kind);
    }
}
