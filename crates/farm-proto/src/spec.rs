//! The submission model: what a tenant asks the farm to run.

use lp_obs::json::Value;

/// Default hard step budget for a single simulation or replay.
///
/// This mirrors `looppoint::DEFAULT_MAX_STEPS`; the protocol crate must
/// not link the pipeline, so the value is pinned here and a cross-crate
/// equality test in `lp-farm` keeps the two from drifting.
pub const DEFAULT_MAX_STEPS: u64 = 4_000_000_000;

/// What a tenant asks the farm to run: one end-to-end LoopPoint pipeline
/// job over a named workload. One JSON object per line of a
/// `POST /jobs` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload name (`demo-matrix-1`, `627.cam4_s.1`, `npb-cg`, ...).
    pub program: String,
    /// Requested thread count.
    pub ncores: usize,
    /// Input class: `test` | `train` | `ref` | `C`.
    pub input: String,
    /// OpenMP wait policy: `passive` | `active`.
    pub wait_policy: String,
    /// Per-thread slice size in filtered instructions.
    pub slice_base: u64,
    /// Hard step budget for any single simulation or replay.
    pub max_steps: u64,
    /// Scheduling priority; higher runs first, ties FIFO by id.
    pub priority: i64,
    /// Per-job wall-clock timeout in ms; `0` uses the farm default.
    pub timeout_ms: u64,
    /// Sampling mode: `pipeline` (two-phase LoopPoint, the default) or
    /// `live` (Pac-Sim-style online sampling, streaming partial results).
    pub mode: String,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            program: "demo-matrix-1".to_string(),
            ncores: 2,
            input: "test".to_string(),
            wait_policy: "passive".to_string(),
            slice_base: 8_000,
            max_steps: DEFAULT_MAX_STEPS,
            priority: 0,
            timeout_ms: 0,
            mode: "pipeline".to_string(),
        }
    }
}

impl JobSpec {
    /// Parses a spec from one wire JSON object. Only `program` is
    /// required; every other field falls back to [`JobSpec::default`].
    ///
    /// # Errors
    /// A human-readable message when `program` is missing or a field has
    /// the wrong type.
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        let mut spec = JobSpec::default();
        let Value::Obj(_) = v else {
            return Err("job spec must be a JSON object".to_string());
        };
        spec.program = v
            .get("program")
            .and_then(Value::as_str)
            .ok_or("job spec missing string field 'program'")?
            .to_string();
        let u64_field = |name: &str, default: u64| -> Result<u64, String> {
            match v.get(name) {
                None => Ok(default),
                Some(x) => x
                    .as_u64()
                    .ok_or(format!("field '{name}' must be a non-negative integer")),
            }
        };
        spec.ncores = u64_field("ncores", spec.ncores as u64)? as usize;
        if spec.ncores == 0 {
            return Err("field 'ncores' must be positive".to_string());
        }
        spec.slice_base = u64_field("slice_base", spec.slice_base)?;
        if spec.slice_base == 0 {
            return Err("field 'slice_base' must be positive".to_string());
        }
        spec.max_steps = u64_field("max_steps", spec.max_steps)?;
        spec.timeout_ms = u64_field("timeout_ms", spec.timeout_ms)?;
        if let Some(x) = v.get("priority") {
            spec.priority = match x {
                Value::Int(i) => i64::try_from(*i).map_err(|_| "field 'priority' out of range")?,
                _ => return Err("field 'priority' must be an integer".to_string()),
            };
        }
        if let Some(x) = v.get("input") {
            spec.input = x
                .as_str()
                .ok_or("field 'input' must be a string")?
                .to_string();
        }
        if let Some(x) = v.get("wait_policy") {
            spec.wait_policy = x
                .as_str()
                .ok_or("field 'wait_policy' must be a string")?
                .to_string();
        }
        if let Some(x) = v.get("mode") {
            spec.mode = x
                .as_str()
                .ok_or("field 'mode' must be a string")?
                .to_string();
            if spec.mode != "pipeline" && spec.mode != "live" {
                return Err(format!(
                    "field 'mode' must be 'pipeline' or 'live', got '{}'",
                    spec.mode
                ));
            }
        }
        Ok(spec)
    }

    /// The spec as a wire JSON object (round-trips through
    /// [`JobSpec::from_value`]).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("program".to_string(), Value::Str(self.program.clone())),
            ("ncores".to_string(), Value::Int(self.ncores as i128)),
            ("input".to_string(), Value::Str(self.input.clone())),
            (
                "wait_policy".to_string(),
                Value::Str(self.wait_policy.clone()),
            ),
            (
                "slice_base".to_string(),
                Value::Int(self.slice_base as i128),
            ),
            ("max_steps".to_string(), Value::Int(self.max_steps as i128)),
            ("priority".to_string(), Value::Int(self.priority as i128)),
            (
                "timeout_ms".to_string(),
                Value::Int(self.timeout_ms as i128),
            ),
            ("mode".to_string(), Value::Str(self.mode.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_wire_json() {
        let spec = JobSpec {
            program: "npb-cg".to_string(),
            ncores: 4,
            input: "train".to_string(),
            wait_policy: "active".to_string(),
            slice_base: 1234,
            max_steps: 99,
            priority: -3,
            timeout_ms: 2500,
            mode: "live".to_string(),
        };
        let back = JobSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_defaults_fill_missing_fields() {
        let v = lp_obs::json::parse(r#"{"program":"demo-matrix-2"}"#).unwrap();
        let spec = JobSpec::from_value(&v).unwrap();
        assert_eq!(spec.program, "demo-matrix-2");
        assert_eq!(spec.ncores, 2);
        assert_eq!(spec.input, "test");
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.mode, "pipeline", "pre-live specs default to pipeline");
    }

    #[test]
    fn spec_rejects_bad_shapes() {
        for bad in [
            r#"{"ncores":2}"#,                        // missing program
            r#"{"program":"x","ncores":0}"#,          // zero threads
            r#"{"program":"x","slice_base":"lots"}"#, // wrong type
            r#"{"program":"x","priority":"high"}"#,   // wrong type
            r#"{"program":"x","mode":"batch"}"#,      // unknown mode
            r#"[1,2,3]"#,                             // not an object
        ] {
            let v = lp_obs::json::parse(bad).unwrap();
            assert!(JobSpec::from_value(&v).is_err(), "should reject {bad}");
        }
    }
}
