//! The typed farm client: a keep-alive [`HttpClient`] speaking the
//! versioned protocol. Tenant CLIs (`submit`, `status`, `trace`,
//! `farm-load`) and cluster inter-node paths all go through this type,
//! so negotiation, retry policy, and body parsing live in one place.

use crate::wire::{JobStatus, SubmitOutcome};
use crate::{JobSpec, PROTO_HEADER, PROTO_VERSION};
use lp_obs::http::{ClientResponse, HttpClient};
use lp_obs::json::Value;
use lp_obs::TraceContext;
use std::io;
use std::time::Duration;

/// Errors from [`FarmClient`] calls.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a non-success status.
    Http {
        /// HTTP status code.
        status: u16,
        /// Response body (usually a JSON error object).
        body: String,
    },
    /// The server speaks an incompatible protocol version.
    VersionMismatch {
        /// What the server advertised.
        server: String,
    },
    /// The body did not parse as the expected shape.
    Parse(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "farm transport: {e}"),
            ProtoError::Http { status, body } => write!(f, "farm answered {status}: {body}"),
            ProtoError::VersionMismatch { server } => write!(
                f,
                "protocol version mismatch: server speaks {server}, this client speaks {PROTO_VERSION}"
            ),
            ProtoError::Parse(msg) => write!(f, "bad farm response: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// A typed client for one farm node.
#[derive(Debug)]
pub struct FarmClient {
    http: HttpClient,
}

impl FarmClient {
    /// A client for `addr` (`host:port`); connects lazily. Every request
    /// carries `x-lp-proto:` [`PROTO_VERSION`].
    pub fn connect(addr: impl Into<String>) -> FarmClient {
        let mut http = HttpClient::new(addr);
        http.push_default_header(PROTO_HEADER, PROTO_VERSION.to_string());
        FarmClient { http }
    }

    /// The node address this client talks to.
    pub fn addr(&self) -> &str {
        self.http.addr()
    }

    /// Sets the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.http.set_timeout(timeout);
    }

    /// The underlying transport (keep-alive reuse counters, extra
    /// headers).
    pub fn http(&mut self) -> &mut HttpClient {
        &mut self.http
    }

    /// Verifies the server's advertised protocol version, if present.
    fn negotiated(resp: ClientResponse) -> Result<ClientResponse, ProtoError> {
        if let Some(v) = resp.header(PROTO_HEADER) {
            if !crate::version_compatible(Some(v)) {
                return Err(ProtoError::VersionMismatch {
                    server: v.to_string(),
                });
            }
        }
        Ok(resp)
    }

    fn get(&mut self, path: &str) -> Result<ClientResponse, ProtoError> {
        let resp = self.http.send("GET", path, &[], &[], None, true)?;
        Self::negotiated(resp)
    }

    fn get_ok_json(&mut self, path: &str) -> Result<Value, ProtoError> {
        let resp = self.get(path)?;
        if resp.status != 200 {
            return Err(ProtoError::Http {
                status: resp.status,
                body: resp.text(),
            });
        }
        lp_obs::json::parse(&resp.text()).map_err(|e| ProtoError::Parse(e.to_string()))
    }

    /// Submits a batch of specs (one NDJSON line each), optionally
    /// parented under `trace`, with `extra` request headers (the cluster
    /// forwarding path adds [`crate::FORWARDED_HEADER`] here). Returns
    /// the HTTP status and the per-line outcomes, in submission order.
    /// Content-keyed submissions are idempotent, so stale keep-alive
    /// connections are retried transparently.
    ///
    /// # Errors
    /// Transport failures, version mismatch, or an unparseable body.
    /// Per-line rejections are *not* errors; they come back as
    /// [`SubmitOutcome::Rejected`].
    pub fn submit_with(
        &mut self,
        specs: &[JobSpec],
        trace: Option<&TraceContext>,
        extra: &[(String, String)],
    ) -> Result<(u16, Vec<SubmitOutcome>), ProtoError> {
        let mut body = String::new();
        for spec in specs {
            body.push_str(&spec.to_value().to_string());
            body.push('\n');
        }
        let resp = self
            .http
            .send("POST", "/jobs", extra, body.as_bytes(), trace, true)?;
        let resp = Self::negotiated(resp)?;
        let text = resp.text();
        if resp.status != 202 && resp.status != 503 && resp.status != 400 {
            return Err(ProtoError::Http {
                status: resp.status,
                body: text,
            });
        }
        let mut outcomes = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = lp_obs::json::parse(line).map_err(|e| ProtoError::Parse(e.to_string()))?;
            outcomes.push(SubmitOutcome::from_value(&v).map_err(ProtoError::Parse)?);
        }
        Ok((resp.status, outcomes))
    }

    /// [`FarmClient::submit_with`] without extra headers.
    ///
    /// # Errors
    /// See [`FarmClient::submit_with`].
    pub fn submit(
        &mut self,
        specs: &[JobSpec],
        trace: Option<&TraceContext>,
    ) -> Result<(u16, Vec<SubmitOutcome>), ProtoError> {
        self.submit_with(specs, trace, &[])
    }

    /// Fetches one job record. `GET /jobs/{id}` answers in NDJSON with
    /// the record as the final line; skipping the partials with a large
    /// `since` keeps the round trip as cheap as the pre-streaming wire.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn job(&mut self, id: u64) -> Result<JobStatus, ProtoError> {
        Ok(self.job_stream(id, usize::MAX)?.1)
    }

    /// Fetches a job's streamed partial-result lines starting at index
    /// `since`, plus the current record (always the response's last
    /// NDJSON line). Live jobs emit one `LiveProgress` JSON document per
    /// region; pipeline jobs stream nothing, so the partials come back
    /// empty. Poll with `since` = total lines seen so far to only pay
    /// for what is new.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn job_stream(
        &mut self,
        id: u64,
        since: usize,
    ) -> Result<(Vec<Value>, JobStatus), ProtoError> {
        let resp = self.get(&format!("/jobs/{id}?since={since}"))?;
        if resp.status != 200 {
            return Err(ProtoError::Http {
                status: resp.status,
                body: resp.text(),
            });
        }
        let text = resp.text();
        let mut lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let last = lines
            .pop()
            .ok_or_else(|| ProtoError::Parse("empty /jobs/{id} response".to_string()))?;
        let record = lp_obs::json::parse(last).map_err(|e| ProtoError::Parse(e.to_string()))?;
        let status = JobStatus::from_value(&record).map_err(ProtoError::Parse)?;
        let mut partials = Vec::with_capacity(lines.len());
        for line in lines {
            partials.push(lp_obs::json::parse(line).map_err(|e| ProtoError::Parse(e.to_string()))?);
        }
        Ok((partials, status))
    }

    /// Fetches a job's Chrome `trace_event` document.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn trace_document(&mut self, id: u64) -> Result<Value, ProtoError> {
        self.get_ok_json(&format!("/jobs/{id}/trace"))
    }

    /// Fetches `/healthz`.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn healthz(&mut self) -> Result<Value, ProtoError> {
        self.get_ok_json("/healthz")
    }

    /// Fetches `/queue`.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn queue(&mut self) -> Result<Value, ProtoError> {
        self.get_ok_json("/queue")
    }

    /// Fetches the Prometheus text document.
    ///
    /// # Errors
    /// Transport or a non-200 status.
    pub fn metrics(&mut self) -> Result<String, ProtoError> {
        let resp = self.get("/metrics")?;
        if resp.status != 200 {
            return Err(ProtoError::Http {
                status: resp.status,
                body: resp.text(),
            });
        }
        Ok(resp.text())
    }

    /// Fetches the node's full metrics snapshot as JSON
    /// (`GET /metrics.json`) — the federation wire format.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn metrics_json(&mut self) -> Result<Value, ProtoError> {
        self.get_ok_json("/metrics.json")
    }

    /// Fetches the node's metrics-history NDJSON (`GET /metrics/history`),
    /// resuming after sample sequence `since` (0 for everything retained).
    ///
    /// # Errors
    /// Transport or a non-200 status (404 when sampling is disabled).
    pub fn metrics_history(&mut self, since: u64) -> Result<String, ProtoError> {
        let resp = self.get(&format!("/metrics/history?since={since}"))?;
        if resp.status != 200 {
            return Err(ProtoError::Http {
                status: resp.status,
                body: resp.text(),
            });
        }
        Ok(resp.text())
    }

    /// Fetches the federated cluster metrics document
    /// (`GET /cluster/metrics`): per-node snapshots plus ring-wide
    /// rollups. Only cluster nodes serve this route.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn cluster_metrics(&mut self) -> Result<Value, ProtoError> {
        self.get_ok_json("/cluster/metrics")
    }

    /// Fetches the merged cross-node Chrome trace for `trace_id` (32
    /// lowercase hex chars) via `GET /cluster/trace/{trace_id}`. Only
    /// cluster nodes serve this route.
    ///
    /// # Errors
    /// Transport, non-200 status, or an unparseable body.
    pub fn cluster_trace(&mut self, trace_id: &str) -> Result<Value, ProtoError> {
        self.get_ok_json(&format!("/cluster/trace/{trace_id}"))
    }

    /// Cancels a job; returns the server's `{cancelled, state}` object.
    ///
    /// # Errors
    /// Transport, version mismatch, or an unparseable body.
    pub fn cancel(&mut self, id: u64) -> Result<Value, ProtoError> {
        let resp = self
            .http
            .send("POST", &format!("/jobs/{id}/cancel"), &[], &[], None, true)?;
        let resp = Self::negotiated(resp)?;
        lp_obs::json::parse(&resp.text()).map_err(|e| ProtoError::Parse(e.to_string()))
    }

    /// Requests shutdown (`mode` = `drain` | `now`).
    ///
    /// # Errors
    /// Transport, version mismatch, or a non-200 status.
    pub fn shutdown(&mut self, mode: &str) -> Result<(), ProtoError> {
        let resp = self.http.send(
            "POST",
            &format!("/shutdown?mode={mode}"),
            &[],
            &[],
            None,
            true,
        )?;
        let resp = Self::negotiated(resp)?;
        if resp.status != 200 {
            return Err(ProtoError::Http {
                status: resp.status,
                body: resp.text(),
            });
        }
        Ok(())
    }
}
