//! Parsed response types: what the farm's NDJSON and JSON bodies mean.

use lp_obs::json::Value;

/// One line of a `POST /jobs` NDJSON response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The submission was accepted (queued, deduped, or served from the
    /// completed-work cache — `state` is `queued` or `done`).
    Accepted {
        /// Assigned job id (on the node that owns the job).
        id: u64,
        /// `queued` | `done`.
        state: String,
        /// Present when answered by dedup: the primary/source job id.
        dedup_of: Option<u64>,
        /// The job's distributed-trace id, when the server reported one.
        trace_id: Option<String>,
        /// Cluster mode: the owner node that actually holds the job,
        /// when the submission was forwarded off the contacted node.
        forwarded_to: Option<String>,
    },
    /// The submission was rejected.
    Rejected {
        /// Human-readable reason (`queue full`, bad-spec message, ...).
        error: String,
        /// Backpressure hint, when the queue was full.
        retry_after_ms: Option<u64>,
    },
}

impl SubmitOutcome {
    /// Parses one response line (already JSON-decoded).
    ///
    /// # Errors
    /// A message when the object is neither an accept nor a reject.
    pub fn from_value(v: &Value) -> Result<SubmitOutcome, String> {
        if let Some(error) = v.get("error").and_then(Value::as_str) {
            return Ok(SubmitOutcome::Rejected {
                error: error.to_string(),
                retry_after_ms: v.get("retry_after_ms").and_then(Value::as_u64),
            });
        }
        let id = v
            .get("id")
            .and_then(Value::as_u64)
            .ok_or("submit outcome missing 'id'")?;
        let state = v
            .get("state")
            .and_then(Value::as_str)
            .ok_or("submit outcome missing 'state'")?
            .to_string();
        Ok(SubmitOutcome::Accepted {
            id,
            state,
            dedup_of: v.get("dedup_of").and_then(Value::as_u64),
            trace_id: v
                .get("trace_id")
                .and_then(Value::as_str)
                .map(str::to_string),
            forwarded_to: v
                .get("forwarded_to")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }

    /// Renders the outcome back to its wire object (the inverse of
    /// [`SubmitOutcome::from_value`]) — forwarding nodes relay a peer's
    /// outcome to the client through this.
    pub fn to_value(&self) -> Value {
        match self {
            SubmitOutcome::Accepted {
                id,
                state,
                dedup_of,
                trace_id,
                forwarded_to,
            } => {
                let mut members = vec![("id".to_string(), Value::Int(*id as i128))];
                if let Some(t) = trace_id {
                    members.push(("trace_id".to_string(), Value::Str(t.clone())));
                }
                members.push(("state".to_string(), Value::Str(state.clone())));
                if let Some(d) = dedup_of {
                    members.push(("dedup_of".to_string(), Value::Int(*d as i128)));
                }
                if let Some(owner) = forwarded_to {
                    members.push(("forwarded_to".to_string(), Value::Str(owner.clone())));
                }
                Value::Obj(members)
            }
            SubmitOutcome::Rejected {
                error,
                retry_after_ms,
            } => {
                let mut members = vec![("error".to_string(), Value::Str(error.clone()))];
                if let Some(ms) = retry_after_ms {
                    members.push(("retry_after_ms".to_string(), Value::Int(*ms as i128)));
                }
                Value::Obj(members)
            }
        }
    }

    /// The assigned id, when accepted.
    pub fn id(&self) -> Option<u64> {
        match self {
            SubmitOutcome::Accepted { id, .. } => Some(*id),
            SubmitOutcome::Rejected { .. } => None,
        }
    }
}

/// Parsed `GET /jobs/{id}` body — the client's view of a job record.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Lifecycle state string (`queued`, `running`, `done`, `failed`,
    /// `cancelled`).
    pub state: String,
    /// 32-hex-char content key.
    pub key: String,
    /// Execution attempts consumed.
    pub attempts: u64,
    /// Result document, when done.
    pub result: Option<Value>,
    /// Terminal error, when failed/cancelled.
    pub error: Option<String>,
    /// The job's distributed-trace id.
    pub trace_id: Option<String>,
}

impl JobStatus {
    /// Whether the state is terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "failed" | "cancelled")
    }

    /// Parses a job-record body.
    ///
    /// # Errors
    /// A message when required fields are missing.
    pub fn from_value(v: &Value) -> Result<JobStatus, String> {
        Ok(JobStatus {
            id: v
                .get("id")
                .and_then(Value::as_u64)
                .ok_or("job record missing 'id'")?,
            state: v
                .get("state")
                .and_then(Value::as_str)
                .ok_or("job record missing 'state'")?
                .to_string(),
            key: v
                .get("key")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            attempts: v.get("attempts").and_then(Value::as_u64).unwrap_or(0),
            result: match v.get("result") {
                None | Some(Value::Null) => None,
                Some(r) => Some(r.clone()),
            },
            error: match v.get("error") {
                None | Some(Value::Null) => None,
                Some(e) => e.as_str().map(str::to_string),
            },
            trace_id: v
                .get("trace_id")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_parse_accepts_and_rejects() {
        let v = lp_obs::json::parse(r#"{"id":7,"trace_id":"ab","state":"queued"}"#).unwrap();
        let o = SubmitOutcome::from_value(&v).unwrap();
        assert_eq!(o.id(), Some(7));
        assert!(matches!(o, SubmitOutcome::Accepted { ref state, .. } if state == "queued"));

        let v =
            lp_obs::json::parse(r#"{"id":8,"state":"done","dedup_of":7,"trace_id":"cd"}"#).unwrap();
        match SubmitOutcome::from_value(&v).unwrap() {
            SubmitOutcome::Accepted {
                dedup_of, state, ..
            } => {
                assert_eq!(dedup_of, Some(7));
                assert_eq!(state, "done");
            }
            other => panic!("expected accept, got {other:?}"),
        }

        let v = lp_obs::json::parse(r#"{"error":"queue full","retry_after_ms":1000}"#).unwrap();
        match SubmitOutcome::from_value(&v).unwrap() {
            SubmitOutcome::Rejected {
                error,
                retry_after_ms,
            } => {
                assert_eq!(error, "queue full");
                assert_eq!(retry_after_ms, Some(1000));
            }
            other => panic!("expected reject, got {other:?}"),
        }

        let bad = lp_obs::json::parse(r#"{"state":"queued"}"#).unwrap();
        assert!(SubmitOutcome::from_value(&bad).is_err());
    }

    #[test]
    fn job_status_parses_terminal_states() {
        let v = lp_obs::json::parse(
            r#"{"id":3,"state":"done","key":"ff","attempts":1,"result":{"regions":2},"error":null}"#,
        )
        .unwrap();
        let s = JobStatus::from_value(&v).unwrap();
        assert!(s.is_terminal());
        assert_eq!(s.result.unwrap().get("regions").unwrap().as_u64(), Some(2));
        assert_eq!(s.error, None);
    }
}
