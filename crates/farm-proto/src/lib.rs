//! # lp-farm-proto — the farm's versioned wire protocol
//!
//! Everything that crosses a socket between a farm node and anything
//! else — tenant CLIs, the load generator, *other farm nodes* — lives
//! here: the [`JobSpec`] submission model, the parsed response types
//! ([`SubmitOutcome`], [`JobStatus`]), and the typed keep-alive
//! [`FarmClient`]. Splitting this out of `lp-farm` means a client
//! (including a peer node forwarding a submission) links none of the
//! pipeline; it is a thin layer over [`lp_obs::http`].
//!
//! ## Version negotiation
//!
//! Every request and response carries an `x-lp-proto: <version>`
//! header ([`PROTO_HEADER`]). A server answers requests whose version
//! is absent (legacy) or equal to its own [`PROTO_VERSION`], and
//! rejects anything else with `426 Upgrade Required` so a mixed-version
//! cluster fails loudly at the protocol boundary instead of silently
//! mis-parsing bodies. Clients symmetrically verify the server's
//! advertised version.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod spec;
pub mod wire;

pub use client::{FarmClient, ProtoError};
pub use spec::{JobSpec, DEFAULT_MAX_STEPS};
pub use wire::{JobStatus, SubmitOutcome};

/// Current wire-protocol version. Bump on any incompatible change to
/// the request/response bodies or headers.
pub const PROTO_VERSION: u32 = 1;

/// Header carrying [`PROTO_VERSION`] on every request and response.
pub const PROTO_HEADER: &str = "x-lp-proto";

/// Header marking a submission already forwarded once by a cluster
/// node; a receiving node never re-forwards such a request (loop
/// prevention under ring disagreement).
pub const FORWARDED_HEADER: &str = "x-lp-forwarded";

/// Whether a request advertising `version` (`None` = header absent)
/// can be served by this build. Absent means a legacy client; equal
/// means same protocol; anything else is incompatible.
pub fn version_compatible(version: Option<&str>) -> bool {
    match version {
        None => true,
        Some(v) => v.trim().parse::<u32>() == Ok(PROTO_VERSION),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_negotiation_accepts_legacy_and_same() {
        assert!(version_compatible(None));
        assert!(version_compatible(Some("1")));
        assert!(version_compatible(Some(" 1 ")));
        assert!(!version_compatible(Some("2")));
        assert!(!version_compatible(Some("0")));
        assert!(!version_compatible(Some("not-a-number")));
    }
}
