//! Fault-tolerance and multi-tenancy edge cases for the farm:
//! in-flight dedup subscriber accounting, queue-full backpressure with a
//! retry hint, panic → retry → permanent failure with worker respawn,
//! per-job deadlines, cancellation promotion, and drain/restart resume
//! from the persisted queue journal.

use looppoint::CancelToken;
use lp_farm::{
    Farm, FarmConfig, FarmServer, JobBackend, JobSpec, JobState, ShutdownMode, SubmitError,
    Submitted, JOURNAL_FILE,
};
use lp_obs::json::Value;
use lp_obs::{names, Observer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn spec(program: &str) -> JobSpec {
    JobSpec {
        program: program.to_string(),
        ..JobSpec::default()
    }
}

/// Deterministic mock key: the program name, padded — distinct programs
/// get distinct keys, identical programs share one.
fn mock_key(spec: &JobSpec) -> Result<String, String> {
    Ok(format!("{:0<32.32}", spec.program))
}

/// Blocks every execution until `release()` (or cancellation), counting
/// computes.
struct Blocking {
    computes: AtomicUsize,
    gate: Mutex<bool>,
    cv: Condvar,
}

impl Blocking {
    fn new() -> Arc<Blocking> {
        Arc::new(Blocking {
            computes: AtomicUsize::new(0),
            gate: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn release(&self) {
        *self.gate.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl JobBackend for Blocking {
    fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        mock_key(spec)
    }

    fn execute(&self, spec: &JobSpec, cancel: &CancelToken) -> Result<String, String> {
        self.computes.fetch_add(1, Ordering::SeqCst);
        let mut open = self.gate.lock().unwrap();
        loop {
            if *open {
                return Ok(format!("{{\"program\":\"{}\"}}", spec.program));
            }
            if cancel.is_cancelled() {
                return Err("cancelled mid-flight".to_string());
            }
            let (guard, _) = self
                .cv
                .wait_timeout(open, Duration::from_millis(5))
                .unwrap();
            open = guard;
        }
    }
}

/// Completes instantly; panics on programs named `boom`.
struct Fast;

impl JobBackend for Fast {
    fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        mock_key(spec)
    }

    fn execute(&self, spec: &JobSpec, _cancel: &CancelToken) -> Result<String, String> {
        if spec.program == "boom" {
            panic!("kaboom: injected backend panic");
        }
        Ok(format!("{{\"program\":\"{}\"}}", spec.program))
    }
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lp-farm-test-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn duplicate_submits_share_one_compute() {
    let backend = Blocking::new();
    let obs = Observer::enabled();
    let farm = Farm::start(
        FarmConfig {
            workers: 2,
            ..FarmConfig::default()
        },
        backend.clone(),
        obs.clone(),
    )
    .unwrap();

    let a = farm.submit(spec("alpha")).unwrap();
    let Submitted::Queued { id: primary } = a else {
        panic!("first submit must queue, got {a:?}");
    };
    assert!(
        wait_for(Duration::from_secs(5), || {
            farm.job(primary).map(|r| r.state) == Some(JobState::Running)
        }),
        "primary never started"
    );

    // Two identical submissions while the primary is mid-compute: both
    // become followers, neither computes.
    let b = farm.submit(spec("alpha")).unwrap();
    let c = farm.submit(spec("alpha")).unwrap();
    assert!(
        matches!(b, Submitted::Deduped { primary: p, .. } if p == primary),
        "{b:?}"
    );
    assert!(
        matches!(c, Submitted::Deduped { primary: p, .. } if p == primary),
        "{c:?}"
    );
    let rec = farm.job(primary).unwrap();
    assert_eq!(rec.subscribers.len(), 2, "subscriber count while running");

    backend.release();
    assert!(farm.wait_idle(Duration::from_secs(10)), "farm stuck");

    for sub in [a.id(), b.id(), c.id()] {
        let rec = farm.job(sub).unwrap();
        assert_eq!(rec.state, JobState::Done, "job {sub}");
        assert_eq!(
            rec.result.as_deref(),
            Some("{\"program\":\"alpha\"}"),
            "followers mirror the primary's result"
        );
    }
    assert_eq!(
        backend.computes.load(Ordering::SeqCst),
        1,
        "exactly one compute"
    );
    assert_eq!(obs.counter(names::FARM_DEDUP_HITS).get(), 2);

    // A fourth identical submission after completion: served from the
    // completed-work cache, no queueing at all.
    let d = farm.submit(spec("alpha")).unwrap();
    assert!(matches!(d, Submitted::Cached { .. }), "{d:?}");
    assert_eq!(farm.job(d.id()).unwrap().state, JobState::Done);
    assert_eq!(backend.computes.load(Ordering::SeqCst), 1);
    assert_eq!(obs.counter(names::FARM_DEDUP_HITS).get(), 3);

    farm.shutdown(ShutdownMode::Drain);
    farm.join();
}

#[test]
fn queue_full_rejection_carries_retry_after() {
    let backend = Blocking::new();
    let farm = Farm::start(
        FarmConfig {
            workers: 1,
            queue_capacity: 2,
            retry_after_ms: 7_000,
            ..FarmConfig::default()
        },
        backend.clone(),
        Observer::enabled(),
    )
    .unwrap();
    let server = FarmServer::start("127.0.0.1:0", farm.clone()).unwrap();
    let addr = server.local_addr().to_string();

    // One running (off-queue), two queued: the queue is now at capacity.
    let a = farm.submit(spec("w1")).unwrap();
    assert!(wait_for(Duration::from_secs(5), || {
        farm.job(a.id()).map(|r| r.state) == Some(JobState::Running)
    }));
    farm.submit(spec("w2")).unwrap();
    farm.submit(spec("w3")).unwrap();

    // Library-level rejection carries the hint...
    let err = farm.submit(spec("w4")).unwrap_err();
    assert_eq!(
        err,
        SubmitError::QueueFull {
            retry_after_ms: 7_000
        }
    );

    // ...and the HTTP layer converts it to 503 + Retry-After (seconds,
    // rounded up).
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let body = "{\"program\":\"w4\"}\n";
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 503"), "{buf}");
    assert!(buf.contains("Retry-After: 7\r\n"), "{buf}");
    assert!(buf.contains("\"retry_after_ms\":7000"), "{buf}");

    // Dedup followers do NOT consume capacity: a duplicate of a queued
    // job is still accepted while fresh work is rejected.
    let dup = farm.submit(spec("w2")).unwrap();
    assert!(matches!(dup, Submitted::Deduped { .. }), "{dup:?}");

    backend.release();
    assert!(farm.wait_idle(Duration::from_secs(10)));
    farm.shutdown(ShutdownMode::Drain);
    farm.join();
    server.stop();
}

#[test]
fn panicking_backend_retries_then_fails_and_workers_respawn() {
    let obs = Observer::enabled();
    let farm = Farm::start(
        FarmConfig {
            workers: 1,
            max_attempts: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 5,
            ..FarmConfig::default()
        },
        Arc::new(Fast),
        obs.clone(),
    )
    .unwrap();

    let bad = farm.submit(spec("boom")).unwrap();
    assert!(
        wait_for(Duration::from_secs(10), || {
            farm.job(bad.id()).map(|r| r.state) == Some(JobState::Failed)
        }),
        "job never failed permanently"
    );
    let rec = farm.job(bad.id()).unwrap();
    assert_eq!(rec.attempts, 2, "consumed exactly max_attempts");
    assert!(
        rec.error
            .as_deref()
            .unwrap_or("")
            .contains("worker panicked"),
        "{:?}",
        rec.error
    );
    assert_eq!(
        obs.counter(names::FARM_RETRY).get(),
        1,
        "one retry between attempts"
    );

    // The panics killed worker threads; the supervisor respawned them —
    // a fresh job still executes.
    assert!(
        wait_for(Duration::from_secs(5), || {
            obs.counter(names::FARM_WORKER_RESPAWN).get() >= 2
        }),
        "workers were not respawned"
    );
    let ok = farm.submit(spec("fine")).unwrap();
    assert!(
        wait_for(Duration::from_secs(10), || {
            farm.job(ok.id()).map(|r| r.state) == Some(JobState::Done)
        }),
        "respawned worker never served the follow-up job"
    );

    farm.shutdown(ShutdownMode::Drain);
    farm.join();
}

#[test]
fn deadline_trips_cancel_and_counts_as_timeout() {
    let backend = Blocking::new(); // never released: only the deadline ends it
    let obs = Observer::enabled();
    let farm = Farm::start(
        FarmConfig {
            workers: 1,
            max_attempts: 1,
            ..FarmConfig::default()
        },
        backend,
        obs.clone(),
    )
    .unwrap();
    let mut s = spec("sleepy");
    s.timeout_ms = 50;
    let id = farm.submit(s).unwrap().id();
    assert!(
        wait_for(Duration::from_secs(10), || {
            farm.job(id).map(|r| r.state) == Some(JobState::Failed)
        }),
        "deadline never fired"
    );
    let rec = farm.job(id).unwrap();
    assert!(
        rec.error
            .as_deref()
            .unwrap_or("")
            .contains("deadline exceeded"),
        "{:?}",
        rec.error
    );
    assert_eq!(obs.counter(names::FARM_TIMEOUT).get(), 1);
    farm.shutdown(ShutdownMode::Now);
    farm.join();
}

#[test]
fn cancelling_a_primary_promotes_its_follower() {
    let backend = Blocking::new();
    let farm = Farm::start(
        FarmConfig {
            workers: 1,
            ..FarmConfig::default()
        },
        backend.clone(),
        Observer::enabled(),
    )
    .unwrap();

    let primary = farm.submit(spec("shared")).unwrap().id();
    assert!(wait_for(Duration::from_secs(5), || {
        farm.job(primary).map(|r| r.state) == Some(JobState::Running)
    }));
    let follower = farm.submit(spec("shared")).unwrap().id();

    // One tenant cancels; the other's identical request must survive.
    assert!(farm.cancel(primary));
    assert!(
        wait_for(Duration::from_secs(5), || {
            farm.job(primary).map(|r| r.state) == Some(JobState::Cancelled)
        }),
        "cancel never took effect"
    );
    backend.release();
    assert!(farm.wait_idle(Duration::from_secs(10)));

    assert_eq!(farm.job(primary).unwrap().state, JobState::Cancelled);
    let f = farm.job(follower).unwrap();
    assert_eq!(f.state, JobState::Done, "promoted follower completed");
    assert_eq!(f.dedup_of, None, "follower became a primary");
    assert!(
        backend.computes.load(Ordering::SeqCst) >= 2,
        "recomputed after cancel"
    );

    farm.shutdown(ShutdownMode::Drain);
    farm.join();
}

#[test]
fn shutdown_now_requeues_and_a_restarted_farm_resumes() {
    let dir = tmpdir("resume");
    let backend = Blocking::new();
    let farm = Farm::start(
        FarmConfig {
            workers: 1,
            dir: Some(dir.clone()),
            ..FarmConfig::default()
        },
        backend.clone(),
        Observer::enabled(),
    )
    .unwrap();

    let ids: Vec<u64> = ["r1", "r2", "r3"]
        .iter()
        .map(|p| farm.submit(spec(p)).unwrap().id())
        .collect();
    assert!(wait_for(Duration::from_secs(5), || {
        farm.job(ids[0]).map(|r| r.state) == Some(JobState::Running)
    }));

    // Immediate shutdown: the running job is interrupted and requeued to
    // disk, the queued ones persist untouched.
    farm.shutdown(ShutdownMode::Now);
    farm.join();

    let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
    let doc = lp_obs::json::parse(&journal).unwrap();
    assert_eq!(
        doc.get("jobs").unwrap().as_arr().unwrap().len(),
        3,
        "all three jobs survive in the journal: {journal}"
    );

    // A fresh daemon over the same directory resumes the queue; ids are
    // preserved so tenants can keep polling the same job URLs.
    let backend2 = Blocking::new();
    backend2.release();
    let farm2 = Farm::start(
        FarmConfig {
            workers: 2,
            dir: Some(dir.clone()),
            ..FarmConfig::default()
        },
        backend2,
        Observer::enabled(),
    )
    .unwrap();
    assert!(
        farm2.wait_idle(Duration::from_secs(10)),
        "restored jobs never ran"
    );
    for &id in &ids {
        let rec = farm2.job(id).unwrap();
        assert_eq!(rec.state, JobState::Done, "restored job {id}");
    }
    // New submissions never collide with restored ids.
    let fresh = farm2.submit(spec("r4")).unwrap().id();
    assert!(fresh > *ids.iter().max().unwrap());

    farm2.shutdown(ShutdownMode::Drain);
    farm2.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_recorder_ring_stays_bounded_across_many_jobs() {
    let backend = Blocking::new();
    backend.release();
    let obs = Observer::enabled();
    let farm = Farm::start(
        FarmConfig {
            workers: 2,
            trace_capacity: 3,
            ..FarmConfig::default()
        },
        backend,
        obs.clone(),
    )
    .unwrap();

    // 10x the ring capacity, all distinct programs so nothing dedups:
    // the recorder must retain exactly `capacity` finished traces no
    // matter how many jobs flow through.
    let ids: Vec<u64> = (0..30)
        .map(|i| farm.submit(spec(&format!("t{i}"))).unwrap().id())
        .collect();
    assert!(farm.wait_idle(Duration::from_secs(30)), "farm stuck");

    let (live, finished, capacity, evicted) = farm.flight_recorder().occupancy();
    assert_eq!(live, 0, "no live traces once idle");
    assert_eq!(finished, 3, "exactly capacity traces retained");
    assert_eq!(capacity, 3);
    assert_eq!(evicted, 27, "everything beyond capacity was evicted");
    assert_eq!(obs.counter(names::FARM_TRACE_EVICTED).get(), 27);

    // Retrievability matches the ring: exactly `capacity` of the ids
    // still render a trace document, and each is a valid Chrome trace
    // with a root job span.
    let retained: Vec<u64> = ids
        .iter()
        .copied()
        .filter(|&id| farm.trace_document(id).is_some())
        .collect();
    assert_eq!(retained.len(), 3, "retained {retained:?}");
    let doc = farm.trace_document(retained[0]).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some(names::SPAN_FARM_JOB)),
        "root span present in retained trace"
    );

    farm.shutdown(ShutdownMode::Drain);
    farm.join();
}

#[test]
fn dedup_follower_trace_links_to_the_primary() {
    let backend = Blocking::new();
    let farm = Farm::start(
        FarmConfig {
            workers: 1,
            ..FarmConfig::default()
        },
        backend.clone(),
        Observer::enabled(),
    )
    .unwrap();

    let primary = farm.submit(spec("linked")).unwrap().id();
    assert!(wait_for(Duration::from_secs(5), || {
        farm.job(primary).map(|r| r.state) == Some(JobState::Running)
    }));
    let follower = farm.submit(spec("linked")).unwrap().id();
    backend.release();
    assert!(farm.wait_idle(Duration::from_secs(10)));

    // Each tenant's job is its own trace...
    let primary_trace = farm.job(primary).unwrap().trace.trace_id.hex();
    let follower_trace = farm.job(follower).unwrap().trace.trace_id.hex();
    assert_ne!(primary_trace, follower_trace, "one trace per submission");

    // ...but the follower's flight-recorder document carries a
    // `farm.job.dedup_of` marker naming the primary job and its trace
    // id, so a tenant can pivot from their trace to the compute that
    // actually served them.
    let doc = farm.trace_document(follower).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let link = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some(names::SPAN_FARM_DEDUP))
        .expect("dedup_of marker present in follower trace");
    let args = link.get("args").unwrap();
    assert_eq!(args.get("primary").and_then(Value::as_u64), Some(primary));
    assert_eq!(
        args.get("primary_trace_id").and_then(Value::as_str),
        Some(primary_trace.as_str())
    );

    // The primary's own trace has no dedup marker.
    let pdoc = farm.trace_document(primary).unwrap();
    assert!(
        !pdoc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some(names::SPAN_FARM_DEDUP)),
        "primary carries no dedup link"
    );

    farm.shutdown(ShutdownMode::Drain);
    farm.join();
}

#[test]
fn drain_finishes_queued_work_before_stopping() {
    let backend = Blocking::new();
    backend.release();
    let farm = Farm::start(
        FarmConfig {
            workers: 2,
            ..FarmConfig::default()
        },
        backend,
        Observer::enabled(),
    )
    .unwrap();
    let ids: Vec<u64> = (0..6)
        .map(|i| farm.submit(spec(&format!("d{i}"))).unwrap().id())
        .collect();
    farm.shutdown(ShutdownMode::Drain);
    // New work is refused immediately...
    assert_eq!(
        farm.submit(spec("late")).unwrap_err(),
        SubmitError::Draining
    );
    farm.join();
    // ...but everything accepted before the drain completed.
    for id in ids {
        assert_eq!(farm.job(id).unwrap().state, JobState::Done, "job {id}");
    }
}

/// Emits three partial-result lines, then blocks until released — the
/// shape of a live job mid-run.
struct Streaming {
    gate: Mutex<bool>,
    cv: Condvar,
}

impl Streaming {
    fn new() -> Arc<Streaming> {
        Arc::new(Streaming {
            gate: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn release(&self) {
        *self.gate.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl JobBackend for Streaming {
    fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        mock_key(spec)
    }

    fn execute(&self, spec: &JobSpec, cancel: &CancelToken) -> Result<String, String> {
        self.execute_streaming(spec, cancel, &mut |_| {})
    }

    fn execute_streaming(
        &self,
        spec: &JobSpec,
        cancel: &CancelToken,
        progress: &mut dyn FnMut(String),
    ) -> Result<String, String> {
        for i in 1..=3u64 {
            progress(format!("{{\"regions\":{i},\"done\":false}}"));
        }
        let mut open = self.gate.lock().unwrap();
        loop {
            if *open {
                return Ok(format!("{{\"program\":\"{}\"}}", spec.program));
            }
            if cancel.is_cancelled() {
                return Err("cancelled mid-flight".to_string());
            }
            let (guard, _) = self
                .cv
                .wait_timeout(open, Duration::from_millis(5))
                .unwrap();
            open = guard;
        }
    }
}

#[test]
fn streamed_partials_reach_followers_in_process_and_over_http() {
    let backend = Streaming::new();
    let farm = Farm::start(
        FarmConfig {
            workers: 1,
            ..FarmConfig::default()
        },
        backend.clone(),
        Observer::enabled(),
    )
    .unwrap();
    let server = FarmServer::start("127.0.0.1:0", farm.clone()).unwrap();
    let addr = server.local_addr().to_string();

    let primary = farm.submit(spec("live1")).unwrap().id();
    assert!(
        wait_for(Duration::from_secs(5), || {
            farm.progress(primary, 0).is_some_and(|p| p.len() == 3)
        }),
        "partials never arrived"
    );

    // `since` slices incrementally: a poller that has seen 2 lines only
    // pays for the third; past-the-end yields an empty page.
    let tail = farm.progress(primary, 2).unwrap();
    assert_eq!(tail, vec!["{\"regions\":3,\"done\":false}".to_string()]);
    assert_eq!(farm.progress(primary, 17).unwrap(), Vec::<String>::new());
    assert_eq!(farm.progress(9999, 0), None, "unknown id is None");

    // A dedup follower watches the primary's stream.
    let follower = farm.submit(spec("live1")).unwrap();
    assert!(
        matches!(follower, Submitted::Deduped { .. }),
        "{follower:?}"
    );
    assert_eq!(
        farm.progress(follower.id(), 0).unwrap().len(),
        3,
        "followers see the primary's partials"
    );

    // The HTTP view: NDJSON, partials first, record last.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    write!(
        stream,
        "GET /jobs/{primary}?since=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
    assert!(buf.contains("Content-Type: application/x-ndjson"), "{buf}");
    let body = buf.split("\r\n\r\n").nth(1).unwrap();
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 3, "2 partials past since=1 + record: {body}");
    assert_eq!(lines[0], "{\"regions\":2,\"done\":false}");
    let record = lp_obs::json::parse(lines[2]).unwrap();
    assert_eq!(
        record.get("state").and_then(Value::as_str),
        Some("running"),
        "last line is the job record"
    );

    backend.release();
    assert!(farm.wait_idle(Duration::from_secs(10)), "farm stuck");
    assert_eq!(farm.job(primary).unwrap().state, JobState::Done);
    // Partials survive completion for late followers.
    assert_eq!(farm.progress(primary, 0).unwrap().len(), 3);
    farm.shutdown(ShutdownMode::Drain);
    farm.join();
    server.stop();
}
