//! Property tests for the v2 transition journal: an arbitrary op
//! sequence restored from append-only log + snapshot must materialize
//! exactly the same durable set as the v1 full-rewrite semantics (the
//! in-test model), with or without compactions interleaved; a torn log
//! tail is dropped, never fatal; and v1 documents restore through the
//! compat path.

use lp_farm::{JobSpec, Journal, JournalConfig, PersistedJob, JOURNAL_FILE, JOURNAL_LOG_FILE};
use lp_obs::Observer;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "lp-journal-prop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn job(id: u64) -> PersistedJob {
    PersistedJob {
        id,
        key: format!("{id:0>32}"),
        attempts: 0,
        submitted_us: 1_000 + id,
        traceparent: String::new(),
        spec: JobSpec {
            program: format!("prog-{id}"),
            priority: id as i64 % 5,
            ..JobSpec::default()
        },
    }
}

/// The v1 semantics: the durable set a full-rewrite journal would hold
/// after the same transitions, as id → (attempts, program).
type Model = BTreeMap<u64, (u32, String)>;

/// Applies `(kind, pick)`-encoded ops to both the journal and the
/// model. Kinds: 0 = enqueue a fresh job, 1 = start, 2 = requeue,
/// 3 = terminal; `pick` selects the target among live ids.
fn drive(journal: &Journal, model: &mut Model, next_id: &mut u64, ops: &[(u8, u64)]) {
    for &(kind, pick) in ops {
        let live: Vec<u64> = model.keys().copied().collect();
        match kind % 4 {
            0 => {
                let j = job(*next_id);
                *next_id += 1;
                model.insert(j.id, (0, j.spec.program.clone()));
                journal.enqueue(j);
            }
            k if live.is_empty() => {
                // No live job to transition; treat as another enqueue so
                // sequences stay interesting.
                let _ = k;
                let j = job(*next_id);
                *next_id += 1;
                model.insert(j.id, (0, j.spec.program.clone()));
                journal.enqueue(j);
            }
            1 => {
                let id = live[(pick as usize) % live.len()];
                model.get_mut(&id).unwrap().0 += 1;
                journal.start(id);
            }
            2 => {
                let id = live[(pick as usize) % live.len()];
                let a = &mut model.get_mut(&id).unwrap().0;
                *a = a.saturating_sub(1);
                journal.requeue(id);
            }
            _ => {
                let id = live[(pick as usize) % live.len()];
                model.remove(&id);
                journal.terminal(id);
            }
        }
    }
}

fn view_as_model(journal: &Journal) -> Model {
    journal
        .view()
        .jobs
        .into_iter()
        .map(|j| (j.id, (j.attempts, j.spec.program)))
        .collect()
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((any::<u8>(), any::<u64>()), 0..60)
}

proptest! {
    /// Restoring from log tail alone (no compaction ever ran) equals
    /// the full-rewrite model.
    #[test]
    fn log_replay_matches_full_rewrite_semantics(ops in ops_strategy()) {
        let dir = tmpdir("replay");
        let mut model = Model::new();
        let mut next_id = 1u64;
        {
            let journal = Journal::open(&dir, JournalConfig::default(), Observer::disabled()).unwrap();
            drive(&journal, &mut model, &mut next_id, &ops);
            journal.sync();
        } // drop: final flush, no compaction forced
        let reopened = Journal::open(&dir, JournalConfig::default(), Observer::disabled()).unwrap();
        prop_assert_eq!(view_as_model(&reopened), model);
        prop_assert!(reopened.view().next_id >= next_id);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Interleaving forced compactions (snapshot + truncated log) at
    /// arbitrary points never changes what restores.
    #[test]
    fn compaction_is_transparent_to_restore(ops in ops_strategy(), stride in 1usize..8) {
        let dir = tmpdir("compact");
        let mut model = Model::new();
        let mut next_id = 1u64;
        {
            let journal = Journal::open(&dir, JournalConfig::default(), Observer::disabled()).unwrap();
            for chunk in ops.chunks(stride) {
                drive(&journal, &mut model, &mut next_id, chunk);
                journal.checkpoint();
            }
        }
        let reopened = Journal::open(&dir, JournalConfig::default(), Observer::disabled()).unwrap();
        prop_assert_eq!(view_as_model(&reopened), model);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A torn final record (SIGKILL mid-append) is dropped; everything
    /// flushed before it restores intact.
    #[test]
    fn truncated_tail_is_dropped_not_fatal(ops in ops_strategy(), cut in 1usize..40) {
        let dir = tmpdir("torn");
        let mut model = Model::new();
        let mut next_id = 1u64;
        {
            let journal = Journal::open(&dir, JournalConfig::default(), Observer::disabled()).unwrap();
            drive(&journal, &mut model, &mut next_id, &ops);
            journal.sync();
        }
        // Tear the log mid-record: keep all complete lines, then append
        // a prefix of one more valid-looking record.
        let log = dir.join(JOURNAL_LOG_FILE);
        let mut bytes = std::fs::read(&log).unwrap_or_default();
        let torn = "{\"seq\":999999,\"op\":\"enqueue\",\"id\":424242,\"key\"";
        bytes.extend_from_slice(&torn.as_bytes()[..cut.min(torn.len())]);
        std::fs::write(&log, &bytes).unwrap();

        let reopened = Journal::open(&dir, JournalConfig::default(), Observer::disabled()).unwrap();
        let restored = view_as_model(&reopened);
        prop_assert!(!restored.contains_key(&424242), "torn record must not apply");
        prop_assert_eq!(restored, model);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// v1 full-rewrite documents (no `seq`, no log) restore through the
/// same open path, and the first compaction upgrades them to v2.
#[test]
fn v1_document_restores_via_compat_path() {
    let dir = tmpdir("v1compat");
    let spec = JobSpec::default();
    let doc = format!(
        "{{\"version\":1,\"next_id\":7,\"jobs\":[\
         {{\"id\":3,\"key\":\"{key}\",\"attempts\":1,\"submitted_us\":555,\
         \"traceparent\":\"\",\"spec\":{spec}}}]}}",
        key = "k".repeat(32),
        spec = spec.to_value()
    );
    std::fs::write(dir.join(JOURNAL_FILE), &doc).unwrap();

    let journal = Journal::open(&dir, JournalConfig::default(), Observer::disabled()).unwrap();
    let view = journal.view();
    assert_eq!(view.next_id, 7);
    assert_eq!(view.jobs.len(), 1);
    assert_eq!(view.jobs[0].id, 3);
    assert_eq!(view.jobs[0].attempts, 1);
    assert_eq!(view.jobs[0].submitted_us, 555);

    // Appending + checkpointing over a v1 directory writes a v2
    // snapshot that still carries the restored job.
    journal.enqueue(PersistedJob {
        id: 9,
        key: "x".repeat(32),
        attempts: 0,
        submitted_us: 777,
        traceparent: String::new(),
        spec: JobSpec::default(),
    });
    journal.checkpoint();
    drop(journal);

    let snapshot = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
    let v = lp_obs::json::parse(&snapshot).unwrap();
    use lp_obs::json::Value;
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(2));
    assert_eq!(
        v.get("jobs").and_then(Value::as_arr).map(<[Value]>::len),
        Some(2)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
