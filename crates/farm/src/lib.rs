//! # lp-farm — multi-tenant analysis service
//!
//! The LoopPoint front half (record → replay → slice → cluster →
//! checkpoint → simulate) is expensive and, for a given (program,
//! threads, config), perfectly deterministic. When several tenants — a
//! design-space sweep, a CI bot, an interactive user — share one
//! machine, running the same analysis twice is pure waste and running
//! twenty at once is an OOM. This crate is the service that sits in
//! front: a daemon with a bounded priority job queue, content-key
//! deduplication of in-flight *and* completed work, and a supervised
//! worker pool that survives panics, retries transient failures with
//! backoff, and drains gracefully.
//!
//! ```text
//!   POST /jobs (NDJSON)        ┌──────────── farm ────────────┐
//!  tenants ───────────────────▶│ bounded priority queue        │
//!   GET /jobs/{id}, /queue     │   │ dedup by 128-bit content  │
//!   GET /metrics (Prometheus)  │   ▼ key (1 compute, N subs)   │
//!   POST /shutdown?mode=drain  │ supervised workers            │
//!                              │   catch_unwind + respawn      │
//!                              │   retry w/ backoff + jitter   │
//!                              │   per-job deadlines           │
//!                              │ crash-safe queue journal      │
//!                              └──────────────────────────────┘
//! ```
//!
//! Everything is std-only; HTTP plumbing comes from [`lp_obs::http`],
//! metrics flow through the shared Prometheus exporter under the
//! `farm.*` names in [`lp_obs::names`], and job dedup keys reuse the
//! `lp-store` 128-bit content-hash machinery.
//!
//! ## Example
//!
//! ```
//! use lp_farm::{Farm, FarmConfig, FarmServer, JobBackend, JobSpec};
//! use std::sync::Arc;
//!
//! // A trivial backend: the real daemon uses `PipelineBackend`.
//! struct Echo;
//! impl JobBackend for Echo {
//!     fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
//!         Ok(format!("{:0>32}", spec.program.len()))
//!     }
//!     fn execute(
//!         &self,
//!         spec: &JobSpec,
//!         _cancel: &looppoint::CancelToken,
//!     ) -> Result<String, String> {
//!         Ok(format!("{{\"program\":\"{}\"}}", spec.program))
//!     }
//! }
//!
//! let farm = Farm::start(
//!     FarmConfig::default(),
//!     Arc::new(Echo),
//!     lp_obs::Observer::disabled(),
//! )?;
//! let server = FarmServer::start("127.0.0.1:0", farm.clone())?;
//! let addr = server.local_addr().to_string();
//!
//! let (status, body) = lp_obs::http::client_request(
//!     &addr, "POST", "/jobs", "{\"program\":\"demo-matrix-1\"}\n")?;
//! assert_eq!(status, 202);
//! assert!(body.contains("\"state\":\"queued\""));
//!
//! farm.wait_idle(std::time::Duration::from_secs(10));
//! let (status, body) = lp_obs::http::client_request(&addr, "GET", "/jobs/1", "")?;
//! assert_eq!(status, 200);
//! assert!(body.contains("\"state\":\"done\""), "{body}");
//!
//! use lp_farm::ShutdownMode;
//! farm.shutdown(ShutdownMode::Drain);
//! farm.join();
//! server.stop();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod farm;
pub mod job;
pub mod journal;
pub mod recorder;
pub mod server;

pub use backend::{JobBackend, PipelineBackend};
pub use farm::{
    Farm, FarmConfig, QueueSnapshot, ShutdownMode, SubmitError, Submitted, JOURNAL_FILE,
};
pub use job::{JobRecord, JobSpec, JobState};
pub use journal::{Journal, JournalConfig, JournalView, PersistedJob, JOURNAL_LOG_FILE};
pub use recorder::{FlightRecorder, JobTrace, LifecycleEvent};
pub use server::{FarmServer, ForwardHook, HealthzHook, RouteHook, ServerExtensions};
