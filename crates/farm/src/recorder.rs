//! The per-job flight recorder: a bounded, in-memory ring of finished
//! job traces plus the live set, each holding the job's harvested span
//! tree and its structured lifecycle events (enqueue, dedup-follow,
//! attempt-start, retry, deadline, cancel, store hit/miss, terminal).
//!
//! Memory is `O(capacity)`: finished traces evict oldest-completed first
//! once the ring is full, and a job's pipeline spans are *moved* here out
//! of the shared [`lp_obs`] trace sink when its attempt ends — so neither
//! the sink nor the recorder grows without bound under sustained load.
//!
//! Timestamps are microseconds on the farm observer's monotonic clock
//! ([`Observer::uptime_us`]), the same timeline the harvested spans were
//! recorded on, so synthesized spans (the `farm.job` root, queue-wait,
//! dedup marker) and real pipeline spans render on one consistent axis.
//!
//! Occupancy is published on the observer (`farm.trace.live/finished/
//! capacity` gauges, `farm.trace.evicted` counter) so `/healthz` and
//! `/metrics` report ring pressure without touching the recorder lock.

use lp_obs::json::Value;
use lp_obs::trace::{Phase, TraceArg, TraceEvent};
use lp_obs::{names, Observer, SpanId, TraceContext, TraceId};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// One structured lifecycle transition of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleEvent {
    /// Microseconds on the recorder's monotonic clock.
    pub ts_us: u64,
    /// Stage name: `enqueue`, `dedup_follow`, `cache_hit`, `attempt_start`,
    /// `retry`, `requeue`, `deadline`, `cancel`, `promoted`, `store_hit`,
    /// `store_miss`, `terminal`.
    pub kind: &'static str,
    /// Human-readable detail (backoff, error, primary id, ...).
    pub detail: String,
}

/// Everything the recorder retains about one job.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Farm job id.
    pub id: u64,
    /// The job's root trace context (child of the client's, if one was
    /// propagated on the wire).
    pub ctx: TraceContext,
    /// Workload name, for listings.
    pub program: String,
    /// Terminal wire state; `None` while the job is still in flight.
    pub state: Option<&'static str>,
    /// For dedup followers and cache hits: the primary job's id and trace
    /// id, linking this trace to the one that actually computed.
    pub dedup_of: Option<(u64, TraceId)>,
    /// Enqueue time (monotonic µs).
    pub enqueued_us: u64,
    /// First attempt start (monotonic µs); 0 if never started.
    pub first_start_us: u64,
    /// Terminal time (monotonic µs); 0 while live.
    pub finished_us: u64,
    /// Structured lifecycle events, in order.
    pub events: Vec<LifecycleEvent>,
    /// Spans harvested from the shared trace sink (pipeline phases,
    /// region sims, store load/save, `farm.execute` attempts).
    pub spans: Vec<TraceEvent>,
}

struct RecorderState {
    live: HashMap<u64, JobTrace>,
    /// Finished traces in completion order; front is evicted first.
    finished: VecDeque<JobTrace>,
}

/// The bounded flight recorder. One per farm; all methods are `&self`.
pub struct FlightRecorder {
    obs: Observer,
    capacity: usize,
    state: Mutex<RecorderState>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (live, finished, capacity, evicted) = self.occupancy();
        write!(
            f,
            "FlightRecorder(live {live}, finished {finished}/{capacity}, evicted {evicted})"
        )
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` finished job traces,
    /// publishing occupancy on `obs`.
    pub fn new(capacity: usize, obs: Observer) -> FlightRecorder {
        let capacity = capacity.max(1);
        obs.gauge(names::FARM_TRACE_CAPACITY).set(capacity as f64);
        obs.gauge(names::FARM_TRACE_LIVE).set(0.0);
        obs.gauge(names::FARM_TRACE_FINISHED).set(0.0);
        FlightRecorder {
            obs,
            capacity,
            state: Mutex::new(RecorderState {
                live: HashMap::new(),
                finished: VecDeque::new(),
            }),
        }
    }

    fn now_us(&self) -> u64 {
        self.obs.uptime_us()
    }

    /// Starts tracking a job at enqueue time. `first_event` is the accept
    /// path taken: `enqueue`, `dedup_follow`, or `cache_hit`.
    pub fn begin(
        &self,
        id: u64,
        ctx: TraceContext,
        program: &str,
        dedup_of: Option<(u64, TraceId)>,
        first_event: &'static str,
        detail: String,
    ) {
        let now = self.now_us();
        let mut st = self.state.lock().expect("flight recorder poisoned");
        st.live.insert(
            id,
            JobTrace {
                id,
                ctx,
                program: program.to_string(),
                state: None,
                dedup_of,
                enqueued_us: now,
                first_start_us: 0,
                finished_us: 0,
                events: vec![LifecycleEvent {
                    ts_us: now,
                    kind: first_event,
                    detail,
                }],
                spans: Vec::new(),
            },
        );
        self.publish_occupancy(&st);
    }

    /// Appends one lifecycle event to a job (live first, then the
    /// finished ring — a `promoted` can land just after a terminal).
    pub fn event(&self, id: u64, kind: &'static str, detail: String) {
        let now = self.now_us();
        let mut st = self.state.lock().expect("flight recorder poisoned");
        let ev = LifecycleEvent {
            ts_us: now,
            kind,
            detail,
        };
        if let Some(jt) = st.live.get_mut(&id) {
            if kind == "attempt_start" && jt.first_start_us == 0 {
                jt.first_start_us = now;
            }
            jt.events.push(ev);
        } else if let Some(jt) = st.finished.iter_mut().find(|j| j.id == id) {
            jt.events.push(ev);
        }
    }

    /// Moves a batch of harvested spans into a job's trace.
    pub fn attach_spans(&self, id: u64, spans: Vec<TraceEvent>) {
        if spans.is_empty() {
            return;
        }
        let mut st = self.state.lock().expect("flight recorder poisoned");
        if let Some(jt) = st.live.get_mut(&id) {
            jt.spans.extend(spans);
        } else if let Some(jt) = st.finished.iter_mut().find(|j| j.id == id) {
            jt.spans.extend(spans);
        }
    }

    /// Marks a job terminal: records the `terminal` event, moves the
    /// trace from the live set into the finished ring, and evicts the
    /// oldest-completed trace when the ring exceeds capacity.
    pub fn finish(&self, id: u64, state: &'static str) {
        let now = self.now_us();
        let mut st = self.state.lock().expect("flight recorder poisoned");
        let Some(mut jt) = st.live.remove(&id) else {
            return;
        };
        jt.state = Some(state);
        jt.finished_us = now;
        jt.events.push(LifecycleEvent {
            ts_us: now,
            kind: "terminal",
            detail: state.to_string(),
        });
        st.finished.push_back(jt);
        while st.finished.len() > self.capacity {
            st.finished.pop_front();
            self.obs.counter(names::FARM_TRACE_EVICTED).inc();
        }
        self.publish_occupancy(&st);
    }

    fn publish_occupancy(&self, st: &RecorderState) {
        self.obs
            .gauge(names::FARM_TRACE_LIVE)
            .set(st.live.len() as f64);
        self.obs
            .gauge(names::FARM_TRACE_FINISHED)
            .set(st.finished.len() as f64);
    }

    /// `(live, finished, capacity, evicted)` — the ring's occupancy.
    pub fn occupancy(&self) -> (usize, usize, usize, u64) {
        let st = self.state.lock().expect("flight recorder poisoned");
        let evicted = self.obs.counter(names::FARM_TRACE_EVICTED).get();
        (st.live.len(), st.finished.len(), self.capacity, evicted)
    }

    /// The job's full trace as a Chrome `trace_event` JSON document
    /// (loadable in Perfetto), or `None` when the id is neither live nor
    /// retained. The document contains the synthesized `farm.job` root
    /// span (submit → terminal, or → now for live jobs), a queue-wait
    /// child, the dedup marker for followers, every lifecycle event as an
    /// instant, and all harvested pipeline/store spans.
    pub fn trace_document(&self, id: u64) -> Option<Value> {
        let now = self.now_us();
        let st = self.state.lock().expect("flight recorder poisoned");
        let jt = st
            .live
            .get(&id)
            .or_else(|| st.finished.iter().find(|j| j.id == id))?;
        Some(lp_obs::export::chrome_trace_document(&assemble_events(
            jt, now,
        )))
    }

    /// Whether the recorder retains (live or finished) a trace for `id`.
    pub fn has_job(&self, id: u64) -> bool {
        let st = self.state.lock().expect("flight recorder poisoned");
        st.live.contains_key(&id) || st.finished.iter().any(|j| j.id == id)
    }

    /// The fully assembled event lists of every retained job belonging to
    /// `trace_id` (synthesized farm spans + lifecycle instants + harvested
    /// pipeline spans, as in [`FlightRecorder::trace_document`]),
    /// timestamp-sorted across jobs. Cross-node trace assembly collects
    /// this node's fragment of a distributed trace with it.
    pub fn events_for_trace(&self, trace_id: TraceId) -> Vec<TraceEvent> {
        let now = self.now_us();
        let st = self.state.lock().expect("flight recorder poisoned");
        let mut events: Vec<TraceEvent> = st
            .live
            .values()
            .chain(st.finished.iter())
            .filter(|jt| jt.ctx.trace_id == trace_id)
            .flat_map(|jt| assemble_events(jt, now))
            .collect();
        events.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.dur_us)));
        events
    }

    /// A snapshot of one retained trace (live or finished).
    pub fn job_trace(&self, id: u64) -> Option<JobTrace> {
        let st = self.state.lock().expect("flight recorder poisoned");
        st.live
            .get(&id)
            .or_else(|| st.finished.iter().find(|j| j.id == id))
            .cloned()
    }

    /// One summary JSON object per retained trace, newest first (live
    /// jobs lead), at most `limit`. This is the `GET /trace/recent`
    /// NDJSON payload: each line carries the job's trace/span ids so an
    /// operator can correlate farm jobs with external systems.
    pub fn recent(&self, limit: usize) -> Vec<Value> {
        let st = self.state.lock().expect("flight recorder poisoned");
        let mut live: Vec<&JobTrace> = st.live.values().collect();
        live.sort_by_key(|j| std::cmp::Reverse(j.enqueued_us));
        live.into_iter()
            .chain(st.finished.iter().rev())
            .take(limit)
            .map(summary_value)
            .collect()
    }
}

fn summary_value(jt: &JobTrace) -> Value {
    let mut members = vec![
        ("id".to_string(), Value::Int(jt.id as i128)),
        ("trace_id".to_string(), Value::Str(jt.ctx.trace_id.hex())),
        ("span_id".to_string(), Value::Str(jt.ctx.span_id.hex())),
        (
            "state".to_string(),
            match jt.state {
                Some(s) => Value::Str(s.to_string()),
                None => Value::Str("live".to_string()),
            },
        ),
        ("program".to_string(), Value::Str(jt.program.clone())),
        (
            "enqueued_us".to_string(),
            Value::Int(jt.enqueued_us as i128),
        ),
        (
            "finished_us".to_string(),
            Value::Int(jt.finished_us as i128),
        ),
        ("events".to_string(), Value::Int(jt.events.len() as i128)),
        ("spans".to_string(), Value::Int(jt.spans.len() as i128)),
    ];
    if let Some((primary, trace)) = &jt.dedup_of {
        members.push(("dedup_of".to_string(), Value::Int(*primary as i128)));
        members.push(("dedup_of_trace_id".to_string(), Value::Str(trace.hex())));
    }
    Value::Obj(members)
}

/// Derives a deterministic, non-zero child span id from the root's.
fn derived_span(root: SpanId, salt: u64) -> SpanId {
    SpanId((root.0 ^ salt).max(1))
}

/// Builds the full event list for one job: synthesized farm spans +
/// lifecycle instants + harvested pipeline spans, timestamp-sorted.
fn assemble_events(jt: &JobTrace, now_us: u64) -> Vec<TraceEvent> {
    let end = if jt.finished_us > 0 {
        jt.finished_us
    } else {
        now_us
    };
    let mut events = Vec::with_capacity(jt.spans.len() + jt.events.len() + 3);
    let mut root_args = vec![
        ("job".to_string(), TraceArg::U64(jt.id)),
        ("program".to_string(), TraceArg::Str(jt.program.clone())),
    ];
    if let Some(state) = jt.state {
        root_args.push(("state".to_string(), TraceArg::Str(state.to_string())));
    }
    events.push(TraceEvent {
        name: names::SPAN_FARM_JOB.to_string(),
        cat: names::CAT_FARM,
        ph: Phase::Complete,
        ts_us: jt.enqueued_us,
        dur_us: end.saturating_sub(jt.enqueued_us),
        tid: 0,
        args: root_args,
        ctx: Some(jt.ctx),
    });
    if jt.first_start_us > jt.enqueued_us {
        events.push(TraceEvent {
            name: names::SPAN_FARM_QUEUE_WAIT.to_string(),
            cat: names::CAT_FARM,
            ph: Phase::Complete,
            ts_us: jt.enqueued_us,
            dur_us: jt.first_start_us - jt.enqueued_us,
            tid: 0,
            args: Vec::new(),
            ctx: Some(TraceContext {
                trace_id: jt.ctx.trace_id,
                span_id: derived_span(jt.ctx.span_id, 0x5157),
                parent_id: Some(jt.ctx.span_id),
            }),
        });
    }
    if let Some((primary, trace)) = &jt.dedup_of {
        events.push(TraceEvent {
            name: names::SPAN_FARM_DEDUP.to_string(),
            cat: names::CAT_FARM,
            ph: Phase::Instant,
            ts_us: jt.enqueued_us,
            dur_us: 0,
            tid: 0,
            args: vec![
                ("primary".to_string(), TraceArg::U64(*primary)),
                ("primary_trace_id".to_string(), TraceArg::Str(trace.hex())),
            ],
            ctx: Some(TraceContext {
                trace_id: jt.ctx.trace_id,
                span_id: derived_span(jt.ctx.span_id, 0xded0),
                parent_id: Some(jt.ctx.span_id),
            }),
        });
    }
    for ev in &jt.events {
        events.push(TraceEvent {
            name: ev.kind.to_string(),
            cat: names::CAT_FARM,
            ph: Phase::Instant,
            ts_us: ev.ts_us,
            dur_us: 0,
            tid: 0,
            args: if ev.detail.is_empty() {
                Vec::new()
            } else {
                vec![("detail".to_string(), TraceArg::Str(ev.detail.clone()))]
            },
            ctx: Some(jt.ctx),
        });
    }
    events.extend(jt.spans.iter().cloned());
    events.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.dur_us)));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(capacity: usize) -> (FlightRecorder, Observer) {
        let obs = Observer::enabled();
        (FlightRecorder::new(capacity, obs.clone()), obs)
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest_first() {
        let (r, obs) = rec(3);
        for id in 1..=10u64 {
            r.begin(
                id,
                TraceContext::new_root(),
                "w",
                None,
                "enqueue",
                String::new(),
            );
            r.finish(id, "done");
        }
        let (live, finished, capacity, evicted) = r.occupancy();
        assert_eq!((live, finished, capacity), (0, 3, 3));
        assert_eq!(evicted, 7);
        // Oldest-completed evicted: 1..=7 gone, 8..=10 retained.
        for id in 1..=7 {
            assert!(r.trace_document(id).is_none(), "job {id} must be evicted");
        }
        for id in 8..=10 {
            assert!(r.trace_document(id).is_some(), "job {id} must be retained");
        }
        assert_eq!(obs.gauge(names::FARM_TRACE_FINISHED).get(), 3.0);
        assert_eq!(obs.counter(names::FARM_TRACE_EVICTED).get(), 7);
    }

    #[test]
    fn document_has_root_queue_wait_and_lifecycle() {
        let (r, obs) = rec(8);
        let ctx = TraceContext::new_root();
        r.begin(5, ctx, "demo", None, "enqueue", String::new());
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.event(5, "attempt_start", "worker 0".to_string());
        r.attach_spans(
            5,
            vec![TraceEvent {
                name: "job.run".to_string(),
                cat: "pipeline",
                ph: Phase::Complete,
                ts_us: obs.uptime_us(),
                dur_us: 10,
                tid: 1,
                args: Vec::new(),
                ctx: Some(ctx.child()),
            }],
        );
        r.finish(5, "done");
        let doc = r.trace_document(5).unwrap();
        let parsed = lp_obs::json::parse(&doc.to_string()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let names_seen: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        for expect in [
            "farm.job",
            "farm.job.queue_wait",
            "enqueue",
            "attempt_start",
            "terminal",
            "job.run",
        ] {
            assert!(
                names_seen.contains(&expect),
                "missing {expect:?}: {names_seen:?}"
            );
        }
        // Every event carries the job's trace id.
        for e in events {
            assert_eq!(
                e.get("args").unwrap().get("trace_id").unwrap().as_str(),
                Some(ctx.trace_id.hex().as_str()),
                "event {:?}",
                e.get("name")
            );
        }
        // The root span is first (earliest ts, longest duration).
        assert_eq!(names_seen[0], "farm.job");
    }

    #[test]
    fn follower_links_to_primary_trace() {
        let (r, _obs) = rec(4);
        let primary_ctx = TraceContext::new_root();
        r.begin(1, primary_ctx, "demo", None, "enqueue", String::new());
        let follower_ctx = TraceContext::new_root();
        r.begin(
            2,
            follower_ctx,
            "demo",
            Some((1, primary_ctx.trace_id)),
            "dedup_follow",
            "primary 1".to_string(),
        );
        r.finish(1, "done");
        r.finish(2, "done");
        let doc = r.trace_document(2).unwrap().to_string();
        let parsed = lp_obs::json::parse(&doc).unwrap();
        let dedup = parsed
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("farm.job.dedup_of"))
            .expect("dedup marker span");
        let args = dedup.get("args").unwrap();
        assert_eq!(args.get("primary").unwrap().as_u64(), Some(1));
        assert_eq!(
            args.get("primary_trace_id").unwrap().as_str(),
            Some(primary_ctx.trace_id.hex().as_str())
        );
        // The summary line carries the link too.
        let recent = r.recent(10);
        let line = recent
            .iter()
            .find(|v| v.get("id").and_then(Value::as_u64) == Some(2))
            .unwrap();
        assert_eq!(
            line.get("dedup_of_trace_id").unwrap().as_str(),
            Some(primary_ctx.trace_id.hex().as_str())
        );
    }

    #[test]
    fn recent_lists_newest_first_live_leading() {
        let (r, _obs) = rec(8);
        for id in 1..=4u64 {
            r.begin(
                id,
                TraceContext::new_root(),
                "w",
                None,
                "enqueue",
                String::new(),
            );
        }
        r.finish(1, "done");
        r.finish(2, "failed");
        let recent = r.recent(3);
        assert_eq!(recent.len(), 3);
        // Live jobs (3, 4) lead; then the newest finished (2).
        let states: Vec<&str> = recent
            .iter()
            .map(|v| v.get("state").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(states[0], "live");
        assert_eq!(states[1], "live");
        assert_eq!(states[2], "failed");
    }

    #[test]
    fn events_for_trace_collects_only_that_trace() {
        let (r, _obs) = rec(4);
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        r.begin(1, a, "w", None, "enqueue", String::new());
        r.begin(2, b, "w", None, "enqueue", String::new());
        r.finish(1, "done");
        assert!(r.has_job(1) && r.has_job(2) && !r.has_job(3));
        let evs = r.events_for_trace(a.trace_id);
        assert!(!evs.is_empty());
        assert!(evs
            .iter()
            .all(|e| e.ctx.is_some_and(|c| c.trace_id == a.trace_id)));
        assert!(evs.iter().any(|e| e.name == names::SPAN_FARM_JOB));
        assert!(r.events_for_trace(TraceId(0x1234)).is_empty());
    }

    #[test]
    fn events_after_terminal_land_in_the_ring() {
        let (r, _obs) = rec(2);
        r.begin(
            9,
            TraceContext::new_root(),
            "w",
            None,
            "enqueue",
            String::new(),
        );
        r.finish(9, "cancelled");
        r.event(9, "promoted", "follower 10 took over".to_string());
        let jt = r.job_trace(9).unwrap();
        assert_eq!(jt.events.last().unwrap().kind, "promoted");
    }
}
