//! Incremental queue journal with group-committed fsync (format v2).
//!
//! The v1 journal rewrote the entire queue file — and paid a full
//! serialize + `fsync` + rename — on *every* transition, while holding
//! the farm state lock. Under a submission burst that turns the
//! journal into the data plane's bottleneck: N accepted jobs cost
//! O(N²) bytes of rewrite and N fsyncs.
//!
//! v2 is an append-only transition log plus a periodically compacted
//! snapshot:
//!
//! * **Log** (`farm-queue.log`): one NDJSON record per transition,
//!   each carrying a monotonically increasing `seq`. Ops are
//!   `enqueue` (full job payload), `start` (attempt consumed),
//!   `requeue` (attempt handed back on shutdown-now), and `terminal`
//!   (job left the durable set). Appends are buffered and flushed by
//!   a dedicated writer thread with **group commit**: all records
//!   accumulated during one flush window share a single `fsync`, so a
//!   burst of K transitions costs one disk sync, not K.
//! * **Snapshot** (`farm-queue.json`): the materialized durable set,
//!   shaped exactly like the v1 document (`next_id` + `jobs` array)
//!   plus `version: 2` and the `seq` through which it is current.
//!   When the log outgrows `compact_factor` × the snapshot size, the
//!   writer compacts: atomically rewrites the snapshot and truncates
//!   the log.
//!
//! Restore replays snapshot + log tail, skipping records with
//! `seq <= snapshot.seq` (which makes compaction crash-safe: a crash
//! between the snapshot rename and the log truncate only leaves
//! already-covered records behind). A torn final record — the only
//! kind of damage an append-only log can suffer from `SIGKILL` — is
//! dropped, never fatal. v1 documents restore through the same path
//! (`version: 1`, no log).

use crate::job::JobSpec;
use lp_obs::json::Value;
use lp_obs::{names, Observer};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::{io, time::Duration};

/// Snapshot file name inside the farm directory (same name as the v1
/// journal — a v2 farm adopts a v1 directory in place).
pub const JOURNAL_FILE: &str = "farm-queue.json";
/// Append-only transition log next to the snapshot.
pub const JOURNAL_LOG_FILE: &str = "farm-queue.log";
/// Snapshot format version written by this module.
const SNAPSHOT_VERSION: u64 = 2;
/// Compaction floor: tiny snapshots shouldn't force compaction on
/// every few records.
const MIN_COMPACT_BYTES: u64 = 4_096;

/// Journal tuning, lifted from the owning farm's config.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Group-commit window: the writer sleeps this long after waking so
    /// concurrent transitions coalesce into one fsync. `0` flushes
    /// immediately (still one fsync per *batch*, not per record).
    pub flush_ms: u64,
    /// Compact when the log exceeds this multiple of the snapshot size.
    pub compact_factor: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            flush_ms: 1,
            compact_factor: 4,
        }
    }
}

/// One durable job: exactly the v1 per-job payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedJob {
    /// Farm-assigned job id (preserved across restarts).
    pub id: u64,
    /// Backend content key (trusted on restore; no backend call).
    pub key: String,
    /// Attempts consumed so far.
    pub attempts: u32,
    /// Submission wall clock, unix µs.
    pub submitted_us: u64,
    /// The job's root trace context in wire form, for cross-restart
    /// trace continuity.
    pub traceparent: String,
    /// The job spec itself.
    pub spec: JobSpec,
}

impl PersistedJob {
    fn to_members(&self) -> Vec<(String, Value)> {
        vec![
            ("id".to_string(), Value::Int(self.id as i128)),
            ("key".to_string(), Value::Str(self.key.clone())),
            ("attempts".to_string(), Value::Int(self.attempts as i128)),
            (
                "submitted_us".to_string(),
                Value::Int(self.submitted_us as i128),
            ),
            (
                "traceparent".to_string(),
                Value::Str(self.traceparent.clone()),
            ),
            ("spec".to_string(), self.spec.to_value()),
        ]
    }

    fn from_value(v: &Value) -> Option<PersistedJob> {
        let id = v.get("id").and_then(Value::as_u64)?;
        let key = v.get("key").and_then(Value::as_str)?.to_string();
        let spec = JobSpec::from_value(v.get("spec")?).ok()?;
        Some(PersistedJob {
            id,
            key,
            attempts: v.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32,
            submitted_us: v.get("submitted_us").and_then(Value::as_u64).unwrap_or(0),
            traceparent: v
                .get("traceparent")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            spec,
        })
    }
}

/// The materialized durable set a restarted farm re-adopts.
#[derive(Debug, Default)]
pub struct JournalView {
    /// Highest id ever assigned plus one (ids never recycle).
    pub next_id: u64,
    /// Jobs that were queued or running at the last durable point,
    /// ordered by id.
    pub jobs: Vec<PersistedJob>,
}

struct JournalState {
    /// Materialized view, kept current at append time.
    view: BTreeMap<u64, PersistedJob>,
    next_id: u64,
    /// Last assigned record seq.
    seq: u64,
    /// Last seq the log has fsynced through.
    flushed_seq: u64,
    /// Serialized records awaiting the writer (each one line).
    pending: Vec<String>,
    snapshot_bytes: u64,
    log_bytes: u64,
    /// `checkpoint()` requested a forced compaction.
    force_compact: bool,
    stop: bool,
}

struct JournalInner {
    dir: PathBuf,
    cfg: JournalConfig,
    obs: Observer,
    state: Mutex<JournalState>,
    /// Wakes the writer (pending records, checkpoint, or stop).
    work: Condvar,
    /// Wakes `sync()`/`checkpoint()` waiters after a flush/compaction.
    flushed: Condvar,
}

/// Handle to the journal; transition appends return after an in-memory
/// buffer push, durability is provided by [`Journal::sync`].
pub struct Journal {
    inner: Arc<JournalInner>,
    writer: Option<JoinHandle<()>>,
}

impl Journal {
    /// Opens (or creates) the journal in `dir`, replaying snapshot +
    /// log into the returned [`JournalView`], and starts the
    /// group-commit writer thread.
    ///
    /// # Errors
    /// Directory creation, snapshot parse, or log-open failures. A torn
    /// log *tail* is tolerated; an unparseable snapshot is not (it was
    /// written atomically, so damage there is not a crash artifact).
    pub fn open(dir: &Path, cfg: JournalConfig, obs: Observer) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let Replayed {
            view,
            next_id,
            seq,
            snapshot_bytes,
            log_bytes,
        } = replay(dir)?;
        let log_path = dir.join(JOURNAL_LOG_FILE);

        let log_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;

        let inner = Arc::new(JournalInner {
            dir: dir.to_path_buf(),
            cfg,
            obs,
            state: Mutex::new(JournalState {
                view,
                next_id,
                seq,
                flushed_seq: seq,
                pending: Vec::new(),
                snapshot_bytes,
                log_bytes,
                force_compact: false,
                stop: false,
            }),
            work: Condvar::new(),
            flushed: Condvar::new(),
        });
        let writer_inner = Arc::clone(&inner);
        let writer = std::thread::Builder::new()
            .name("farm-journal".to_string())
            .spawn(move || writer_loop(&writer_inner, log_file))
            .expect("spawn farm journal writer");
        Ok(Journal {
            inner,
            writer: Some(writer),
        })
    }

    /// Read-only replay of the journal in `dir` — the durable set as a
    /// restarted farm would adopt it — without creating the directory,
    /// taking any lock, or starting a writer. This is the failover
    /// primitive: a cluster peer adopting a dead node's queue reads the
    /// dead farm's journal through here.
    ///
    /// # Errors
    /// Snapshot parse or log read failures (a torn log tail is
    /// tolerated, as at open). A missing directory replays as empty.
    pub fn peek(dir: &Path) -> io::Result<JournalView> {
        let replayed = replay(dir)?;
        Ok(JournalView {
            next_id: replayed.next_id,
            jobs: replayed.view.into_values().collect(),
        })
    }

    /// The durable set as replayed at open time.
    pub fn view(&self) -> JournalView {
        let st = self.inner.state.lock().expect("journal lock");
        JournalView {
            next_id: st.next_id,
            jobs: st.view.values().cloned().collect(),
        }
    }

    /// A job entered the durable set (fresh primary or dedup follower —
    /// followers persist as plain jobs, v1 parity).
    pub fn enqueue(&self, job: PersistedJob) {
        self.append(
            "enqueue",
            job.id,
            |members| members.extend(job.to_members().into_iter().skip(1)),
            |st| {
                st.next_id = st.next_id.max(job.id + 1);
                st.view.insert(job.id, job.clone());
            },
        );
    }

    /// A worker picked the job up: one attempt consumed. The job stays
    /// durable (an interrupted attempt re-runs on restore).
    pub fn start(&self, id: u64) {
        self.append(
            "start",
            id,
            |_| {},
            |st| {
                if let Some(j) = st.view.get_mut(&id) {
                    j.attempts += 1;
                }
            },
        );
    }

    /// Shutdown-now interrupted the attempt: hand the attempt back.
    pub fn requeue(&self, id: u64) {
        self.append(
            "requeue",
            id,
            |_| {},
            |st| {
                if let Some(j) = st.view.get_mut(&id) {
                    j.attempts = j.attempts.saturating_sub(1);
                }
            },
        );
    }

    /// The job reached a terminal state and leaves the durable set.
    pub fn terminal(&self, id: u64) {
        self.append(
            "terminal",
            id,
            |_| {},
            |st| {
                st.view.remove(&id);
            },
        );
    }

    fn append(
        &self,
        op: &str,
        id: u64,
        extend: impl FnOnce(&mut Vec<(String, Value)>),
        apply: impl FnOnce(&mut JournalState),
    ) {
        let mut st = self.inner.state.lock().expect("journal lock");
        st.seq += 1;
        let mut members = vec![
            ("seq".to_string(), Value::Int(st.seq as i128)),
            ("op".to_string(), Value::Str(op.to_string())),
            ("id".to_string(), Value::Int(id as i128)),
        ];
        extend(&mut members);
        st.pending.push(Value::Obj(members).to_string());
        apply(&mut st);
        self.set_lag(&st);
        drop(st);
        self.inner.work.notify_one();
    }

    /// Blocks until every record appended so far has been fsynced —
    /// the durability barrier callers take before acknowledging work.
    pub fn sync(&self) {
        let mut st = self.inner.state.lock().expect("journal lock");
        let target = st.seq;
        while st.flushed_seq < target && !st.stop {
            st = self.inner.flushed.wait(st).expect("journal sync wait");
        }
    }

    /// Records appended but not yet fsynced.
    pub fn lag(&self) -> u64 {
        let st = self.inner.state.lock().expect("journal lock");
        st.seq - st.flushed_seq
    }

    /// Flushes everything and forces a compaction, leaving the snapshot
    /// alone as the complete durable state (empty log). Used at farm
    /// join so external readers see a plain v1-shaped document.
    pub fn checkpoint(&self) {
        let mut st = self.inner.state.lock().expect("journal lock");
        st.force_compact = true;
        self.inner.work.notify_one();
        let target = st.seq;
        while (st.force_compact || st.flushed_seq < target) && !st.stop {
            st = self
                .inner
                .flushed
                .wait(st)
                .expect("journal checkpoint wait");
        }
    }

    fn set_lag(&self, st: &JournalState) {
        self.inner
            .obs
            .gauge(names::FARM_JOURNAL_LAG)
            .set((st.seq - st.flushed_seq) as f64);
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("journal lock");
            st.stop = true;
        }
        self.inner.work.notify_one();
        self.inner.flushed.notify_all();
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

/// What a snapshot + log replay yields.
struct Replayed {
    view: BTreeMap<u64, PersistedJob>,
    next_id: u64,
    seq: u64,
    snapshot_bytes: u64,
    log_bytes: u64,
}

/// Replays `dir`'s snapshot and log tail into the materialized durable
/// set. Shared by [`Journal::open`] (which then appends) and
/// [`Journal::peek`] (read-only, for failover adoption).
fn replay(dir: &Path) -> io::Result<Replayed> {
    let snap_path = dir.join(JOURNAL_FILE);
    let log_path = dir.join(JOURNAL_LOG_FILE);

    let mut view: BTreeMap<u64, PersistedJob> = BTreeMap::new();
    let mut next_id = 1u64;
    let mut snap_seq = 0u64;
    let mut snapshot_bytes = 0u64;
    match std::fs::read_to_string(&snap_path) {
        Ok(text) => {
            snapshot_bytes = text.len() as u64;
            let doc = lp_obs::json::parse(&text).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{snap_path:?}: {e}"))
            })?;
            // v1 documents have no seq; every log record (if a log
            // even exists) postdates them.
            snap_seq = doc.get("seq").and_then(Value::as_u64).unwrap_or(0);
            if let Some(n) = doc.get("next_id").and_then(Value::as_u64) {
                next_id = next_id.max(n);
            }
            for j in doc.get("jobs").and_then(Value::as_arr).unwrap_or(&[]) {
                if let Some(job) = PersistedJob::from_value(j) {
                    next_id = next_id.max(job.id + 1);
                    view.insert(job.id, job);
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    let mut seq = snap_seq;
    let mut log_bytes = 0u64;
    match File::open(&log_path) {
        Ok(mut f) => {
            let mut text = String::new();
            f.read_to_string(&mut text)?;
            log_bytes = text.len() as u64;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                // A torn tail (SIGKILL mid-append) parses as garbage
                // exactly once, at the end: stop replaying there.
                let Ok(rec) = lp_obs::json::parse(line) else {
                    break;
                };
                let Some(rseq) = rec.get("seq").and_then(Value::as_u64) else {
                    break;
                };
                if rseq <= snap_seq {
                    continue; // already folded into the snapshot
                }
                seq = seq.max(rseq);
                apply_record(&rec, &mut view, &mut next_id);
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    Ok(Replayed {
        view,
        next_id,
        seq,
        snapshot_bytes,
        log_bytes,
    })
}

fn apply_record(rec: &Value, view: &mut BTreeMap<u64, PersistedJob>, next_id: &mut u64) {
    let op = rec.get("op").and_then(Value::as_str).unwrap_or("");
    let Some(id) = rec.get("id").and_then(Value::as_u64) else {
        return;
    };
    match op {
        "enqueue" => {
            if let Some(job) = PersistedJob::from_value(rec) {
                *next_id = (*next_id).max(job.id + 1);
                view.insert(job.id, job);
            }
        }
        "start" => {
            if let Some(j) = view.get_mut(&id) {
                j.attempts += 1;
            }
        }
        "requeue" => {
            if let Some(j) = view.get_mut(&id) {
                j.attempts = j.attempts.saturating_sub(1);
            }
        }
        "terminal" => {
            view.remove(&id);
        }
        _ => {}
    }
}

fn render_snapshot(st: &JournalState) -> String {
    let jobs: Vec<Value> = st
        .view
        .values()
        .map(|j| Value::Obj(j.to_members()))
        .collect();
    Value::Obj(vec![
        ("version".to_string(), Value::Int(SNAPSHOT_VERSION as i128)),
        ("seq".to_string(), Value::Int(st.seq as i128)),
        ("next_id".to_string(), Value::Int(st.next_id as i128)),
        ("jobs".to_string(), Value::Arr(jobs)),
    ])
    .to_string()
}

/// The group-commit writer: batches pending records into one write +
/// one fsync, then compacts when the log outgrows the snapshot.
fn writer_loop(inner: &Arc<JournalInner>, mut log_file: File) {
    loop {
        let mut st = inner.state.lock().expect("journal lock");
        while st.pending.is_empty() && !st.force_compact && !st.stop {
            st = inner.work.wait(st).expect("journal writer wait");
        }
        if st.stop && st.pending.is_empty() && !st.force_compact {
            return;
        }
        let coalesce = !st.pending.is_empty() && inner.cfg.flush_ms > 0 && !st.stop;
        drop(st);
        if coalesce {
            // Group-commit window: let concurrent transitions pile into
            // this batch so they share the fsync below.
            std::thread::sleep(Duration::from_millis(inner.cfg.flush_ms));
        }

        let mut st = inner.state.lock().expect("journal lock");
        let batch: Vec<String> = std::mem::take(&mut st.pending);
        let target_seq = st.seq;
        drop(st);

        let mut wrote = 0u64;
        if !batch.is_empty() {
            let mut buf = String::with_capacity(batch.iter().map(|l| l.len() + 1).sum());
            for line in &batch {
                buf.push_str(line);
                buf.push('\n');
            }
            // Best-effort like v1: a failed write must not take the farm
            // down; the records stay applied in the view and the next
            // compaction rewrites the full state anyway.
            if log_file.write_all(buf.as_bytes()).is_ok() && log_file.sync_data().is_ok() {
                inner.obs.counter(names::FARM_JOURNAL_FSYNCS).inc();
                wrote = buf.len() as u64;
            }
        }

        let mut st = inner.state.lock().expect("journal lock");
        st.log_bytes += wrote;
        st.flushed_seq = target_seq;
        let threshold = inner
            .cfg
            .compact_factor
            .saturating_mul(st.snapshot_bytes.max(MIN_COMPACT_BYTES));
        let compact_now = st.force_compact || st.log_bytes > threshold;
        if compact_now && st.pending.is_empty() {
            let snapshot = render_snapshot(&st);
            drop(st);
            let ok = lp_obs::write_atomic(&inner.dir.join(JOURNAL_FILE), snapshot.as_bytes())
                .and_then(|()| {
                    // Truncate in place: the snapshot now covers every
                    // flushed record; replay skips seq <= snapshot.seq
                    // even if this truncate never lands.
                    log_file.set_len(0)?;
                    log_file.seek(SeekFrom::Start(0))?;
                    Ok(())
                })
                .is_ok();
            st = inner.state.lock().expect("journal lock");
            if ok {
                st.snapshot_bytes = snapshot.len() as u64;
                st.log_bytes = 0;
                inner.obs.counter(names::FARM_JOURNAL_COMPACTIONS).inc();
            }
            st.force_compact = false;
        }
        inner
            .obs
            .gauge(names::FARM_JOURNAL_LAG)
            .set((st.seq - st.flushed_seq) as f64);
        let stopping = st.stop && st.pending.is_empty() && !st.force_compact;
        drop(st);
        inner.flushed.notify_all();
        if stopping {
            return;
        }
    }
}
