//! Job specifications, states, and records — the farm's wire model.
//!
//! Everything here serializes to the `lp-obs` JSON value model so the
//! HTTP API, the crash-safe queue journal, and the test harnesses all
//! speak one format. A submission is a [`JobSpec`] (one JSON object per
//! line of a `POST /jobs` body); the farm tracks each as a [`JobRecord`]
//! whose lifecycle walks [`JobState`]:
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    ▲          │  └────▶ failed     (after max_attempts)
//!    └──retry───┘  └────▶ cancelled  (user-requested)
//! ```

use lp_obs::json::Value;

/// What a tenant asks the farm to run: one end-to-end LoopPoint pipeline
/// job over a named workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload name (`demo-matrix-1`, `627.cam4_s.1`, `npb-cg`, ...).
    pub program: String,
    /// Requested thread count.
    pub ncores: usize,
    /// Input class: `test` | `train` | `ref` | `C`.
    pub input: String,
    /// OpenMP wait policy: `passive` | `active`.
    pub wait_policy: String,
    /// Per-thread slice size in filtered instructions.
    pub slice_base: u64,
    /// Hard step budget for any single simulation or replay.
    pub max_steps: u64,
    /// Scheduling priority; higher runs first, ties FIFO by id.
    pub priority: i64,
    /// Per-job wall-clock timeout in ms; `0` uses the farm default.
    pub timeout_ms: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            program: "demo-matrix-1".to_string(),
            ncores: 2,
            input: "test".to_string(),
            wait_policy: "passive".to_string(),
            slice_base: 8_000,
            max_steps: looppoint::DEFAULT_MAX_STEPS,
            priority: 0,
            timeout_ms: 0,
        }
    }
}

impl JobSpec {
    /// Parses a spec from one wire JSON object. Only `program` is
    /// required; every other field falls back to [`JobSpec::default`].
    ///
    /// # Errors
    /// A human-readable message when `program` is missing or a field has
    /// the wrong type.
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        let mut spec = JobSpec::default();
        let Value::Obj(_) = v else {
            return Err("job spec must be a JSON object".to_string());
        };
        spec.program = v
            .get("program")
            .and_then(Value::as_str)
            .ok_or("job spec missing string field 'program'")?
            .to_string();
        let u64_field = |name: &str, default: u64| -> Result<u64, String> {
            match v.get(name) {
                None => Ok(default),
                Some(x) => x
                    .as_u64()
                    .ok_or(format!("field '{name}' must be a non-negative integer")),
            }
        };
        spec.ncores = u64_field("ncores", spec.ncores as u64)? as usize;
        if spec.ncores == 0 {
            return Err("field 'ncores' must be positive".to_string());
        }
        spec.slice_base = u64_field("slice_base", spec.slice_base)?;
        if spec.slice_base == 0 {
            return Err("field 'slice_base' must be positive".to_string());
        }
        spec.max_steps = u64_field("max_steps", spec.max_steps)?;
        spec.timeout_ms = u64_field("timeout_ms", spec.timeout_ms)?;
        if let Some(x) = v.get("priority") {
            spec.priority = match x {
                Value::Int(i) => i64::try_from(*i).map_err(|_| "field 'priority' out of range")?,
                _ => return Err("field 'priority' must be an integer".to_string()),
            };
        }
        if let Some(x) = v.get("input") {
            spec.input = x
                .as_str()
                .ok_or("field 'input' must be a string")?
                .to_string();
        }
        if let Some(x) = v.get("wait_policy") {
            spec.wait_policy = x
                .as_str()
                .ok_or("field 'wait_policy' must be a string")?
                .to_string();
        }
        Ok(spec)
    }

    /// The spec as a wire JSON object (round-trips through
    /// [`JobSpec::from_value`]).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("program".to_string(), Value::Str(self.program.clone())),
            ("ncores".to_string(), Value::Int(self.ncores as i128)),
            ("input".to_string(), Value::Str(self.input.clone())),
            (
                "wait_policy".to_string(),
                Value::Str(self.wait_policy.clone()),
            ),
            (
                "slice_base".to_string(),
                Value::Int(self.slice_base as i128),
            ),
            ("max_steps".to_string(), Value::Int(self.max_steps as i128)),
            ("priority".to_string(), Value::Int(self.priority as i128)),
            (
                "timeout_ms".to_string(),
                Value::Int(self.timeout_ms as i128),
            ),
        ])
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker (or for a retry backoff to elapse).
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; `result` holds the summary.
    Done,
    /// Permanently failed (all attempts exhausted, or rejected).
    Failed,
    /// Cancelled by the submitter before completion.
    Cancelled,
}

impl JobState {
    /// Lowercase wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether this state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// The farm's full view of one submitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Farm-assigned id (monotonic per daemon lifetime, journal-persisted).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// 32-hex-char content key (identical work shares one key).
    pub key: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Execution attempts consumed so far.
    pub attempts: u32,
    /// Terminal error message, if failed/cancelled.
    pub error: Option<String>,
    /// Result JSON text ([`looppoint::JobSummary`] encoding), if done.
    pub result: Option<String>,
    /// For dedup followers: the primary job computing this key.
    pub dedup_of: Option<u64>,
    /// For primaries: follower job ids awaiting this compute.
    pub subscribers: Vec<u64>,
    /// Submission timestamp (unix µs).
    pub submitted_us: u64,
    /// Most recent execution start (unix µs), 0 if never started.
    pub started_us: u64,
    /// Terminal timestamp (unix µs), 0 until terminal.
    pub finished_us: u64,
    /// The job's root distributed-trace context (a child of the client's
    /// propagated `traceparent`, or a fresh root). Every span the job
    /// produces carries this trace id; `GET /jobs/{id}/trace` keys on it.
    pub trace: lp_obs::TraceContext,
}

impl JobRecord {
    /// The record as a wire JSON object (`GET /jobs/{id}` body).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("id".to_string(), Value::Int(self.id as i128)),
            (
                "state".to_string(),
                Value::Str(self.state.as_str().to_string()),
            ),
            ("key".to_string(), Value::Str(self.key.clone())),
            ("attempts".to_string(), Value::Int(self.attempts as i128)),
            ("spec".to_string(), self.spec.to_value()),
            (
                "submitted_us".to_string(),
                Value::Int(self.submitted_us as i128),
            ),
            (
                "started_us".to_string(),
                Value::Int(self.started_us as i128),
            ),
            (
                "finished_us".to_string(),
                Value::Int(self.finished_us as i128),
            ),
            (
                "subscribers".to_string(),
                Value::Int(self.subscribers.len() as i128),
            ),
            (
                "trace_id".to_string(),
                Value::Str(self.trace.trace_id.hex()),
            ),
            ("span_id".to_string(), Value::Str(self.trace.span_id.hex())),
        ];
        match self.dedup_of {
            Some(p) => members.push(("dedup_of".to_string(), Value::Int(p as i128))),
            None => members.push(("dedup_of".to_string(), Value::Null)),
        }
        match &self.error {
            Some(e) => members.push(("error".to_string(), Value::Str(e.clone()))),
            None => members.push(("error".to_string(), Value::Null)),
        }
        match &self.result {
            // Embed the result as structured JSON when it parses (it
            // always should — we wrote it); fall back to a string.
            Some(r) => members.push((
                "result".to_string(),
                lp_obs::json::parse(r).unwrap_or_else(|_| Value::Str(r.clone())),
            )),
            None => members.push(("result".to_string(), Value::Null)),
        }
        Value::Obj(members)
    }
}

/// Current unix time in microseconds.
pub(crate) fn now_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_wire_json() {
        let spec = JobSpec {
            program: "npb-cg".to_string(),
            ncores: 4,
            input: "train".to_string(),
            wait_policy: "active".to_string(),
            slice_base: 1234,
            max_steps: 99,
            priority: -3,
            timeout_ms: 2500,
        };
        let back = JobSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_defaults_fill_missing_fields() {
        let v = lp_obs::json::parse(r#"{"program":"demo-matrix-2"}"#).unwrap();
        let spec = JobSpec::from_value(&v).unwrap();
        assert_eq!(spec.program, "demo-matrix-2");
        assert_eq!(spec.ncores, 2);
        assert_eq!(spec.input, "test");
        assert_eq!(spec.priority, 0);
    }

    #[test]
    fn spec_rejects_bad_shapes() {
        for bad in [
            r#"{"ncores":2}"#,                        // missing program
            r#"{"program":"x","ncores":0}"#,          // zero threads
            r#"{"program":"x","slice_base":"lots"}"#, // wrong type
            r#"{"program":"x","priority":"high"}"#,   // wrong type
            r#"[1,2,3]"#,                             // not an object
        ] {
            let v = lp_obs::json::parse(bad).unwrap();
            assert!(JobSpec::from_value(&v).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn record_wire_shape_is_stable() {
        let rec = JobRecord {
            id: 7,
            spec: JobSpec::default(),
            key: "ab".repeat(16),
            state: JobState::Done,
            attempts: 1,
            error: None,
            result: Some(r#"{"regions":3}"#.to_string()),
            dedup_of: None,
            subscribers: vec![8, 9],
            submitted_us: 1,
            started_us: 2,
            finished_us: 3,
            trace: lp_obs::TraceContext::new_root(),
        };
        let v = rec.to_value();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(v.get("subscribers").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("trace_id").unwrap().as_str(),
            Some(rec.trace.trace_id.hex().as_str())
        );
        assert_eq!(
            v.get("result").unwrap().get("regions").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(v.get("error"), Some(&Value::Null));
    }
}
