//! Job specifications, states, and records — the farm's wire model.
//!
//! Everything here serializes to the `lp-obs` JSON value model so the
//! HTTP API, the crash-safe queue journal, and the test harnesses all
//! speak one format. A submission is a [`JobSpec`] (one JSON object per
//! line of a `POST /jobs` body); the farm tracks each as a [`JobRecord`]
//! whose lifecycle walks [`JobState`]:
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    ▲          │  └────▶ failed     (after max_attempts)
//!    └──retry───┘  └────▶ cancelled  (user-requested)
//! ```

use lp_obs::json::Value;

// The submission model is owned by the wire-protocol crate so clients
// (and peer nodes) link none of the pipeline; re-exported here for all
// existing `lp_farm::JobSpec` users.
pub use lp_farm_proto::JobSpec;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker (or for a retry backoff to elapse).
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; `result` holds the summary.
    Done,
    /// Permanently failed (all attempts exhausted, or rejected).
    Failed,
    /// Cancelled by the submitter before completion.
    Cancelled,
}

impl JobState {
    /// Lowercase wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether this state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// The farm's full view of one submitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Farm-assigned id (monotonic per daemon lifetime, journal-persisted).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// 32-hex-char content key (identical work shares one key).
    pub key: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Execution attempts consumed so far.
    pub attempts: u32,
    /// Terminal error message, if failed/cancelled.
    pub error: Option<String>,
    /// Result JSON text ([`looppoint::JobSummary`] encoding), if done.
    pub result: Option<String>,
    /// For dedup followers: the primary job computing this key.
    pub dedup_of: Option<u64>,
    /// For primaries: follower job ids awaiting this compute.
    pub subscribers: Vec<u64>,
    /// Submission timestamp (unix µs).
    pub submitted_us: u64,
    /// Most recent execution start (unix µs), 0 if never started.
    pub started_us: u64,
    /// Terminal timestamp (unix µs), 0 until terminal.
    pub finished_us: u64,
    /// The job's root distributed-trace context (a child of the client's
    /// propagated `traceparent`, or a fresh root). Every span the job
    /// produces carries this trace id; `GET /jobs/{id}/trace` keys on it.
    pub trace: lp_obs::TraceContext,
}

impl JobRecord {
    /// The record as a wire JSON object (`GET /jobs/{id}` body).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("id".to_string(), Value::Int(self.id as i128)),
            (
                "state".to_string(),
                Value::Str(self.state.as_str().to_string()),
            ),
            ("key".to_string(), Value::Str(self.key.clone())),
            ("attempts".to_string(), Value::Int(self.attempts as i128)),
            ("spec".to_string(), self.spec.to_value()),
            (
                "submitted_us".to_string(),
                Value::Int(self.submitted_us as i128),
            ),
            (
                "started_us".to_string(),
                Value::Int(self.started_us as i128),
            ),
            (
                "finished_us".to_string(),
                Value::Int(self.finished_us as i128),
            ),
            (
                "subscribers".to_string(),
                Value::Int(self.subscribers.len() as i128),
            ),
            (
                "trace_id".to_string(),
                Value::Str(self.trace.trace_id.hex()),
            ),
            ("span_id".to_string(), Value::Str(self.trace.span_id.hex())),
        ];
        match self.dedup_of {
            Some(p) => members.push(("dedup_of".to_string(), Value::Int(p as i128))),
            None => members.push(("dedup_of".to_string(), Value::Null)),
        }
        match &self.error {
            Some(e) => members.push(("error".to_string(), Value::Str(e.clone()))),
            None => members.push(("error".to_string(), Value::Null)),
        }
        match &self.result {
            // Embed the result as structured JSON when it parses (it
            // always should — we wrote it); fall back to a string.
            Some(r) => members.push((
                "result".to_string(),
                lp_obs::json::parse(r).unwrap_or_else(|_| Value::Str(r.clone())),
            )),
            None => members.push(("result".to_string(), Value::Null)),
        }
        Value::Obj(members)
    }
}

/// Current unix time in microseconds.
pub(crate) fn now_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_default_step_budget_matches_the_pipeline() {
        // `lp-farm-proto` pins its own copy of the default step budget
        // (it must not link the pipeline); this is the drift guard.
        assert_eq!(
            lp_farm_proto::DEFAULT_MAX_STEPS,
            looppoint::DEFAULT_MAX_STEPS
        );
        assert_eq!(JobSpec::default().max_steps, looppoint::DEFAULT_MAX_STEPS);
    }

    #[test]
    fn record_wire_shape_is_stable() {
        let rec = JobRecord {
            id: 7,
            spec: JobSpec::default(),
            key: "ab".repeat(16),
            state: JobState::Done,
            attempts: 1,
            error: None,
            result: Some(r#"{"regions":3}"#.to_string()),
            dedup_of: None,
            subscribers: vec![8, 9],
            submitted_us: 1,
            started_us: 2,
            finished_us: 3,
            trace: lp_obs::TraceContext::new_root(),
        };
        let v = rec.to_value();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(v.get("subscribers").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("trace_id").unwrap().as_str(),
            Some(rec.trace.trace_id.hex().as_str())
        );
        assert_eq!(
            v.get("result").unwrap().get("regions").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(v.get("error"), Some(&Value::Null));
    }
}
