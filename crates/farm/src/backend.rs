//! What the farm executes: the [`JobBackend`] trait and the production
//! [`PipelineBackend`] that runs the full LoopPoint pipeline.
//!
//! The queue/supervisor machinery is generic over the backend so the
//! fault-tolerance tests can plug in deterministic mock backends (panic
//! on demand, fail N times then succeed, block until cancelled) without
//! paying for real pipeline runs.

use crate::job::JobSpec;
use looppoint::{CancelToken, LoopPointConfig, SimOptions};
use lp_isa::Program;
use lp_obs::Observer;
use lp_store::{ArtifactKind, Store, StoreKey, StoreKeyBuilder};
use lp_uarch::SimConfig;
use lp_workloads::{matrix_demo, InputClass, WorkloadSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The compute a farm worker performs for one job.
///
/// `job_key` must be a *content key*: two specs that would produce the
/// same result must map to the same key (that is what dedup keys on),
/// and specs producing different results must differ. `execute` returns
/// the result as a JSON document (stored verbatim in the job record) or
/// a human-readable error; it should poll `cancel` and bail out promptly
/// once tripped.
pub trait JobBackend: Send + Sync + 'static {
    /// Content key for dedup (32 lowercase hex chars by convention).
    ///
    /// # Errors
    /// A message when the spec is invalid (unknown program, bad enum).
    fn job_key(&self, spec: &JobSpec) -> Result<String, String>;

    /// Runs the job to completion (or until `cancel` trips).
    ///
    /// # Errors
    /// A message on any pipeline failure; the farm decides on retry.
    fn execute(&self, spec: &JobSpec, cancel: &CancelToken) -> Result<String, String>;

    /// Like [`JobBackend::execute`], but the backend may emit partial
    /// results — one JSON document per call — through `progress` while
    /// the job runs. The farm buffers these per job and streams them to
    /// `GET /jobs/{id}` followers. The default ignores the sink and runs
    /// `execute`, so backends without partials need no changes.
    ///
    /// # Errors
    /// As [`JobBackend::execute`].
    fn execute_streaming(
        &self,
        spec: &JobSpec,
        cancel: &CancelToken,
        progress: &mut dyn FnMut(String),
    ) -> Result<String, String> {
        let _ = progress;
        self.execute(spec, cancel)
    }
}

/// Spec fields the content key depends on: (program, input, wait
/// policy, ncores, slice_base, max_steps, mode).
type KeyMemoKey = (String, String, String, usize, u64, u64, String);
/// Spec fields program expansion depends on: (program, input, wait
/// policy, ncores).
type ProgramMemoKey = (String, String, String, usize);

/// The production backend: resolves the named workload, builds the
/// program, and runs [`looppoint::run_job`] — store-backed when the farm
/// shares an artifact store, so identical work across daemon restarts is
/// also a cache hit, not just within one process.
pub struct PipelineBackend {
    store: Option<Arc<Store>>,
    obs: Observer,
    /// `job_key` memo: computing a key builds the whole program, which
    /// is far too slow to repeat for every submission of a hot spec
    /// (and `submit` calls it on the HTTP request path). Keyed on
    /// exactly the spec fields the content key depends on.
    key_memo: Mutex<HashMap<KeyMemoKey, StoreKey>>,
    /// Built-program memo: workload expansion is deterministic in
    /// (program, input, threads, wait policy), so repeat executions of a
    /// hot spec — the common case once the store is warm — share one
    /// immutable build instead of re-expanding per attempt.
    program_memo: Mutex<HashMap<ProgramMemoKey, (Arc<Program>, usize)>>,
}

impl PipelineBackend {
    /// A backend writing through `store` (if given) and reporting into
    /// `obs`. The store arrives shared (`Arc`) so cluster mode can hand
    /// the same handle to the artifact-exchange layer.
    pub fn new(store: Option<Arc<Store>>, obs: Observer) -> PipelineBackend {
        PipelineBackend {
            store,
            obs,
            key_memo: Mutex::new(HashMap::new()),
            program_memo: Mutex::new(HashMap::new()),
        }
    }

    fn resolve(name: &str) -> Option<WorkloadSpec> {
        match name {
            "demo-matrix-1" => Some(matrix_demo(1)),
            "demo-matrix-2" => Some(matrix_demo(2)),
            "demo-matrix-3" => Some(matrix_demo(3)),
            other => lp_workloads::find(other),
        }
    }

    /// Everything both `job_key` and `execute` need, derived once.
    fn setup(
        &self,
        spec: &JobSpec,
    ) -> Result<(Arc<Program>, usize, LoopPointConfig, SimConfig), String> {
        let wspec = Self::resolve(&spec.program)
            .ok_or_else(|| format!("unknown program '{}'", spec.program))?;
        let input = match spec.input.as_str() {
            "test" => InputClass::Test,
            "train" => InputClass::Train,
            "ref" => InputClass::Ref,
            "C" | "c" => InputClass::NpbC,
            other => return Err(format!("unknown input class '{other}'")),
        };
        let policy = match spec.wait_policy.as_str() {
            "passive" => lp_omp::WaitPolicy::Passive,
            "active" => lp_omp::WaitPolicy::Active,
            other => return Err(format!("unknown wait policy '{other}'")),
        };
        let memo_key = (
            spec.program.clone(),
            spec.input.clone(),
            spec.wait_policy.clone(),
            spec.ncores,
        );
        let (program, nthreads) = {
            let mut memo = self.program_memo.lock().expect("program memo lock");
            match memo.get(&memo_key) {
                Some((p, n)) => (Arc::clone(p), *n),
                None => {
                    let nthreads = wspec.effective_threads(spec.ncores);
                    let program = lp_workloads::build(&wspec, input, spec.ncores, policy);
                    memo.insert(memo_key, (Arc::clone(&program), nthreads));
                    (program, nthreads)
                }
            }
        };
        // Inherit the worker's ambient trace context (the job's root, when
        // invoked from a farm worker) so run_job re-attaches it on its own
        // thread and every pipeline span joins the job's trace.
        let mut cfg = LoopPointConfig::with_slice_base(spec.slice_base)
            .with_observer(self.obs.clone())
            .with_trace(lp_obs::tracectx::current());
        cfg.max_steps = spec.max_steps;
        let simcfg = SimConfig::gainestown(nthreads.max(spec.ncores));
        Ok((program, nthreads, cfg, simcfg))
    }
}

impl PipelineBackend {
    /// The job's content [`StoreKey`] — what `job_key` renders as hex
    /// and the summary cache files under.
    fn store_key(&self, spec: &JobSpec) -> Result<StoreKey, String> {
        let memo_key = (
            spec.program.clone(),
            spec.input.clone(),
            spec.wait_policy.clone(),
            spec.ncores,
            spec.slice_base,
            spec.max_steps,
            spec.mode.clone(),
        );
        if let Some(key) = self.key_memo.lock().expect("key memo lock").get(&memo_key) {
            return Ok(*key);
        }
        let (program, nthreads, cfg, _) = self.setup(spec)?;
        // The analysis key already folds in the program content, thread
        // count, and every analysis knob; compose the simulation-side
        // parameters on top so jobs only dedup when the *whole* result
        // (summary included) would be identical.
        let mut kb = StoreKeyBuilder::new("farm/job/v1");
        kb.field_str(
            "analysis",
            &looppoint::analysis_key(&program, nthreads, &cfg).hex(),
        )
        .field_u64("max_steps", spec.max_steps)
        .field_str("mode", &spec.mode);
        let key = kb.finish();
        self.key_memo
            .lock()
            .expect("key memo lock")
            .insert(memo_key, key);
        Ok(key)
    }
}

impl JobBackend for PipelineBackend {
    fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        Ok(self.store_key(spec)?.hex())
    }

    fn execute(&self, spec: &JobSpec, cancel: &CancelToken) -> Result<String, String> {
        self.execute_streaming(spec, cancel, &mut |_| {})
    }

    fn execute_streaming(
        &self,
        spec: &JobSpec,
        cancel: &CancelToken,
        progress: &mut dyn FnMut(String),
    ) -> Result<String, String> {
        // Terminal-summary cache: the job key is a content key over the
        // whole result, so a stored summary under it IS the answer —
        // repeat work across daemon restarts skips the pipeline (and its
        // region re-simulation) entirely.
        let key = self.store_key(spec)?;
        if let Some(store) = &self.store {
            if let Some(bytes) = store.load(&key, ArtifactKind::JobSummary) {
                if let Ok(text) = String::from_utf8(bytes) {
                    return Ok(text);
                }
            }
        }
        let (program, nthreads, cfg, simcfg) = self.setup(spec)?;
        let text = if spec.mode == "live" {
            let live_cfg = looppoint::LiveConfig {
                slice_base: spec.slice_base,
                max_steps: spec.max_steps,
                obs: self.obs.clone(),
                cancel: cancel.clone(),
                trace: lp_obs::tracectx::current(),
                ..looppoint::LiveConfig::default()
            };
            let summary =
                looppoint::run_live_job(&program, nthreads, &live_cfg, &simcfg, &mut |p| {
                    progress(p.to_value().to_string());
                })
                .map_err(|e| e.to_string())?;
            summary.to_value().to_string()
        } else {
            let cfg = cfg.with_cancel(cancel.clone());
            let opts = SimOptions {
                max_steps: spec.max_steps,
                ..Default::default()
            };
            let summary = looppoint::run_job(
                &program,
                nthreads,
                &cfg,
                &simcfg,
                &opts,
                2,
                self.store.as_deref(),
            )
            .map_err(|e| e.to_string())?;
            summary.to_value().to_string()
        };
        if let Some(store) = &self.store {
            // Best-effort: losing the summary cache only costs a rerun.
            let _ = store.save(&key, ArtifactKind::JobSummary, text.as_bytes());
        }
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> JobSpec {
        JobSpec {
            program: "demo-matrix-1".to_string(),
            slice_base: 500,
            ..JobSpec::default()
        }
    }

    #[test]
    fn key_is_content_addressed() {
        let backend = PipelineBackend::new(None, Observer::disabled());
        let a = backend.job_key(&demo_spec()).unwrap();
        let b = backend.job_key(&demo_spec()).unwrap();
        assert_eq!(a, b, "identical specs share a key");
        assert_eq!(a.len(), 32);

        let mut other = demo_spec();
        other.ncores = 4;
        assert_ne!(
            backend.job_key(&other).unwrap(),
            a,
            "threads change the key"
        );
        let mut other = demo_spec();
        other.slice_base = 600;
        assert_ne!(
            backend.job_key(&other).unwrap(),
            a,
            "slicing changes the key"
        );
    }

    #[test]
    fn unknown_program_is_a_key_error() {
        let backend = PipelineBackend::new(None, Observer::disabled());
        let mut spec = demo_spec();
        spec.program = "no-such-app".to_string();
        let err = backend.job_key(&spec).unwrap_err();
        assert!(err.contains("unknown program"), "{err}");
    }

    #[test]
    fn execute_runs_the_pipeline_and_honors_cancel() {
        let backend = PipelineBackend::new(None, Observer::disabled());
        let spec = demo_spec();
        let out = backend.execute(&spec, &CancelToken::new()).unwrap();
        let v = lp_obs::json::parse(&out).unwrap();
        assert!(v.get("predicted_cycles").unwrap().as_f64().unwrap() > 0.0);

        let tripped = CancelToken::new();
        tripped.cancel();
        let err = backend.execute(&spec, &tripped).unwrap_err();
        assert!(err.contains("cancel"), "{err}");
    }
}
