//! The farm core: bounded priority queue, content-key dedup, supervised
//! worker pool, retry with backoff, and the crash-safe queue journal.
//!
//! ## Dedup
//!
//! Every accepted job is keyed by its backend content key. The first
//! submission of a key becomes the *primary* and is the only one that
//! computes; later submissions while it is in flight become *followers*
//! (subscribers) that mirror the primary's terminal state and result.
//! Submissions after a key completed are answered straight from the
//! completed-work cache. `N` identical concurrent requests therefore cost
//! exactly one compute.
//!
//! ## Fault tolerance
//!
//! Workers execute under `catch_unwind`: a panicking backend fails only
//! its own job, the worker thread retires, and the supervisor respawns a
//! replacement. Failed attempts retry with exponential backoff plus
//! jitter up to `max_attempts`; per-job deadlines trip the job's
//! [`CancelToken`] so a wedged pipeline converts to a retryable timeout.
//!
//! ## Durability
//!
//! With a journal directory configured, every queue transition appends
//! one record to the v2 journal ([`crate::journal`]): an append-only
//! transition log with group-committed fsync plus a periodically
//! compacted snapshot. Queued jobs and running jobs (persisted as
//! queued, so an interrupted attempt re-runs) survive `SIGKILL`. A
//! restarted farm re-adopts the journal and resumes — dedup regroups
//! naturally because restored jobs re-enter through the same enqueue
//! path.

use crate::backend::JobBackend;
use crate::job::{now_us, JobRecord, JobSpec, JobState};
use crate::journal::{Journal, JournalConfig, PersistedJob};
use crate::recorder::FlightRecorder;
use looppoint::CancelToken;
use lp_obs::json::Value;
use lp_obs::{names, Observer, TraceContext};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use crate::journal::JOURNAL_FILE;

/// Tuning knobs for a [`Farm`].
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Worker pool width.
    pub workers: usize,
    /// Executable-queue capacity; submissions past it are rejected with
    /// a retry-after hint (dedup followers don't consume capacity).
    pub queue_capacity: usize,
    /// Attempts before a job fails permanently.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Default per-job wall-clock timeout (ms); `0` disables.
    pub default_timeout_ms: u64,
    /// `Retry-After` hint handed to rejected submitters (ms).
    pub retry_after_ms: u64,
    /// Terminal records kept in memory for `GET /jobs/{id}`.
    pub history_limit: usize,
    /// Finished per-job traces retained by the flight recorder
    /// (`GET /jobs/{id}/trace`); oldest-completed evict first.
    pub trace_capacity: usize,
    /// First job id is `id_base + 1`. Cluster nodes carve the id space
    /// into disjoint per-node ranges (ordinal-derived high bits) so a
    /// job id is meaningful cluster-wide: forwarded submissions return
    /// the owner's id, and adopted jobs keep theirs without colliding
    /// with the adopter's own. `0` (the default) is the single-node
    /// behavior: ids from 1.
    pub id_base: u64,
    /// Journal directory; `None` runs in-memory only.
    pub dir: Option<PathBuf>,
    /// Journal group-commit window (ms): transitions landing within it
    /// share one fsync. `0` flushes each batch immediately.
    pub journal_flush_ms: u64,
    /// Journal compaction trigger: compact when the transition log
    /// exceeds this multiple of the snapshot size.
    pub journal_compact_factor: u64,
    /// Metrics-history sampling cadence (ms) for `/metrics/history` and
    /// `run-looppoint top`; `0` disables the sampler.
    pub history_interval_ms: u64,
    /// Samples retained by the bounded history ring.
    pub history_capacity: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            workers: 2,
            queue_capacity: 64,
            max_attempts: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            default_timeout_ms: 0,
            retry_after_ms: 1_000,
            history_limit: 1_024,
            trace_capacity: 256,
            id_base: 0,
            dir: None,
            journal_flush_ms: 1,
            journal_compact_factor: 4,
            history_interval_ms: 1_000,
            history_capacity: 512,
        }
    }
}

/// How a submission was accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Newly queued as the primary compute for its key.
    Queued {
        /// Assigned job id.
        id: u64,
    },
    /// Attached as a follower of an in-flight primary (one compute).
    Deduped {
        /// Assigned job id.
        id: u64,
        /// The primary's id.
        primary: u64,
    },
    /// Answered from the completed-work cache; already terminal.
    Cached {
        /// Assigned job id.
        id: u64,
        /// The completed job whose result was reused.
        source: u64,
    },
}

impl Submitted {
    /// The id assigned to this submission.
    pub fn id(&self) -> u64 {
        match self {
            Submitted::Queued { id }
            | Submitted::Deduped { id, .. }
            | Submitted::Cached { id, .. } => *id,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after the hinted delay.
    QueueFull {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The farm is draining or shut down.
    Draining,
    /// The spec itself is invalid (unknown program, bad field).
    BadSpec(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after_ms } => {
                write!(f, "queue full; retry after {retry_after_ms} ms")
            }
            SubmitError::Draining => write!(f, "farm is draining"),
            SubmitError::BadSpec(msg) => write!(f, "bad job spec: {msg}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Shutdown style for [`Farm::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting, finish every queued and running job, then stop.
    Drain,
    /// Stop accepting, interrupt running jobs and requeue them to the
    /// journal (they resume on the next start), stop promptly.
    Now,
}

/// Aggregate queue statistics (`GET /queue`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Executable jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Terminal-done records retained.
    pub done: usize,
    /// Terminal-failed records retained.
    pub failed: usize,
    /// Terminal-cancelled records retained.
    pub cancelled: usize,
    /// Live worker threads.
    pub workers: usize,
    /// Queue capacity.
    pub capacity: usize,
    /// Whether the farm has stopped accepting submissions.
    pub draining: bool,
}

impl QueueSnapshot {
    /// The snapshot as a wire JSON object.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("queued".to_string(), Value::Int(self.queued as i128)),
            ("running".to_string(), Value::Int(self.running as i128)),
            ("done".to_string(), Value::Int(self.done as i128)),
            ("failed".to_string(), Value::Int(self.failed as i128)),
            ("cancelled".to_string(), Value::Int(self.cancelled as i128)),
            ("workers".to_string(), Value::Int(self.workers as i128)),
            ("capacity".to_string(), Value::Int(self.capacity as i128)),
            ("draining".to_string(), Value::Bool(self.draining)),
        ])
    }
}

/// One entry of the executable queue.
#[derive(Debug, Clone)]
struct QueuedEntry {
    id: u64,
    priority: i64,
    /// Unix µs before which this entry must not run (retry backoff).
    not_before_us: u64,
}

/// Live bookkeeping for a running job.
struct RunningInfo {
    cancel: CancelToken,
    /// Unix µs deadline, if a timeout applies.
    deadline_us: Option<u64>,
    timed_out: bool,
    user_cancelled: bool,
    /// Shutdown-now: don't consume an attempt, put it back for restart.
    requeue: bool,
}

struct FarmState {
    next_id: u64,
    jobs: BTreeMap<u64, JobRecord>,
    queued: Vec<QueuedEntry>,
    running: HashMap<u64, RunningInfo>,
    /// key → primary id, while the primary is queued or running.
    by_key_active: HashMap<String, u64>,
    /// key → done id, the completed-work cache.
    by_key_done: HashMap<String, u64>,
    draining: bool,
    shutdown_now: bool,
    workers_alive: usize,
    /// Terminal ids in completion order, for history pruning.
    history: Vec<u64>,
    /// Per-job streamed partial results (NDJSON lines, one JSON document
    /// each) — live jobs append here as they run; `GET /jobs/{id}`
    /// streams them to followers. Keyed by primary id; cleared at each
    /// attempt start so retries never show a dead attempt's partials.
    progress: HashMap<u64, Vec<String>>,
}

struct FarmInner {
    cfg: FarmConfig,
    backend: Arc<dyn JobBackend>,
    obs: Observer,
    recorder: FlightRecorder,
    /// v2 transition journal; `None` without a configured directory.
    journal: Option<Journal>,
    state: Mutex<FarmState>,
    /// Signalled when work becomes available or the farm terminates.
    work_ready: Condvar,
    /// Signalled when the farm may have become idle/drained.
    idle: Condvar,
    /// Worker handles, shared with the supervisor for respawn.
    workers: Mutex<Vec<JoinHandle<()>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    /// Periodic metrics-history sampler; `None` when disabled.
    history: Option<lp_obs::HistorySampler>,
}

/// A running analysis farm. Cheap to clone (all clones share one farm).
#[derive(Clone)]
pub struct Farm {
    inner: Arc<FarmInner>,
}

impl Farm {
    /// Starts the worker pool and supervisor; re-adopts a persisted
    /// queue journal when `cfg.dir` holds one.
    ///
    /// # Errors
    /// Journal directory creation/parse failures.
    pub fn start(cfg: FarmConfig, backend: Arc<dyn JobBackend>, obs: Observer) -> io::Result<Farm> {
        let journal = match &cfg.dir {
            Some(dir) => Some(Journal::open(
                dir,
                JournalConfig {
                    flush_ms: cfg.journal_flush_ms,
                    compact_factor: cfg.journal_compact_factor.max(1),
                },
                obs.clone(),
            )?),
            None => None,
        };
        let workers = cfg.workers.max(1);
        let id_base = cfg.id_base;
        let recorder = FlightRecorder::new(cfg.trace_capacity, obs.clone());
        let history = (cfg.history_interval_ms > 0 && obs.is_enabled()).then(|| {
            lp_obs::HistorySampler::start(
                obs.clone(),
                lp_obs::timeseries::farm_columns(),
                cfg.history_interval_ms,
                cfg.history_capacity,
            )
        });
        let inner = Arc::new(FarmInner {
            cfg,
            backend,
            obs,
            recorder,
            journal,
            state: Mutex::new(FarmState {
                next_id: id_base + 1,
                jobs: BTreeMap::new(),
                queued: Vec::new(),
                running: HashMap::new(),
                by_key_active: HashMap::new(),
                by_key_done: HashMap::new(),
                draining: false,
                shutdown_now: false,
                workers_alive: 0,
                history: Vec::new(),
                progress: HashMap::new(),
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            supervisor: Mutex::new(None),
            history,
        });
        inner.restore_journal();
        inner.obs.gauge(names::FARM_WORKERS).set(workers as f64);
        {
            let mut handles = inner.workers.lock().expect("farm workers lock");
            for i in 0..workers {
                handles.push(FarmInner::spawn_worker(&inner, i));
            }
        }
        let sup_inner = Arc::clone(&inner);
        *inner.supervisor.lock().expect("farm supervisor lock") = Some(
            std::thread::Builder::new()
                .name("farm-supervisor".to_string())
                .spawn(move || FarmInner::supervisor_loop(&sup_inner))
                .expect("spawn farm supervisor"),
        );
        Ok(Farm { inner })
    }

    /// The backend's content key for `spec` (what dedup keys on and the
    /// cluster ring shards by), without submitting anything.
    ///
    /// # Errors
    /// A message when the spec is invalid.
    pub fn job_key(&self, spec: &JobSpec) -> Result<String, String> {
        self.inner.backend.job_key(spec)
    }

    /// Submits one job with a fresh root trace context.
    ///
    /// # Errors
    /// [`SubmitError`] — invalid spec, full queue, or draining farm.
    pub fn submit(&self, spec: JobSpec) -> Result<Submitted, SubmitError> {
        self.inner.submit(spec, None)
    }

    /// Submits one job, parenting its trace under `client` when the
    /// submitter propagated a `traceparent` header (the job's root span
    /// becomes a child of the client's span; otherwise a fresh root).
    ///
    /// # Errors
    /// [`SubmitError`] — invalid spec, full queue, or draining farm.
    pub fn submit_traced(
        &self,
        spec: JobSpec,
        client: Option<&TraceContext>,
    ) -> Result<Submitted, SubmitError> {
        self.inner.submit(spec, client)
    }

    /// Adopts jobs persisted by *another* farm's journal (failover
    /// re-adoption of a dead cluster node's queue). Jobs keep their
    /// ids, attempt counts, and trace contexts; they re-enter the
    /// shared enqueue path, so they dedup against this farm's in-flight
    /// and completed work, and they are journaled here — adopted work
    /// survives a crash of the adopter too. Capacity is not enforced
    /// (the jobs were already accepted once); ids already known here
    /// are skipped. Returns how many jobs were adopted, after a
    /// durability barrier on the local journal.
    pub fn adopt(&self, jobs: Vec<crate::journal::PersistedJob>) -> usize {
        let n = self.inner.adopt(jobs);
        if n > 0 {
            self.sync_journal();
        }
        n
    }

    /// The job's flight-recorder trace as a Chrome `trace_event` JSON
    /// document, or `None` when the id was never seen or has been
    /// evicted from the bounded ring.
    pub fn trace_document(&self, id: u64) -> Option<Value> {
        self.inner.recorder.trace_document(id)
    }

    /// Summaries of the most recently active job traces (live jobs
    /// first, then finished, newest first), at most `limit`.
    pub fn recent_traces(&self, limit: usize) -> Vec<Value> {
        self.inner.recorder.recent(limit)
    }

    /// The farm's flight recorder (trace ring) for direct inspection.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// A snapshot of one job record, if it exists (or ever existed and
    /// survived history pruning).
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.inner
            .state
            .lock()
            .expect("farm state lock")
            .jobs
            .get(&id)
            .cloned()
    }

    /// The job's streamed partial-result lines starting at index
    /// `since`, or `None` for an unknown id. Dedup followers see the
    /// primary's stream (partials are a property of the computation, not
    /// the submission). Empty for jobs whose backend never streams
    /// (pipeline mode) and for jobs not yet started.
    pub fn progress(&self, id: u64, since: usize) -> Option<Vec<String>> {
        let st = self.inner.state.lock().expect("farm state lock");
        let rec = st.jobs.get(&id)?;
        let primary = rec.dedup_of.unwrap_or(id);
        let lines = st.progress.get(&primary).map(Vec::as_slice).unwrap_or(&[]);
        Some(lines[since.min(lines.len())..].to_vec())
    }

    /// Cancels a queued or running job. Returns `false` when the id is
    /// unknown or already terminal. Cancelling a primary with followers
    /// promotes the first follower to a fresh primary — one tenant's
    /// cancel never kills another tenant's identical request.
    pub fn cancel(&self, id: u64) -> bool {
        self.inner.cancel(id)
    }

    /// Aggregate queue counts.
    pub fn queue_snapshot(&self) -> QueueSnapshot {
        self.inner.queue_snapshot()
    }

    /// The farm's observer (metrics sink).
    pub fn observer(&self) -> &Observer {
        &self.inner.obs
    }

    /// Initiates shutdown; pair with [`Farm::join`] to wait for it.
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.inner.shutdown(mode)
    }

    /// Blocks until every worker and the supervisor have exited. Call
    /// after [`Farm::shutdown`].
    pub fn join(&self) {
        let mut st = self.inner.state.lock().expect("farm state lock");
        while st.workers_alive > 0 {
            st = self.inner.idle.wait(st).expect("farm idle wait");
        }
        drop(st);
        let handles: Vec<_> = self
            .inner
            .workers
            .lock()
            .expect("farm workers lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        if let Some(sup) = self
            .inner
            .supervisor
            .lock()
            .expect("farm supervisor lock")
            .take()
        {
            let _ = sup.join();
        }
        // Fold every transition into the snapshot so external readers
        // (and the next daemon) see one self-contained document.
        if let Some(journal) = &self.inner.journal {
            journal.checkpoint();
        }
        if let Some(history) = &self.inner.history {
            history.stop();
        }
    }

    /// The metrics-history ring fed by the periodic sampler, or `None`
    /// when sampling is disabled (`history_interval_ms == 0` or a
    /// disabled observer).
    pub fn history(&self) -> Option<std::sync::Arc<lp_obs::History>> {
        self.inner
            .history
            .as_ref()
            .map(lp_obs::HistorySampler::history)
    }

    /// Durability barrier: blocks until every journal record appended so
    /// far has been fsynced. No-op without a journal directory. The HTTP
    /// layer takes this once per submission request, so a whole batch
    /// shares one group commit before the `202` goes out.
    pub fn sync_journal(&self) {
        if let Some(journal) = &self.inner.journal {
            journal.sync();
        }
    }

    /// Journal records appended but not yet fsynced (`None` without a
    /// journal directory).
    pub fn journal_lag(&self) -> Option<u64> {
        self.inner.journal.as_ref().map(Journal::lag)
    }

    /// Blocks until no job is queued or running, or `timeout` elapses.
    /// Returns `true` when idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("farm state lock");
        loop {
            if st.queued.is_empty() && st.running.is_empty() {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .inner
                .idle
                .wait_timeout(st, deadline - now)
                .expect("farm idle wait");
            st = guard;
        }
    }
}

impl FarmInner {
    // ---- submission -----------------------------------------------------

    fn submit(
        self: &Arc<Self>,
        spec: JobSpec,
        client: Option<&TraceContext>,
    ) -> Result<Submitted, SubmitError> {
        // Key computation happens outside the state lock: for the real
        // backend it builds the program, which is far too slow to
        // serialize against the queue.
        let key = self.backend.job_key(&spec).map_err(SubmitError::BadSpec)?;
        // The job's root context: a child of the client's propagated
        // span, or a fresh root for untraced submissions.
        let ctx = client.map_or_else(TraceContext::new_root, TraceContext::child);
        let mut st = self.state.lock().expect("farm state lock");
        if st.draining || st.shutdown_now {
            return Err(SubmitError::Draining);
        }
        let outcome = self.enqueue_locked(&mut st, spec, key, ctx, None, 0, now_us(), true)?;
        self.obs.counter(names::FARM_SUBMITTED).inc();
        if !matches!(outcome, Submitted::Queued { .. }) {
            self.obs.counter(names::FARM_DEDUP_HITS).inc();
        }
        self.refresh_gauges(&st);
        // Cached submissions are terminal on arrival and never enter the
        // durable set; queued primaries and followers both do.
        match outcome {
            Submitted::Queued { id } | Submitted::Deduped { id, .. } => {
                self.journal_enqueue(&st, id);
            }
            Submitted::Cached { .. } => {}
        }
        if matches!(outcome, Submitted::Queued { .. }) {
            self.work_ready.notify_one();
        }
        Ok(outcome)
    }

    /// Core accept path, shared by live submissions and journal restore.
    /// `id_override` preserves ids across restarts; restore passes
    /// `enforce_capacity = false` (those jobs were already accepted once
    /// and must not be dropped on re-adoption).
    #[allow(clippy::too_many_arguments)]
    fn enqueue_locked(
        &self,
        st: &mut FarmState,
        spec: JobSpec,
        key: String,
        ctx: TraceContext,
        id_override: Option<u64>,
        attempts: u32,
        submitted_us: u64,
        enforce_capacity: bool,
    ) -> Result<Submitted, SubmitError> {
        // Completed-work cache: answer immediately.
        if let Some(&source) = st.by_key_done.get(&key) {
            let result = st.jobs.get(&source).and_then(|r| r.result.clone());
            let source_trace = st.jobs.get(&source).map(|r| r.trace.trace_id);
            let id = id_override.unwrap_or_else(|| Self::take_id(st));
            let now = now_us();
            let program = spec.program.clone();
            let rec = JobRecord {
                id,
                spec,
                key,
                state: JobState::Done,
                attempts: 0,
                error: None,
                result,
                dedup_of: Some(source),
                subscribers: Vec::new(),
                submitted_us,
                started_us: now,
                finished_us: now,
                trace: ctx,
            };
            st.jobs.insert(id, rec);
            st.history.push(id);
            self.prune_history(st);
            self.obs.counter(names::FARM_DONE).inc();
            self.recorder.begin(
                id,
                ctx,
                &program,
                source_trace.map(|t| (source, t)),
                "cache_hit",
                format!("served from completed job {source}"),
            );
            self.recorder.finish(id, JobState::Done.as_str());
            return Ok(Submitted::Cached { id, source });
        }
        // In-flight dedup: follow the primary.
        if let Some(&primary) = st.by_key_active.get(&key) {
            let primary_trace = st.jobs.get(&primary).map(|r| r.trace.trace_id);
            let id = id_override.unwrap_or_else(|| Self::take_id(st));
            let program = spec.program.clone();
            let rec = JobRecord {
                id,
                spec,
                key,
                state: JobState::Queued,
                attempts: 0,
                error: None,
                result: None,
                dedup_of: Some(primary),
                subscribers: Vec::new(),
                submitted_us,
                started_us: 0,
                finished_us: 0,
                trace: ctx,
            };
            st.jobs.insert(id, rec);
            if let Some(p) = st.jobs.get_mut(&primary) {
                p.subscribers.push(id);
            }
            self.recorder.begin(
                id,
                ctx,
                &program,
                primary_trace.map(|t| (primary, t)),
                "dedup_follow",
                format!("following in-flight primary {primary}"),
            );
            return Ok(Submitted::Deduped { id, primary });
        }
        // Fresh primary: bounded by queue capacity.
        if enforce_capacity && st.queued.len() >= self.cfg.queue_capacity {
            self.obs.counter(names::FARM_REJECTED).inc();
            return Err(SubmitError::QueueFull {
                retry_after_ms: self.cfg.retry_after_ms,
            });
        }
        let id = id_override.unwrap_or_else(|| Self::take_id(st));
        let priority = spec.priority;
        let program = spec.program.clone();
        let rec = JobRecord {
            id,
            spec,
            key: key.clone(),
            state: JobState::Queued,
            attempts,
            error: None,
            result: None,
            dedup_of: None,
            subscribers: Vec::new(),
            submitted_us,
            started_us: 0,
            finished_us: 0,
            trace: ctx,
        };
        st.jobs.insert(id, rec);
        st.by_key_active.insert(key, id);
        st.queued.push(QueuedEntry {
            id,
            priority,
            not_before_us: 0,
        });
        self.recorder
            .begin(id, ctx, &program, None, "enqueue", String::new());
        Ok(Submitted::Queued { id })
    }

    fn take_id(st: &mut FarmState) -> u64 {
        let id = st.next_id;
        st.next_id += 1;
        id
    }

    // ---- worker side ----------------------------------------------------

    fn spawn_worker(inner: &Arc<FarmInner>, index: usize) -> JoinHandle<()> {
        {
            let mut st = inner.state.lock().expect("farm state lock");
            st.workers_alive += 1;
        }
        let me = Arc::clone(inner);
        std::thread::Builder::new()
            .name(format!("farm-worker-{index}"))
            .spawn(move || {
                me.worker_loop();
                let mut st = me.state.lock().expect("farm state lock");
                st.workers_alive -= 1;
                drop(st);
                me.idle.notify_all();
            })
            .expect("spawn farm worker")
    }

    fn worker_loop(self: &Arc<Self>) {
        while let Some((id, spec, cancel, ctx)) = self.pop_ready() {
            // Attach the job's root context for the attempt: the
            // farm.execute span (and, through the backend, every
            // pipeline/store span) parents under it.
            let trace_guard = ctx.attach();
            let mut span = self.obs.span(names::SPAN_FARM_EXECUTE, names::CAT_FARM);
            span.arg("job", id);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.backend
                    .execute_streaming(&spec, &cancel, &mut |line| self.push_progress(id, line))
            }));
            drop(span);
            drop(trace_guard);
            self.harvest_spans(id, ctx.trace_id);
            match outcome {
                Ok(result) => self.finish_attempt(id, result),
                Err(panic) => {
                    let msg = panic_message(panic.as_ref());
                    self.finish_attempt(id, Err(format!("worker panicked: {msg}")));
                    // Panic isolation: this worker retires (its stack may
                    // be poisoned mid-backend); the supervisor respawns a
                    // replacement thread.
                    return;
                }
            }
        }
    }

    /// Appends one streamed partial-result line to the job's progress
    /// buffer (a brief state-lock hold — the backend calls this from the
    /// middle of a simulation, so it must never block on queue work).
    fn push_progress(&self, id: u64, line: String) {
        let mut st = self.state.lock().expect("farm state lock");
        st.progress.entry(id).or_default().push(line);
    }

    /// Moves the attempt's spans out of the shared sink into the flight
    /// recorder, deriving store hit/miss lifecycle events from the store
    /// spans seen. Only loads that actually served payload count as
    /// hits — the store records a `bytes` arg on success and none on an
    /// absent or corrupt artifact; a save means the artifact had to be
    /// computed and written.
    fn harvest_spans(&self, id: u64, trace_id: lp_obs::TraceId) {
        let spans = self.obs.take_trace_events(trace_id);
        if spans.is_empty() {
            return;
        }
        let loads = spans
            .iter()
            .filter(|e| {
                e.name == names::SPAN_STORE_LOAD && e.args.iter().any(|(k, _)| k == "bytes")
            })
            .count();
        let saves = spans
            .iter()
            .filter(|e| e.name == names::SPAN_STORE_SAVE)
            .count();
        if loads > 0 {
            self.recorder
                .event(id, "store_hit", format!("{loads} artifact load(s)"));
        }
        if saves > 0 {
            self.recorder
                .event(id, "store_miss", format!("{saves} artifact save(s)"));
        }
        self.recorder.attach_spans(id, spans);
    }

    /// Blocks until an executable entry is ready (highest priority,
    /// FIFO within a priority, honoring retry `not_before`), the farm
    /// drains dry, or shutdown-now is requested.
    fn pop_ready(&self) -> Option<(u64, JobSpec, CancelToken, TraceContext)> {
        let mut st = self.state.lock().expect("farm state lock");
        loop {
            if st.shutdown_now || (st.draining && st.queued.is_empty()) {
                return None;
            }
            let now = now_us();
            let mut best: Option<usize> = None;
            let mut next_wake: Option<u64> = None;
            for (i, e) in st.queued.iter().enumerate() {
                if e.not_before_us <= now {
                    let better = match best {
                        None => true,
                        Some(j) => {
                            let b = &st.queued[j];
                            (e.priority, std::cmp::Reverse(e.id))
                                > (b.priority, std::cmp::Reverse(b.id))
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                } else {
                    next_wake = Some(next_wake.map_or(e.not_before_us, |w| w.min(e.not_before_us)));
                }
            }
            if let Some(i) = best {
                let entry = st.queued.remove(i);
                let id = entry.id;
                let spec;
                let timeout_ms;
                let ctx;
                let attempt;
                {
                    let rec = st.jobs.get_mut(&id).expect("queued job has a record");
                    rec.state = JobState::Running;
                    rec.attempts += 1;
                    rec.started_us = now;
                    spec = rec.spec.clone();
                    ctx = rec.trace;
                    attempt = rec.attempts;
                    timeout_ms = if rec.spec.timeout_ms > 0 {
                        rec.spec.timeout_ms
                    } else {
                        self.cfg.default_timeout_ms
                    };
                    self.obs
                        .histogram(names::FARM_QUEUE_WAIT_US)
                        .record(now.saturating_sub(rec.submitted_us));
                }
                // A fresh attempt streams from scratch; stale partials
                // from a failed or timed-out attempt would mislead
                // followers.
                st.progress.remove(&id);
                self.recorder
                    .event(id, "attempt_start", format!("attempt {attempt}"));
                let cancel = CancelToken::new();
                st.running.insert(
                    id,
                    RunningInfo {
                        cancel: cancel.clone(),
                        deadline_us: (timeout_ms > 0).then(|| now + timeout_ms * 1_000),
                        timed_out: false,
                        user_cancelled: false,
                        requeue: false,
                    },
                );
                self.obs.counter(names::FARM_COMPUTES).inc();
                self.refresh_gauges(&st);
                if let Some(journal) = &self.journal {
                    journal.start(id);
                }
                return Some((id, spec, cancel, ctx));
            }
            match next_wake {
                // Only backoff-delayed entries: sleep until the earliest
                // becomes ready (or new work arrives).
                Some(wake) => {
                    let wait = Duration::from_micros(wake.saturating_sub(now).max(1_000));
                    let (guard, _) = self
                        .work_ready
                        .wait_timeout(st, wait)
                        .expect("farm work wait");
                    st = guard;
                }
                None => {
                    st = self.work_ready.wait(st).expect("farm work wait");
                }
            }
        }
    }

    /// Applies the outcome of one execution attempt.
    fn finish_attempt(&self, id: u64, outcome: Result<String, String>) {
        let mut st = self.state.lock().expect("farm state lock");
        let Some(info) = st.running.remove(&id) else {
            return; // cancelled-and-removed race; nothing to record
        };
        let now = now_us();
        match outcome {
            Ok(result) => {
                self.complete_locked(&mut st, id, JobState::Done, None, Some(result), now);
            }
            Err(err) => {
                if info.requeue {
                    // Shutdown-now interrupted this attempt: put the job
                    // back (attempt not consumed) so a restarted farm
                    // resumes it from the journal.
                    if let Some(rec) = st.jobs.get_mut(&id) {
                        rec.state = JobState::Queued;
                        rec.attempts = rec.attempts.saturating_sub(1);
                        rec.started_us = 0;
                        let priority = rec.spec.priority;
                        st.queued.push(QueuedEntry {
                            id,
                            priority,
                            not_before_us: 0,
                        });
                        self.recorder.event(
                            id,
                            "requeue",
                            "attempt interrupted by shutdown".to_string(),
                        );
                        if let Some(journal) = &self.journal {
                            journal.requeue(id);
                        }
                    }
                } else if info.user_cancelled {
                    self.complete_locked(&mut st, id, JobState::Cancelled, Some(err), None, now);
                } else {
                    let err = if info.timed_out {
                        format!("deadline exceeded: {err}")
                    } else {
                        err
                    };
                    let (attempts, priority) = match st.jobs.get(&id) {
                        Some(r) => (r.attempts, r.spec.priority),
                        None => (u32::MAX, 0),
                    };
                    if attempts < self.cfg.max_attempts {
                        // Retry with exponential backoff + jitter.
                        let backoff = self
                            .cfg
                            .backoff_base_ms
                            .saturating_mul(1 << (attempts.saturating_sub(1)).min(16))
                            .min(self.cfg.backoff_cap_ms);
                        let jitter = splitmix(id ^ u64::from(attempts) ^ now) % (backoff / 2 + 1);
                        self.recorder.event(
                            id,
                            "retry",
                            format!("attempt {attempts} failed ({err}); backoff {backoff} ms"),
                        );
                        if let Some(rec) = st.jobs.get_mut(&id) {
                            rec.state = JobState::Queued;
                            rec.error = Some(err);
                        }
                        st.queued.push(QueuedEntry {
                            id,
                            priority,
                            not_before_us: now + (backoff + jitter) * 1_000,
                        });
                        self.obs.counter(names::FARM_RETRY).inc();
                    } else {
                        self.complete_locked(&mut st, id, JobState::Failed, Some(err), None, now);
                    }
                }
            }
        }
        self.refresh_gauges(&st);
        drop(st);
        self.work_ready.notify_all();
        self.idle.notify_all();
    }

    /// Terminal transition for a primary; mirrors onto subscribers.
    fn complete_locked(
        &self,
        st: &mut FarmState,
        id: u64,
        state: JobState,
        error: Option<String>,
        result: Option<String>,
        now: u64,
    ) {
        let (key, subscribers) = match st.jobs.get_mut(&id) {
            Some(rec) => {
                rec.state = state;
                rec.error = error.clone();
                rec.result = result.clone();
                rec.finished_us = now;
                (rec.key.clone(), std::mem::take(&mut rec.subscribers))
            }
            None => return,
        };
        if st.by_key_active.get(&key) == Some(&id) {
            st.by_key_active.remove(&key);
        }
        if state == JobState::Done {
            st.by_key_done.insert(key.clone(), id);
        }
        st.history.push(id);
        self.count_terminal(state);
        self.recorder.finish(id, state.as_str());
        if let Some(journal) = &self.journal {
            journal.terminal(id);
        }
        if let Some(rec) = st.jobs.get(&id) {
            self.obs
                .histogram(names::FARM_JOB_LATENCY_US)
                .record(now.saturating_sub(rec.submitted_us));
        }
        match state {
            JobState::Cancelled => {
                // The compute was cancelled, but followers still want the
                // result: promote the first follower to a fresh primary.
                self.promote_followers(st, &key, subscribers);
            }
            _ => {
                // Done and Failed both propagate: followers asked for the
                // same compute, so they share its outcome.
                for &sub in &subscribers {
                    if let Some(rec) = st.jobs.get_mut(&sub) {
                        rec.state = state;
                        rec.error = error.clone();
                        rec.result = result.clone();
                        rec.finished_us = now;
                    }
                    st.history.push(sub);
                    self.count_terminal(state);
                    self.recorder.event(
                        sub,
                        "mirrored",
                        format!("terminal state mirrored from primary {id}"),
                    );
                    self.recorder.finish(sub, state.as_str());
                    if let Some(journal) = &self.journal {
                        journal.terminal(sub);
                    }
                }
                // Put the list back on the primary: `subscribers` on the
                // wire reports how many requests shared this compute.
                if let Some(rec) = st.jobs.get_mut(&id) {
                    rec.subscribers = subscribers;
                }
            }
        }
        self.prune_history(st);
    }

    /// After a primary was cancelled, its first live follower becomes a
    /// new primary (re-queued), inheriting the remaining followers.
    fn promote_followers(&self, st: &mut FarmState, key: &str, subscribers: Vec<u64>) {
        let mut iter = subscribers.into_iter();
        let Some(new_primary) = iter.next() else {
            return;
        };
        let rest: Vec<u64> = iter.collect();
        if let Some(rec) = st.jobs.get_mut(&new_primary) {
            rec.dedup_of = None;
            rec.subscribers = rest.clone();
            rec.state = JobState::Queued;
            let priority = rec.spec.priority;
            st.by_key_active.insert(key.to_string(), new_primary);
            st.queued.push(QueuedEntry {
                id: new_primary,
                priority,
                not_before_us: 0,
            });
            self.recorder.event(
                new_primary,
                "promoted",
                "primary cancelled; promoted from follower to primary".to_string(),
            );
        }
        for sub in rest {
            if let Some(rec) = st.jobs.get_mut(&sub) {
                rec.dedup_of = Some(new_primary);
            }
        }
    }

    fn count_terminal(&self, state: JobState) {
        match state {
            JobState::Done => self.obs.counter(names::FARM_DONE).inc(),
            JobState::Failed => self.obs.counter(names::FARM_FAILED).inc(),
            JobState::Cancelled => self.obs.counter(names::FARM_CANCELLED).inc(),
            _ => {}
        }
    }

    // ---- cancellation ---------------------------------------------------

    fn cancel(&self, id: u64) -> bool {
        let mut st = self.state.lock().expect("farm state lock");
        let Some(rec) = st.jobs.get(&id) else {
            return false;
        };
        match rec.state {
            JobState::Queued => {
                let key = rec.key.clone();
                let dedup_of = rec.dedup_of;
                let now = now_us();
                if let Some(primary) = dedup_of {
                    // A follower: detach from the primary.
                    if let Some(p) = st.jobs.get_mut(&primary) {
                        p.subscribers.retain(|&s| s != id);
                    }
                    if let Some(rec) = st.jobs.get_mut(&id) {
                        rec.state = JobState::Cancelled;
                        rec.finished_us = now;
                        rec.error = Some("cancelled by request".to_string());
                    }
                    st.history.push(id);
                    self.count_terminal(JobState::Cancelled);
                    self.recorder
                        .event(id, "cancel", "cancelled while following".to_string());
                    self.recorder.finish(id, JobState::Cancelled.as_str());
                    if let Some(journal) = &self.journal {
                        journal.terminal(id);
                    }
                } else {
                    // A queued primary: pull it off the queue and promote
                    // any followers.
                    st.queued.retain(|e| e.id != id);
                    let subscribers = st
                        .jobs
                        .get_mut(&id)
                        .map(|r| std::mem::take(&mut r.subscribers))
                        .unwrap_or_default();
                    if st.by_key_active.get(&key) == Some(&id) {
                        st.by_key_active.remove(&key);
                    }
                    if let Some(rec) = st.jobs.get_mut(&id) {
                        rec.state = JobState::Cancelled;
                        rec.finished_us = now;
                        rec.error = Some("cancelled by request".to_string());
                    }
                    st.history.push(id);
                    self.count_terminal(JobState::Cancelled);
                    self.recorder
                        .event(id, "cancel", "cancelled while queued".to_string());
                    self.recorder.finish(id, JobState::Cancelled.as_str());
                    if let Some(journal) = &self.journal {
                        journal.terminal(id);
                    }
                    // The promoted follower (if any) is already in the
                    // durable set as a plain job; no record needed.
                    self.promote_followers(&mut st, &key, subscribers);
                }
                self.refresh_gauges(&st);
                drop(st);
                self.idle.notify_all();
                true
            }
            JobState::Running => {
                if let Some(info) = st.running.get_mut(&id) {
                    info.user_cancelled = true;
                    info.cancel.cancel();
                    self.recorder
                        .event(id, "cancel", "cancelled while running".to_string());
                }
                true
            }
            _ => false,
        }
    }

    // ---- supervision ----------------------------------------------------

    fn supervisor_loop(inner: &Arc<FarmInner>) {
        let mut next_worker_index = inner.cfg.workers.max(1);
        loop {
            {
                let mut st = inner.state.lock().expect("farm state lock");
                // Per-job deadlines: trip the token; the attempt comes
                // back as a retryable timeout failure.
                let now = now_us();
                for (&id, info) in &mut st.running {
                    if let Some(deadline) = info.deadline_us {
                        if now > deadline && !info.timed_out {
                            info.timed_out = true;
                            info.cancel.cancel();
                            inner.obs.counter(names::FARM_TIMEOUT).inc();
                            inner.recorder.event(
                                id,
                                "deadline",
                                "per-job deadline exceeded; cancelling attempt".to_string(),
                            );
                        }
                    }
                }
                let terminating = st.shutdown_now || st.draining;
                drop(st);
                // Respawn workers that retired after a backend panic.
                let mut handles = inner.workers.lock().expect("farm workers lock");
                let mut alive = Vec::with_capacity(handles.len());
                for h in handles.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                        if !terminating {
                            inner.obs.counter(names::FARM_WORKER_RESPAWN).inc();
                            alive.push(FarmInner::spawn_worker(inner, next_worker_index));
                            next_worker_index += 1;
                        }
                    } else {
                        alive.push(h);
                    }
                }
                let worker_count = alive.len();
                *handles = alive;
                drop(handles);
                inner
                    .obs
                    .gauge(names::FARM_WORKERS)
                    .set(worker_count as f64);
                if terminating && worker_count == 0 {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn shutdown(&self, mode: ShutdownMode) {
        let mut st = self.state.lock().expect("farm state lock");
        st.draining = true;
        if mode == ShutdownMode::Now {
            st.shutdown_now = true;
            for info in st.running.values_mut() {
                info.requeue = true;
                info.cancel.cancel();
            }
        }
        drop(st);
        self.work_ready.notify_all();
        self.idle.notify_all();
    }

    // ---- introspection --------------------------------------------------

    fn queue_snapshot(&self) -> QueueSnapshot {
        let st = self.state.lock().expect("farm state lock");
        let mut snap = QueueSnapshot {
            queued: st.queued.len(),
            running: st.running.len(),
            workers: st.workers_alive,
            capacity: self.cfg.queue_capacity,
            draining: st.draining,
            ..QueueSnapshot::default()
        };
        for rec in st.jobs.values() {
            match rec.state {
                JobState::Done => snap.done += 1,
                JobState::Failed => snap.failed += 1,
                JobState::Cancelled => snap.cancelled += 1,
                _ => {}
            }
        }
        snap
    }

    fn refresh_gauges(&self, st: &FarmState) {
        self.obs
            .gauge(names::FARM_QUEUE_DEPTH)
            .set(st.queued.len() as f64);
        self.obs
            .gauge(names::FARM_RUNNING)
            .set(st.running.len() as f64);
    }

    fn prune_history(&self, st: &mut FarmState) {
        while st.history.len() > self.cfg.history_limit {
            let oldest = st.history.remove(0);
            if let Some(rec) = st.jobs.get(&oldest) {
                if rec.state.is_terminal() {
                    if st.by_key_done.get(&rec.key) == Some(&oldest) {
                        st.by_key_done.remove(&rec.key);
                    }
                    st.jobs.remove(&oldest);
                    st.progress.remove(&oldest);
                }
            }
        }
    }

    // ---- durability -----------------------------------------------------

    /// Appends the job's `enqueue` record to the transition journal.
    /// Queued jobs persist as-is; running jobs persist as queued (an
    /// interrupted attempt re-runs). Dedup followers persist as plain
    /// jobs — on restore they re-enter the enqueue path and regroup
    /// under whichever copy lands first.
    fn journal_enqueue(&self, st: &FarmState, id: u64) {
        let (Some(journal), Some(rec)) = (&self.journal, st.jobs.get(&id)) else {
            return;
        };
        journal.enqueue(PersistedJob {
            id: rec.id,
            key: rec.key.clone(),
            attempts: rec.attempts,
            submitted_us: rec.submitted_us,
            // The root context persists as its wire encoding so a
            // restarted farm resumes the job under the SAME trace id
            // (cross-restart trace continuity).
            traceparent: rec.trace.to_traceparent(),
            spec: rec.spec.clone(),
        });
    }

    /// Re-adopts the durable set replayed by the journal at open.
    fn restore_journal(&self) {
        let Some(journal) = &self.journal else { return };
        let view = journal.view();
        let mut st = self.state.lock().expect("farm state lock");
        st.next_id = st.next_id.max(view.next_id);
        for job in view.jobs {
            // Resume under the persisted trace id when present (malformed
            // or missing → a fresh root; never an error).
            let ctx = TraceContext::parse_traceparent(&job.traceparent)
                .unwrap_or_else(TraceContext::new_root);
            st.next_id = st.next_id.max(job.id + 1);
            // Restored jobs trust the journal's key (no backend call) and
            // re-dedup naturally through the shared enqueue path.
            let _ = self.enqueue_locked(
                &mut st,
                job.spec,
                job.key,
                ctx,
                Some(job.id),
                job.attempts,
                job.submitted_us,
                false,
            );
        }
        self.refresh_gauges(&st);
    }

    /// Foreign-journal adoption (see [`Farm::adopt`]). Unlike
    /// `restore_journal`, `next_id` is *not* advanced past adopted ids:
    /// they come from the dead node's disjoint id range, and walking
    /// into it would defeat the per-node ranges.
    fn adopt(&self, jobs: Vec<PersistedJob>) -> usize {
        let mut adopted = 0;
        let mut queued_any = false;
        let mut st = self.state.lock().expect("farm state lock");
        if st.draining || st.shutdown_now {
            return 0;
        }
        for job in jobs {
            if st.jobs.contains_key(&job.id) {
                continue; // already known (re-delivered adoption)
            }
            let ctx = TraceContext::parse_traceparent(&job.traceparent)
                .unwrap_or_else(TraceContext::new_root);
            let outcome = self.enqueue_locked(
                &mut st,
                job.spec,
                job.key,
                ctx,
                Some(job.id),
                job.attempts,
                job.submitted_us,
                false,
            );
            let Ok(outcome) = outcome else { continue };
            adopted += 1;
            self.recorder.event(
                job.id,
                "adopted",
                "re-adopted from a dead peer's journal".to_string(),
            );
            match outcome {
                Submitted::Queued { id } | Submitted::Deduped { id, .. } => {
                    self.journal_enqueue(&st, id);
                }
                Submitted::Cached { .. } => {}
            }
            if matches!(outcome, Submitted::Queued { .. }) {
                queued_any = true;
            }
        }
        self.refresh_gauges(&st);
        drop(st);
        if queued_any {
            self.work_ready.notify_all();
        }
        adopted
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// SplitMix64 — deterministic jitter without an RNG dependency.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}
