//! The farm's HTTP front door.
//!
//! Served on the shared multiplexed core ([`lp_obs::httpd`]): HTTP/1.1
//! keep-alive connections with pipelined framing, and *concurrent*
//! request dispatch on a bounded handler pool — a submission burst from
//! four tenants no longer serializes behind the accept thread, and a
//! batch `POST /jobs` (NDJSON, one spec per line → one response line per
//! job) lands a whole burst in one round trip. Bodies and multi-job
//! responses are line-delimited JSON (one object per line), so clients
//! stream submissions without framing beyond newlines.
//!
//! | Endpoint                 | Behavior                                     |
//! |--------------------------|----------------------------------------------|
//! | `POST /jobs`             | submit; NDJSON in → NDJSON out, one line per job; `503` + `Retry-After` when the queue is full; a `traceparent` header parents every submitted job's trace under the client's span |
//! | `GET /jobs/{id}`         | NDJSON: streamed partial results (`?since=N` skips already-seen lines), then the full job record (includes `trace_id`) as the final line |
//! | `GET /jobs/{id}/trace`   | the job's flight-recorder trace as Chrome `trace_event` JSON (Perfetto-loadable) |
//! | `GET /trace/recent`      | NDJSON trace summaries, newest first (`?limit=N`, default 32) |
//! | `POST /jobs/{id}/cancel` | cancel queued/running job                    |
//! | `GET /queue`             | aggregate queue snapshot                     |
//! | `GET /metrics`           | Prometheus text (farm.* and pipeline)        |
//! | `GET /metrics.json`      | the full metrics snapshot as JSON (what `/cluster/metrics` federates) |
//! | `GET /metrics/history`   | NDJSON time-series samples (`?since=SEQ` resumes incrementally); `404` when sampling is disabled |
//! | `GET /healthz`           | liveness JSON (includes flight-recorder occupancy) |
//! | `POST /shutdown`         | `?mode=drain` (default) or `?mode=now`       |

use crate::farm::{Farm, ShutdownMode, SubmitError, Submitted};
use crate::job::JobSpec;
use lp_farm_proto::{FORWARDED_HEADER, PROTO_HEADER, PROTO_VERSION};
use lp_obs::http::{self, Request, Response};
use lp_obs::httpd::{Handler, HttpServer, ServerConfig};
use lp_obs::json::Value;
use lp_obs::names;
use lp_obs::TraceContext;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};

struct ServerShared {
    shutdown: Mutex<Option<ShutdownMode>>,
    shutdown_cv: Condvar,
}

/// Extra-route hook: tried before the built-in routes; `None` falls
/// through.
pub type RouteHook = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;
/// Extra `/healthz` top-level fields.
pub type HealthzHook = Arc<dyn Fn() -> Vec<(String, Value)> + Send + Sync>;
/// Submission-forwarding hook: given a parsed spec and the client's
/// trace context, returns `Some(outcome line)` when another node handled
/// the submission (consistent-hash owner), `None` to accept locally.
pub type ForwardHook = Arc<dyn Fn(&JobSpec, Option<&TraceContext>) -> Option<Value> + Send + Sync>;

/// Pluggable server extensions. The cluster layer (`lp-cluster`, which
/// depends on this crate) hangs its `/cluster/*` routes, healthz
/// fields, and submission forwarding off these hooks — the farm server
/// itself stays cluster-agnostic.
#[derive(Clone, Default)]
pub struct ServerExtensions {
    /// Extra routes, tried before the built-ins.
    pub route: Option<RouteHook>,
    /// Extra `/healthz` fields.
    pub healthz: Option<HealthzHook>,
    /// Submission forwarding (skipped for already-forwarded requests).
    pub forward: Option<ForwardHook>,
}

/// The farm's HTTP front: a multiplexed [`HttpServer`] dispatching
/// concurrently into a shared [`Farm`].
pub struct FarmServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    server: Option<HttpServer>,
}

impl FarmServer {
    /// Binds `addr` (port `0` picks an ephemeral port) and starts
    /// serving requests against `farm`.
    ///
    /// # Errors
    /// Bind failures.
    pub fn start(addr: impl ToSocketAddrs, farm: Farm) -> io::Result<FarmServer> {
        FarmServer::start_with(addr, farm, ServerExtensions::default())
    }

    /// [`FarmServer::start`] with cluster/extension hooks installed.
    ///
    /// Every response carries the wire-protocol version header
    /// (`x-lp-proto`); requests advertising an *incompatible* version
    /// are rejected with `426 Upgrade Required` (absent means a legacy
    /// client and is accepted).
    ///
    /// # Errors
    /// Bind failures.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        farm: Farm,
        ext: ServerExtensions,
    ) -> io::Result<FarmServer> {
        let shared = Arc::new(ServerShared {
            shutdown: Mutex::new(None),
            shutdown_cv: Condvar::new(),
        });
        let obs = farm.observer().clone();
        let handler_farm = farm.clone();
        let handler_shared = Arc::clone(&shared);
        let handler: Handler = Arc::new(move |req: &Request| {
            // A propagated traceparent parents the request span (and any
            // jobs this request submits) under the client's trace.
            let trace_guard = req.trace.as_ref().map(|t| t.attach());
            let mut span = handler_farm
                .observer()
                .span(names::SPAN_FARM_REQUEST, names::CAT_FARM);
            span.arg("path", req.path.as_str());
            let response = if !lp_farm_proto::version_compatible(req.header(PROTO_HEADER)) {
                Response::new(
                    "426 Upgrade Required",
                    "application/json",
                    format!(
                        "{{\"error\":\"incompatible protocol version (server speaks {PROTO_VERSION})\"}}"
                    ),
                )
            } else {
                match ext.route.as_ref().and_then(|hook| hook(req)) {
                    Some(resp) => resp,
                    None => route(req, &handler_farm, &handler_shared, &ext),
                }
            };
            drop(span);
            drop(trace_guard);
            response.with_header(PROTO_HEADER, PROTO_VERSION)
        });
        let server = HttpServer::start(
            addr,
            ServerConfig {
                max_body: http::DEFAULT_MAX_BODY_BYTES,
                thread_name: "farm-server".to_string(),
                ..ServerConfig::default()
            },
            handler,
            obs,
        )?;
        Ok(FarmServer {
            addr: server.local_addr(),
            shared,
            server: Some(server),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `POST /shutdown` request arrives, returning the
    /// requested mode. The daemon then typically calls
    /// [`Farm::shutdown`], [`Farm::join`], and [`FarmServer::stop`].
    pub fn wait_shutdown(&self) -> ShutdownMode {
        let mut guard = self.shared.shutdown.lock().expect("farm server lock");
        loop {
            if let Some(mode) = *guard {
                return mode;
            }
            guard = self
                .shared
                .shutdown_cv
                .wait(guard)
                .expect("farm server wait");
        }
    }

    /// Stops the server and joins its threads.
    pub fn stop(mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
    }
}

impl Drop for FarmServer {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
    }
}

fn route(req: &Request, farm: &Farm, shared: &ServerShared, ext: &ServerExtensions) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => submit_batch(req, farm, ext),
        ("GET", "/queue") => Response::json_ok(farm.queue_snapshot().to_value().to_string()),
        ("GET", "/metrics") => Response::text_ok(farm.observer().prometheus_text()),
        ("GET", "/metrics.json") => Response::json_ok(farm.observer().metrics_json()),
        ("GET", "/metrics/history") => match farm.history() {
            None => Response::not_found(
                "metrics history sampling is disabled (history_interval_ms = 0)",
            ),
            Some(history) => {
                let since = req
                    .query
                    .as_deref()
                    .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("since=")))
                    .and_then(|n| n.parse::<u64>().ok())
                    .unwrap_or(0);
                let samples = history.since(since);
                Response::new(
                    "200 OK",
                    "application/x-ndjson",
                    history.to_ndjson(&samples),
                )
            }
        },
        ("GET", "/healthz") => {
            let snap = farm.queue_snapshot();
            let (live, finished, capacity, evicted) = farm.flight_recorder().occupancy();
            let mut members = vec![
                ("status".to_string(), Value::Str("ok".to_string())),
                ("draining".to_string(), Value::Bool(snap.draining)),
                ("workers".to_string(), Value::Int(snap.workers as i128)),
                (
                    "flight_recorder".to_string(),
                    Value::Obj(vec![
                        ("live".to_string(), Value::Int(live as i128)),
                        ("finished".to_string(), Value::Int(finished as i128)),
                        ("capacity".to_string(), Value::Int(capacity as i128)),
                        ("evicted".to_string(), Value::Int(evicted as i128)),
                    ]),
                ),
            ];
            if let Some(lag) = farm.journal_lag() {
                members.push(("journal_lag".to_string(), Value::Int(lag as i128)));
            }
            if let Some(hook) = &ext.healthz {
                members.extend(hook());
            }
            Response::json_ok(Value::Obj(members).to_string())
        }
        ("GET", "/trace/recent") => {
            let limit = req
                .query
                .as_deref()
                .and_then(|q| q.strip_prefix("limit="))
                .and_then(|n| n.parse::<usize>().ok())
                .unwrap_or(32);
            let mut body = String::new();
            for line in farm.recent_traces(limit) {
                body.push_str(&line.to_string());
                body.push('\n');
            }
            Response::new("200 OK", "application/x-ndjson", body)
        }
        ("POST", "/shutdown") => {
            let mode = match req.query.as_deref() {
                Some("mode=now") => ShutdownMode::Now,
                Some("mode=drain") | None => ShutdownMode::Drain,
                Some(other) => {
                    return Response::bad_request(&format!("unknown shutdown query '{other}'"))
                }
            };
            let mut guard = shared.shutdown.lock().expect("farm server lock");
            *guard = Some(mode);
            shared.shutdown_cv.notify_all();
            Response::json_ok(format!(
                "{{\"shutting_down\":true,\"mode\":\"{}\"}}",
                match mode {
                    ShutdownMode::Drain => "drain",
                    ShutdownMode::Now => "now",
                }
            ))
        }
        ("GET", path) => {
            if let Some(id) = parse_trace_path(path) {
                return match farm.trace_document(id) {
                    Some(doc) => Response::json_ok(doc.to_string()),
                    None => Response::not_found(&format!(
                        "no trace for job {id} (never seen, or evicted from the flight recorder)"
                    )),
                };
            }
            match parse_job_path(path) {
                Some(id) => match farm.job(id) {
                    Some(rec) => {
                        // NDJSON: any streamed partial-result lines the
                        // job has emitted (from `?since=N`, so pollers
                        // only pay for what is new), then the job record
                        // as the final line. Non-streaming jobs degrade
                        // to a one-line body — the record — so every
                        // consumer parses the LAST line for the record.
                        let since = req
                            .query
                            .as_deref()
                            .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("since=")))
                            .and_then(|n| n.parse::<usize>().ok())
                            .unwrap_or(0);
                        let mut body = String::new();
                        for line in farm.progress(id, since).unwrap_or_default() {
                            body.push_str(&line);
                            body.push('\n');
                        }
                        body.push_str(&rec.to_value().to_string());
                        body.push('\n');
                        Response::new("200 OK", "application/x-ndjson", body)
                    }
                    None => Response::not_found(&format!("no job {id}")),
                },
                None => Response::not_found(&format!("no route for GET {path}")),
            }
        }
        ("POST", path) => match parse_cancel_path(path) {
            Some(id) => {
                let cancelled = farm.cancel(id);
                let state = farm
                    .job(id)
                    .map(|r| r.state.as_str().to_string())
                    .unwrap_or_else(|| "unknown".to_string());
                Response::json_ok(
                    Value::Obj(vec![
                        ("cancelled".to_string(), Value::Bool(cancelled)),
                        ("state".to_string(), Value::Str(state)),
                    ])
                    .to_string(),
                )
            }
            None => Response::not_found(&format!("no route for POST {path}")),
        },
        (method, _) => Response::new(
            "405 Method Not Allowed",
            "application/json",
            format!("{{\"error\":\"method {method} not supported\"}}"),
        ),
    }
}

/// `/jobs/{id}` → id.
fn parse_job_path(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?.parse().ok()
}

/// `/jobs/{id}/trace` → id.
fn parse_trace_path(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?
        .strip_suffix("/trace")?
        .parse()
        .ok()
}

/// `/jobs/{id}/cancel` → id.
fn parse_cancel_path(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?
        .strip_suffix("/cancel")?
        .parse()
        .ok()
}

/// `POST /jobs`: one JSON job spec per line in, one JSON outcome per
/// line out (same order). All accepted → `202`; any queue-full rejection
/// → `503` with a `Retry-After` header; otherwise any bad line → `400`.
fn submit_batch(req: &Request, farm: &Farm, ext: &ServerExtensions) -> Response {
    let body = req.body_text();
    let mut lines_out = String::new();
    let mut any_full_ms: Option<u64> = None;
    let mut any_bad = false;
    let mut any = false;
    // Forwarding applies only to first-hop submissions: a request that
    // already carries the forwarded marker is owned here by definition
    // (the owner forwarded it), which also caps any forwarding at one
    // hop — no loops even under a membership disagreement.
    let forward = if req.header(FORWARDED_HEADER).is_none() {
        ext.forward.as_ref()
    } else {
        None
    };
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        any = true;
        let parsed = lp_obs::json::parse(line)
            .map_err(|e| SubmitError::BadSpec(e.to_string()))
            .and_then(|v| JobSpec::from_value(&v).map_err(SubmitError::BadSpec));
        if let (Ok(spec), Some(hook)) = (&parsed, forward) {
            if let Some(outcome_line) = hook(spec, req.trace.as_ref()) {
                lines_out.push_str(&outcome_line.to_string());
                lines_out.push('\n');
                continue;
            }
        }
        let outcome = parsed.and_then(|spec| farm.submit_traced(spec, req.trace.as_ref()));
        let obj = match outcome {
            Ok(sub) => {
                let mut members = vec![("id".to_string(), Value::Int(sub.id() as i128))];
                if let Some(rec) = farm.job(sub.id()) {
                    members.push(("trace_id".to_string(), Value::Str(rec.trace.trace_id.hex())));
                }
                match sub {
                    Submitted::Queued { .. } => {
                        members.push(("state".to_string(), Value::Str("queued".to_string())));
                    }
                    Submitted::Deduped { primary, .. } => {
                        members.push(("state".to_string(), Value::Str("queued".to_string())));
                        members.push(("dedup_of".to_string(), Value::Int(primary as i128)));
                    }
                    Submitted::Cached { source, .. } => {
                        members.push(("state".to_string(), Value::Str("done".to_string())));
                        members.push(("dedup_of".to_string(), Value::Int(source as i128)));
                    }
                }
                Value::Obj(members)
            }
            Err(SubmitError::QueueFull { retry_after_ms }) => {
                any_full_ms = Some(any_full_ms.map_or(retry_after_ms, |m| m.max(retry_after_ms)));
                Value::Obj(vec![
                    ("error".to_string(), Value::Str("queue full".to_string())),
                    (
                        "retry_after_ms".to_string(),
                        Value::Int(retry_after_ms as i128),
                    ),
                ])
            }
            Err(SubmitError::Draining) => {
                any_full_ms = Some(any_full_ms.unwrap_or(1_000));
                Value::Obj(vec![(
                    "error".to_string(),
                    Value::Str("farm is draining".to_string()),
                )])
            }
            Err(SubmitError::BadSpec(msg)) => {
                any_bad = true;
                Value::Obj(vec![("error".to_string(), Value::Str(msg))])
            }
        };
        lines_out.push_str(&obj.to_string());
        lines_out.push('\n');
    }
    if !any {
        return Response::bad_request("empty submission body");
    }
    // One durability barrier per HTTP request, after the whole batch is
    // enqueued: every accepted line shares a single group commit before
    // the acknowledgment goes out.
    farm.sync_journal();
    if let Some(ms) = any_full_ms {
        // Retry-After is specified in whole seconds; round up.
        return Response::new("503 Service Unavailable", "application/x-ndjson", lines_out)
            .with_header("Retry-After", ms.div_ceil(1_000).max(1));
    }
    if any_bad {
        return Response::new("400 Bad Request", "application/x-ndjson", lines_out);
    }
    Response::new("202 Accepted", "application/x-ndjson", lines_out)
}
