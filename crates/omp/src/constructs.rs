//! Main-image codegen helpers for OpenMP worksharing constructs.
//!
//! These mirror what an OpenMP compiler emits *into the application binary*:
//! bounds math for static schedules, the dispatch loop around the runtime's
//! dynamic chunk dispatcher, `master`/`single` guards, and reductions. Loop
//! headers they create live in the **main image**, so they are legitimate
//! LoopPoint region-boundary candidates.
//!
//! Register use: `r16`–`r23` for loop control (`r16` is the induction
//! variable handed to bodies); bodies may use `r1`–`r15`.

use crate::runtime::{LockId, OmpRuntime};
use lp_isa::{AluOp, CodeBuilder, Cond, FpuOp, Pc, Reg};

impl OmpRuntime {
    /// Emits `#pragma omp for schedule(static)` over `0..total`.
    ///
    /// Iterations are divided into contiguous per-thread blocks. `body`
    /// receives the induction variable in `r16` and may use `r1`–`r15`.
    /// The loop header (first body instruction) is exported as symbol
    /// `name` and returned.
    ///
    /// No implicit barrier is emitted (the region's join barrier usually
    /// suffices; emit one explicitly for `nowait`-free semantics).
    pub fn emit_static_for(
        &mut self,
        c: &mut CodeBuilder<'_>,
        name: &str,
        total: u64,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) -> Pc {
        let n = self.nthreads() as i64;
        c.tid(Reg::R18);
        c.li(Reg::R19, total as i64);
        c.li(Reg::R20, n);
        c.alu(AluOp::Div, Reg::R21, Reg::R19, Reg::R20); // base = total / n
        c.alu(AluOp::Rem, Reg::R22, Reg::R19, Reg::R20); // rem  = total % n
                                                         // start = tid * base + min(tid, rem); len = base + (tid < rem)
        c.alu(AluOp::Mul, Reg::R16, Reg::R18, Reg::R21);
        let ge_rem = c.new_label();
        let start_done = c.new_label();
        c.branch(Cond::Ge, Reg::R18, Reg::R22, ge_rem);
        c.alu(AluOp::Add, Reg::R16, Reg::R16, Reg::R18); // + tid
        c.alui(AluOp::Add, Reg::R21, Reg::R21, 1); // len = base + 1
        c.jump(start_done);
        c.bind(ge_rem);
        c.alu(AluOp::Add, Reg::R16, Reg::R16, Reg::R22); // + rem
        c.bind(start_done);
        c.alu(AluOp::Add, Reg::R17, Reg::R16, Reg::R21); // end = start + len
        let exit = c.new_label();
        let header_label = c.new_label();
        c.branch(Cond::Ge, Reg::R16, Reg::R17, exit);
        c.bind(header_label);
        let header = c.here();
        if !name.is_empty() {
            c.export_label(name.to_string());
        }
        body(c, self);
        c.alui(AluOp::Add, Reg::R16, Reg::R16, 1);
        c.branch(Cond::Lt, Reg::R16, Reg::R17, header_label);
        c.bind(exit);
        header
    }

    /// Emits `#pragma omp for schedule(dynamic, chunk)` over `0..total`.
    ///
    /// Threads grab `chunk`-sized blocks from the runtime's shared dispatch
    /// counter. The caller **must** emit [`OmpRuntime::emit_dyn_reset`] in
    /// serial code before the enclosing parallel region. `body` receives the
    /// induction variable in `r16`. Returns the exported loop-header PC.
    pub fn emit_dynamic_for(
        &mut self,
        c: &mut CodeBuilder<'_>,
        name: &str,
        total: u64,
        chunk: u64,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) -> Pc {
        assert!(chunk >= 1, "dynamic schedule needs chunk >= 1");
        let dispatch = self.dispatch_next_fn;
        let dloop = c.new_label();
        let dexit = c.new_label();
        let clamp_done = c.new_label();
        c.bind(dloop);
        c.li(Reg::R27, chunk as i64);
        c.call(dispatch); // r26 = chunk start
        c.li(Reg::R17, total as i64);
        c.branch(Cond::Ge, Reg::R26, Reg::R17, dexit);
        // end = min(start + chunk, total)
        c.alui(AluOp::Add, Reg::R18, Reg::R26, chunk as i64);
        c.branch(Cond::Le, Reg::R18, Reg::R17, clamp_done);
        c.alui(AluOp::Add, Reg::R18, Reg::R17, 0);
        c.bind(clamp_done);
        c.alui(AluOp::Add, Reg::R16, Reg::R26, 0); // idx = start
        let header_label = c.new_label();
        c.bind(header_label);
        let header = c.here();
        if !name.is_empty() {
            c.export_label(name.to_string());
        }
        body(c, self);
        c.alui(AluOp::Add, Reg::R16, Reg::R16, 1);
        c.branch(Cond::Lt, Reg::R16, Reg::R18, header_label);
        c.jump(dloop);
        c.bind(dexit);
        header
    }

    /// Emits `#pragma omp parallel for schedule(static)` — the combined
    /// construct: a parallel region whose entire body is one static
    /// worksharing loop (with the region's implicit join barrier).
    /// Returns nothing; the loop header is exported as `name`.
    pub fn emit_parallel_for_static(
        &mut self,
        c: &mut CodeBuilder<'_>,
        name: &str,
        total: u64,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) {
        let loop_name = name.to_string();
        self.emit_parallel(c, name, move |c, rt| {
            rt.emit_static_for(c, &loop_name, total, body);
        });
    }

    /// Emits `#pragma omp parallel for schedule(dynamic, chunk)` — the
    /// combined construct, including the serial dispatch-counter reset.
    pub fn emit_parallel_for_dynamic(
        &mut self,
        c: &mut CodeBuilder<'_>,
        name: &str,
        total: u64,
        chunk: u64,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) {
        self.emit_dyn_reset(c);
        let loop_name = name.to_string();
        self.emit_parallel(c, name, move |c, rt| {
            rt.emit_dynamic_for(c, &loop_name, total, chunk, body);
        });
    }

    /// Emits `#pragma omp master`: `body` runs on thread 0 only.
    pub fn emit_master(
        &mut self,
        c: &mut CodeBuilder<'_>,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) {
        let skip = c.new_label();
        c.tid(Reg::R26);
        c.branch(Cond::Ne, Reg::R26, Reg::R31, skip);
        body(c, self);
        c.bind(skip);
    }

    /// Emits `#pragma omp single`: `body` runs on the first thread to
    /// arrive each time the construct executes; all threads then join a
    /// barrier (OpenMP's implicit `single` barrier).
    pub fn emit_single(
        &mut self,
        c: &mut CodeBuilder<'_>,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) {
        let site = self.alloc_single_site();
        let n = self.nthreads() as i64;
        let skip = c.new_label();
        c.li(Reg::R26, site);
        c.li(Reg::R27, 1);
        c.atomic_add(Reg::R28, Reg::R26, 0, Reg::R27);
        c.alui(AluOp::Rem, Reg::R28, Reg::R28, n);
        c.branch(Cond::Ne, Reg::R28, Reg::R31, skip);
        body(c, self);
        c.bind(skip);
        self.emit_barrier(c);
    }

    /// Emits `#pragma omp critical` protected by `lock`.
    pub fn emit_critical(
        &mut self,
        c: &mut CodeBuilder<'_>,
        lock: LockId,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) {
        self.emit_lock_acquire(c, lock);
        body(c, self);
        self.emit_lock_release(c, lock);
    }

    /// Emits an integer `reduction(+)` update: atomically adds `value` to
    /// the shared word at the immediate address `result_addr`.
    pub fn emit_reduce_add_u64(&self, c: &mut CodeBuilder<'_>, value: Reg, result_addr: u64) {
        c.li(Reg::R26, result_addr as i64);
        c.atomic_add(Reg::R27, Reg::R26, 0, value);
    }

    /// Emits a floating-point `reduction(+)` update under the reserved
    /// reduce lock (atomic f64 addition does not exist; real runtimes use a
    /// critical section or CAS loops here too).
    pub fn emit_reduce_add_f64(&self, c: &mut CodeBuilder<'_>, value: Reg, result_addr: u64) {
        self.emit_lock_acquire(c, LockId::REDUCE);
        c.li(Reg::R26, result_addr as i64);
        c.load(Reg::R27, Reg::R26, 0);
        c.fpu(FpuOp::FAdd, Reg::R27, Reg::R27, value);
        c.store(Reg::R27, Reg::R26, 0);
        self.emit_lock_release(c, LockId::REDUCE);
    }
}

#[cfg(test)]
mod tests {
    use crate::{OmpRuntime, WaitPolicy, APP_BASE};
    use lp_isa::{Addr, AluOp, Machine, ProgramBuilder, Reg};
    use std::sync::Arc;

    const SUM: u64 = APP_BASE;
    const FSUM: u64 = APP_BASE + 8;
    const COUNT: u64 = APP_BASE + 16;
    const DATA: u64 = APP_BASE + 0x1000;

    fn run_workshare(
        policy: WaitPolicy,
        nthreads: usize,
        build: impl FnOnce(&mut lp_isa::CodeBuilder<'_>, &mut OmpRuntime),
    ) -> Machine {
        let mut pb = ProgramBuilder::new("ws-test");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        build(&mut c, &mut rt);
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), nthreads);
        m.run_to_completion(100_000_000).unwrap();
        assert!(m.is_finished());
        m
    }

    /// Sum of 0..total via a worksharing loop writing to an atomic.
    fn sum_program(
        policy: WaitPolicy,
        nthreads: usize,
        total: u64,
        dynamic: Option<u64>,
    ) -> Machine {
        run_workshare(policy, nthreads, |c, rt| {
            if dynamic.is_some() {
                rt.emit_dyn_reset(c);
            }
            rt.emit_parallel(c, "sum", |c, rt| {
                let body = |c: &mut lp_isa::CodeBuilder<'_>, rt: &mut OmpRuntime| {
                    // r16 holds the induction variable.
                    rt.emit_reduce_add_u64(c, Reg::R16, SUM);
                };
                match dynamic {
                    Some(chunk) => {
                        rt.emit_dynamic_for(c, "sum.loop", total, chunk, body);
                    }
                    None => {
                        rt.emit_static_for(c, "sum.loop", total, body);
                    }
                }
            });
        })
    }

    #[test]
    fn static_for_covers_all_iterations() {
        for n in [1, 3, 8] {
            let m = sum_program(WaitPolicy::Passive, n, 100, None);
            assert_eq!(m.mem().load(Addr(SUM)), 4950, "nthreads={n}");
        }
    }

    #[test]
    fn static_for_uneven_split() {
        // total not divisible by nthreads exercises the remainder path.
        let m = sum_program(WaitPolicy::Active, 8, 103, None);
        assert_eq!(m.mem().load(Addr(SUM)), 103 * 102 / 2);
    }

    #[test]
    fn dynamic_for_covers_all_iterations() {
        for chunk in [1, 4, 7, 64] {
            let m = sum_program(WaitPolicy::Passive, 4, 100, Some(chunk));
            assert_eq!(m.mem().load(Addr(SUM)), 4950, "chunk={chunk}");
        }
    }

    #[test]
    fn dynamic_for_active_policy() {
        let m = sum_program(WaitPolicy::Active, 8, 200, Some(8));
        assert_eq!(m.mem().load(Addr(SUM)), 200 * 199 / 2);
    }

    #[test]
    fn master_runs_once() {
        let m = run_workshare(WaitPolicy::Passive, 8, |c, rt| {
            rt.emit_parallel(c, "m", |c, rt| {
                rt.emit_master(c, |c, _| {
                    c.li(Reg::R1, 1);
                    c.li(Reg::R2, COUNT as i64);
                    c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
                });
            });
        });
        assert_eq!(m.mem().load(Addr(COUNT)), 1);
    }

    #[test]
    fn single_runs_once_per_encounter() {
        let m = run_workshare(WaitPolicy::Passive, 4, |c, rt| {
            rt.emit_parallel(c, "s", |c, rt| {
                // Two dynamic encounters of two distinct single sites.
                rt.emit_single(c, |c, _| {
                    c.li(Reg::R1, 1);
                    c.li(Reg::R2, COUNT as i64);
                    c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
                });
                rt.emit_single(c, |c, _| {
                    c.li(Reg::R1, 100);
                    c.li(Reg::R2, COUNT as i64);
                    c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
                });
            });
        });
        assert_eq!(m.mem().load(Addr(COUNT)), 101);
    }

    #[test]
    fn critical_protects_rmw() {
        let m = run_workshare(WaitPolicy::Active, 4, |c, rt| {
            rt.emit_parallel(c, "c", |c, rt| {
                c.li(Reg::R5, 50);
                c.counted_loop_reg("", Reg::R5, |c| {
                    rt.emit_critical(c, crate::LockId(2), |c, _| {
                        c.li(Reg::R2, COUNT as i64);
                        c.load(Reg::R1, Reg::R2, 0);
                        c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
                        c.store(Reg::R1, Reg::R2, 0);
                    });
                });
            });
        });
        assert_eq!(m.mem().load(Addr(COUNT)), 200);
    }

    #[test]
    fn f64_reduction_is_exact_for_integers() {
        let m = run_workshare(WaitPolicy::Passive, 4, |c, rt| {
            rt.emit_parallel(c, "f", |c, rt| {
                rt.emit_static_for(c, "f.loop", 10, |c, rt| {
                    // value = 1.5 per iteration
                    c.lf(Reg::R1, 1.5);
                    rt.emit_reduce_add_f64(c, Reg::R1, FSUM);
                });
            });
        });
        assert_eq!(m.mem().load_f64(Addr(FSUM)), 15.0);
    }

    #[test]
    fn static_for_writes_disjoint_slices() {
        // Every thread writes its iterations; all array cells end filled.
        let total = 64u64;
        let m = run_workshare(WaitPolicy::Passive, 8, |c, rt| {
            rt.emit_parallel(c, "w", |c, rt| {
                rt.emit_static_for(c, "w.loop", total, |c, _| {
                    c.li(Reg::R1, DATA as i64);
                    c.alui(AluOp::Shl, Reg::R2, Reg::R16, 3);
                    c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
                    c.alui(AluOp::Add, Reg::R3, Reg::R16, 1);
                    c.store(Reg::R3, Reg::R1, 0);
                });
            });
        });
        for i in 0..total {
            assert_eq!(m.mem().load(Addr(DATA).word(i)), i + 1, "cell {i}");
        }
    }

    #[test]
    fn single_with_one_thread_runs_every_encounter() {
        let m = run_workshare(WaitPolicy::Passive, 1, |c, rt| {
            rt.emit_parallel(c, "s1", |c, rt| {
                rt.emit_single(c, |c, _| {
                    c.li(Reg::R1, 1);
                    c.li(Reg::R2, COUNT as i64);
                    c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
                });
            });
        });
        assert_eq!(m.mem().load(Addr(COUNT)), 1);
    }

    #[test]
    fn single_runs_once_per_round_in_a_loop() {
        // The same single *site* encountered repeatedly executes exactly
        // once per encounter (the modulo-nthreads ticket resets).
        let nthreads = 4;
        let rounds = 5u64;
        let m = run_workshare(WaitPolicy::Passive, nthreads, |c, rt| {
            rt.emit_parallel(c, "sr", |c, rt| {
                c.li(Reg::R9, rounds as i64);
                c.counted_loop_reg("", Reg::R9, |c| {
                    rt.emit_single(c, |c, _| {
                        c.li(Reg::R1, 1);
                        c.li(Reg::R2, COUNT as i64);
                        c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
                    });
                });
            });
        });
        assert_eq!(m.mem().load(Addr(COUNT)), rounds);
    }

    #[test]
    fn two_sequential_worksharing_loops_in_one_region() {
        // Static-for twice in one parallel region with an explicit barrier
        // between: phase B reads what phase A wrote.
        let nthreads = 4;
        let m = run_workshare(WaitPolicy::Active, nthreads, |c, rt| {
            rt.emit_parallel(c, "two", |c, rt| {
                rt.emit_static_for(c, "two.a", 32, |c, _| {
                    c.li(Reg::R1, DATA as i64);
                    c.alui(AluOp::Shl, Reg::R2, Reg::R16, 3);
                    c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
                    c.alui(AluOp::Add, Reg::R3, Reg::R16, 100);
                    c.store(Reg::R3, Reg::R1, 0);
                });
                rt.emit_barrier(c);
                rt.emit_static_for(c, "two.b", 32, |c, rt| {
                    // Read the cell 31-idx (written by a different thread).
                    c.li(Reg::R1, DATA as i64);
                    c.li(Reg::R4, 31);
                    c.alu(AluOp::Sub, Reg::R4, Reg::R4, Reg::R16);
                    c.alui(AluOp::Shl, Reg::R2, Reg::R4, 3);
                    c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
                    c.load(Reg::R3, Reg::R1, 0);
                    rt.emit_reduce_add_u64(c, Reg::R3, SUM);
                });
            });
        });
        // Sum of (100 + i) for i in 0..32.
        assert_eq!(m.mem().load(Addr(SUM)), 32 * 100 + 31 * 32 / 2);
    }

    #[test]
    fn combined_parallel_for_constructs() {
        for dynamic in [false, true] {
            let m = run_workshare(WaitPolicy::Passive, 4, |c, rt| {
                let body = |c: &mut lp_isa::CodeBuilder<'_>, rt: &mut OmpRuntime| {
                    rt.emit_reduce_add_u64(c, Reg::R16, SUM);
                };
                if dynamic {
                    rt.emit_parallel_for_dynamic(c, "pf", 80, 4, body);
                } else {
                    rt.emit_parallel_for_static(c, "pf", 80, body);
                }
            });
            assert_eq!(m.mem().load(Addr(SUM)), 80 * 79 / 2, "dynamic={dynamic}");
        }
    }

    #[test]
    fn loop_headers_live_in_main_image() {
        let mut pb = ProgramBuilder::new("hdr");
        let mut rt = OmpRuntime::build(&mut pb, 2, WaitPolicy::Passive);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "p", |c, rt| {
            rt.emit_static_for(c, "p.loop", 8, |c, _| {
                c.nop();
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let p = pb.finish();
        let hdr = p.symbol("p.loop").expect("header exported");
        assert!(!p.is_library_pc(hdr), "worksharing headers are app code");
    }
}
