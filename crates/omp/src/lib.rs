//! # lp-omp — an OpenMP-like runtime model
//!
//! The LoopPoint paper filters synchronization by *image*: everything in
//! `libiomp5.so` is treated as potential busy-waiting and excluded from BBVs
//! and filtered instruction counts (§IV-F). For that heuristic to be
//! exercised faithfully, the reproduction needs a runtime whose
//! synchronization code **really executes instructions at library-image
//! PCs** — spin loops under the active wait policy, futex sleeps under the
//! passive policy.
//!
//! This crate code-generates such a runtime into a library image of an
//! `lp-isa` program:
//!
//! * a **worker dispatch loop** (the thread pool): workers park on a
//!   doorbell generation counter and run parallel-region bodies dispatched
//!   through an indirect call, exactly like an OpenMP hot team;
//! * a **sense-reversing centralized barrier** with active (spin + pause)
//!   or passive (futex) waiting, selected by [`WaitPolicy`] — the analogue
//!   of `OMP_WAIT_POLICY`;
//! * **test-and-set locks** (spin or futex), a **dynamic-for chunk
//!   dispatcher** (`__kmpc_dispatch_next` analogue), and main-image codegen
//!   helpers for `parallel`, static/dynamic `for`, `master`, `single`,
//!   `critical`, and reductions.
//!
//! ## Register conventions
//!
//! The runtime reserves `r24`–`r31`: `r24` holds the runtime state base,
//! `r25` the doorbell generation, `r26`–`r30` are runtime scratch, and `r31`
//! is the builder's zero register. Structured-loop helpers use `r16`–`r23`
//! for loop control and hand the induction variable to bodies in `r16`;
//! application bodies may freely use `r1`–`r15`.
//!
//! ## Example
//!
//! ```
//! use lp_isa::{Machine, ProgramBuilder, Reg, Addr};
//! use lp_omp::{OmpRuntime, WaitPolicy};
//! use std::sync::Arc;
//!
//! let nthreads = 4;
//! let mut pb = ProgramBuilder::new("demo");
//! let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
//! let mut c = pb.main_code();
//! rt.emit_main_init(&mut c);
//! rt.emit_parallel(&mut c, "sum", |c, _rt| {
//!     // Each thread atomically adds its tid to a shared cell.
//!     c.tid(Reg::R1);
//!     c.li(Reg::R2, 0x200_0000);
//!     c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
//! });
//! rt.emit_shutdown(&mut c);
//! c.halt();
//! c.finish();
//! let program = Arc::new(pb.finish());
//!
//! let mut m = Machine::new(program, nthreads);
//! m.run_to_completion(1_000_000).unwrap();
//! assert_eq!(m.mem().load(Addr(0x200_0000)), 0 + 1 + 2 + 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constructs;
mod runtime;

pub use runtime::{LockId, OmpRuntime, WaitPolicy};

/// Base address of the runtime's shared state block.
pub const RT_BASE: u64 = 0x10_0000;

/// Address of the runtime's barrier generation word.
///
/// The last thread arriving at a barrier stores the next generation here —
/// one store per completed barrier episode — which is what the
/// BarrierPoint baseline keys its inter-barrier region boundaries on.
pub fn barrier_gen_addr() -> lp_isa::Addr {
    lp_isa::Addr(RT_BASE + layout::BAR_GEN as u64)
}

/// Suggested base address for application shared data (clear of the
/// runtime's state block and single-site slots).
pub const APP_BASE: u64 = 0x100_0000;

pub(crate) mod layout {
    //! Offsets of runtime state words relative to [`super::RT_BASE`].
    pub const DOORBELL: i64 = 0;
    pub const TASK_PTR: i64 = 8;
    pub const NTHREADS: i64 = 16;
    pub const SHUTDOWN: i64 = 24;
    pub const BAR_COUNT: i64 = 32;
    pub const BAR_GEN: i64 = 40;
    pub const DYN_NEXT: i64 = 48;
    /// Byte offset of the lock array (16 word-sized locks).
    pub const LOCKS: i64 = 0x100;
    /// Number of locks in the lock array.
    pub const NUM_LOCKS: usize = 16;
    /// First byte offset for `single`-construct site slots (bump-allocated).
    pub const SINGLE_SITES: i64 = 0x200;
}
