//! Library-image runtime code: worker pool, barrier, locks, dispatcher.

use crate::layout;
use crate::RT_BASE;
use lp_isa::{Addr, AluOp, CodeBuilder, Cond, Label, ProgramBuilder, Reg};

/// The `OMP_WAIT_POLICY` analogue: how threads wait at synchronization
/// points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitPolicy {
    /// Threads busy-wait in user-level spin loops (consuming instructions
    /// and cycles in the library image).
    Active,
    /// Threads sleep on futexes (no instructions retired while waiting).
    Passive,
}

impl WaitPolicy {
    /// Lower-case name, as used in workload ids and reports.
    pub fn name(self) -> &'static str {
        match self {
            WaitPolicy::Active => "active",
            WaitPolicy::Passive => "passive",
        }
    }
}

impl std::fmt::Display for WaitPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifies one of the runtime's word-sized locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockId(pub usize);

impl LockId {
    /// The lock the runtime reserves for floating-point reductions.
    pub const REDUCE: LockId = LockId(layout::NUM_LOCKS - 1);

    pub(crate) fn addr_imm(self) -> i64 {
        assert!(self.0 < layout::NUM_LOCKS, "lock index out of range");
        RT_BASE as i64 + layout::LOCKS + (self.0 as i64) * 8
    }
}

/// Handle to the runtime emitted into a program's library image.
///
/// Create with [`OmpRuntime::build`] *before* emitting main-image code, then
/// use the `emit_*` methods (and the construct helpers in this crate) while
/// generating the application.
#[derive(Debug)]
pub struct OmpRuntime {
    policy: WaitPolicy,
    nthreads: usize,
    pub(crate) barrier_fn: Label,
    pub(crate) lock_acquire_fn: Label,
    pub(crate) lock_release_fn: Label,
    pub(crate) dispatch_next_fn: Label,
    pub(crate) next_single_site: i64,
}

impl OmpRuntime {
    /// Emits the runtime into a fresh library image of `pb` and registers
    /// the worker-pool entry point.
    ///
    /// `nthreads` is the team size the program will run with; the barrier
    /// and the `single` construct are specialized to it (like a runtime that
    /// read `OMP_NUM_THREADS` at startup).
    pub fn build(pb: &mut ProgramBuilder, nthreads: usize, policy: WaitPolicy) -> OmpRuntime {
        assert!(nthreads >= 1, "team needs at least one thread");
        let barrier_fn = pb.new_label();
        let lock_acquire_fn = pb.new_label();
        let lock_release_fn = pb.new_label();
        let dispatch_next_fn = pb.new_label();

        let mut c = pb.library_code("libomp");

        // ---- worker dispatch loop -------------------------------------
        let worker_entry = c.export_label("omp_worker");
        c.li(Reg::R31, 0);
        c.li(Reg::R24, RT_BASE as i64);
        c.li(Reg::R25, 0); // last-seen doorbell generation
        let wloop = c.new_label();
        let wgo = c.new_label();
        let wexit = c.new_label();
        c.bind(wloop);
        c.load(Reg::R26, Reg::R24, layout::DOORBELL);
        c.branch(Cond::Ne, Reg::R26, Reg::R25, wgo);
        match policy {
            WaitPolicy::Active => {
                c.pause();
                c.jump(wloop);
            }
            WaitPolicy::Passive => {
                c.futex_wait(Reg::R24, layout::DOORBELL, Reg::R25);
                c.jump(wloop);
            }
        }
        c.bind(wgo);
        c.alui(AluOp::Add, Reg::R25, Reg::R26, 0); // r25 = new generation
        c.load(Reg::R27, Reg::R24, layout::SHUTDOWN);
        c.branch(Cond::Ne, Reg::R27, Reg::R31, wexit);
        c.load(Reg::R26, Reg::R24, layout::TASK_PTR);
        c.call_ind(Reg::R26); // run the parallel-region body
        c.jump(wloop);
        c.bind(wexit);
        c.halt();

        // ---- sense-reversing centralized barrier ----------------------
        c.bind(barrier_fn);
        c.export_label("omp_barrier");
        c.load(Reg::R26, Reg::R24, layout::BAR_GEN);
        c.li(Reg::R27, 1);
        c.atomic_add(Reg::R28, Reg::R24, layout::BAR_COUNT, Reg::R27);
        c.li(Reg::R27, nthreads as i64 - 1);
        let last = c.new_label();
        let bwait = c.new_label();
        let bdone = c.new_label();
        c.branch(Cond::Eq, Reg::R28, Reg::R27, last);
        c.bind(bwait);
        c.load(Reg::R28, Reg::R24, layout::BAR_GEN);
        c.branch(Cond::Ne, Reg::R28, Reg::R26, bdone);
        match policy {
            WaitPolicy::Active => {
                c.pause();
                c.jump(bwait);
            }
            WaitPolicy::Passive => {
                c.futex_wait(Reg::R24, layout::BAR_GEN, Reg::R26);
                c.jump(bwait);
            }
        }
        c.bind(bdone);
        c.ret();
        c.bind(last);
        c.store(Reg::R31, Reg::R24, layout::BAR_COUNT);
        c.alui(AluOp::Add, Reg::R27, Reg::R26, 1);
        c.store(Reg::R27, Reg::R24, layout::BAR_GEN);
        if policy == WaitPolicy::Passive {
            c.futex_wake(Reg::R24, layout::BAR_GEN, u32::MAX);
        }
        c.ret();

        // ---- test-and-set lock (address in r26) ------------------------
        c.bind(lock_acquire_fn);
        c.export_label("omp_lock_acquire");
        let la_try = c.new_label();
        let la_got = c.new_label();
        c.bind(la_try);
        c.li(Reg::R27, 1);
        c.atomic_cas(Reg::R28, Reg::R26, 0, Reg::R31, Reg::R27);
        c.branch(Cond::Eq, Reg::R28, Reg::R31, la_got);
        match policy {
            WaitPolicy::Active => {
                c.pause();
                c.jump(la_try);
            }
            WaitPolicy::Passive => {
                // Sleep while the lock word is still 1 (held).
                c.futex_wait(Reg::R26, 0, Reg::R27);
                c.jump(la_try);
            }
        }
        c.bind(la_got);
        c.ret();

        c.bind(lock_release_fn);
        c.export_label("omp_lock_release");
        c.store(Reg::R31, Reg::R26, 0);
        if policy == WaitPolicy::Passive {
            c.futex_wake(Reg::R26, 0, 1);
        }
        c.ret();

        // ---- dynamic-for chunk dispatcher (chunk in r27, start -> r26) --
        c.bind(dispatch_next_fn);
        c.export_label("omp_dispatch_next");
        c.atomic_add(Reg::R26, Reg::R24, layout::DYN_NEXT, Reg::R27);
        c.ret();

        c.finish();
        pb.set_worker_entry(worker_entry);
        pb.data(Addr(RT_BASE + layout::NTHREADS as u64), &[nthreads as u64]);

        OmpRuntime {
            policy,
            nthreads,
            barrier_fn,
            lock_acquire_fn,
            lock_release_fn,
            dispatch_next_fn,
            next_single_site: layout::SINGLE_SITES,
        }
    }

    /// The wait policy this runtime was built with.
    pub fn policy(&self) -> WaitPolicy {
        self.policy
    }

    /// The team size this runtime was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Emits the main-thread runtime prologue (`r24`/`r25` setup). Must run
    /// before any other runtime call in main code.
    pub fn emit_main_init(&self, c: &mut CodeBuilder<'_>) {
        c.li(Reg::R24, RT_BASE as i64);
        c.li(Reg::R25, 0);
    }

    /// Emits an explicit team-wide barrier call (`#pragma omp barrier`).
    ///
    /// Only valid inside a parallel-region body (all team threads must
    /// reach it).
    pub fn emit_barrier(&self, c: &mut CodeBuilder<'_>) {
        c.call(self.barrier_fn);
    }

    /// Emits a parallel region: dispatches `body` to the worker pool, runs
    /// it on the main thread too, and joins at the region's implicit
    /// barrier.
    ///
    /// `name` labels the region body in the symbol table. The body may use
    /// registers `r1`–`r23`; values do not persist between regions on
    /// worker threads.
    pub fn emit_parallel(
        &mut self,
        c: &mut CodeBuilder<'_>,
        name: &str,
        body: impl FnOnce(&mut CodeBuilder<'_>, &mut OmpRuntime),
    ) {
        let body_label = c.new_label();
        let skip = c.new_label();
        c.jump(skip);
        c.bind(body_label);
        c.export_label(format!("{name}.omp_fn"));
        body(c, self);
        // Implicit barrier at region end (OpenMP join semantics).
        c.call(self.barrier_fn);
        c.ret();
        c.bind(skip);
        c.li_label(Reg::R26, body_label);
        c.store(Reg::R26, Reg::R24, layout::TASK_PTR);
        c.fence();
        c.alui(AluOp::Add, Reg::R25, Reg::R25, 1);
        c.store(Reg::R25, Reg::R24, layout::DOORBELL);
        if self.policy == WaitPolicy::Passive {
            c.futex_wake(Reg::R24, layout::DOORBELL, u32::MAX);
        }
        c.call(body_label); // the main thread participates in the team
    }

    /// Emits the shutdown sequence: parks the pool permanently. The caller
    /// emits `halt` for the main thread afterwards.
    pub fn emit_shutdown(&mut self, c: &mut CodeBuilder<'_>) {
        c.li(Reg::R26, 1);
        c.store(Reg::R26, Reg::R24, layout::SHUTDOWN);
        c.fence();
        c.alui(AluOp::Add, Reg::R25, Reg::R25, 1);
        c.store(Reg::R25, Reg::R24, layout::DOORBELL);
        if self.policy == WaitPolicy::Passive {
            c.futex_wake(Reg::R24, layout::DOORBELL, u32::MAX);
        }
    }

    /// Emits `omp_set_lock(lock)`.
    pub fn emit_lock_acquire(&self, c: &mut CodeBuilder<'_>, lock: LockId) {
        c.li(Reg::R26, lock.addr_imm());
        c.call(self.lock_acquire_fn);
    }

    /// Emits `omp_unset_lock(lock)`.
    pub fn emit_lock_release(&self, c: &mut CodeBuilder<'_>, lock: LockId) {
        c.li(Reg::R26, lock.addr_imm());
        c.call(self.lock_release_fn);
    }

    /// Emits a zero reset of the dynamic-for dispatch counter. Must run in
    /// *serial* code before a parallel region containing a dynamic loop.
    pub fn emit_dyn_reset(&self, c: &mut CodeBuilder<'_>) {
        c.store(Reg::R31, Reg::R24, layout::DYN_NEXT);
    }

    /// Allocates a fresh shared word for a `single` construct site.
    pub(crate) fn alloc_single_site(&mut self) -> i64 {
        let off = self.next_single_site;
        self.next_single_site += 8;
        RT_BASE as i64 + off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_isa::Machine;
    use std::sync::Arc;

    fn run(policy: WaitPolicy, nthreads: usize) -> Machine {
        let mut pb = ProgramBuilder::new("rt-test");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        // Region 1: every thread increments a counter.
        rt.emit_parallel(&mut c, "r1", |c, _| {
            c.li(Reg::R1, 1);
            c.li(Reg::R2, crate::APP_BASE as i64);
            c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
        });
        // Region 2: again, proving the pool survives across regions.
        rt.emit_parallel(&mut c, "r2", |c, _| {
            c.li(Reg::R1, 10);
            c.li(Reg::R2, crate::APP_BASE as i64);
            c.atomic_add(Reg::R3, Reg::R2, 0, Reg::R1);
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), nthreads);
        m.run_to_completion(10_000_000).unwrap();
        assert!(m.is_finished(), "all threads halted");
        m
    }

    #[test]
    fn fork_join_passive() {
        let m = run(WaitPolicy::Passive, 4);
        assert_eq!(m.mem().load(Addr(crate::APP_BASE)), 4 + 40);
    }

    #[test]
    fn fork_join_active() {
        let m = run(WaitPolicy::Active, 4);
        assert_eq!(m.mem().load(Addr(crate::APP_BASE)), 4 + 40);
    }

    #[test]
    fn fork_join_single_thread() {
        let m = run(WaitPolicy::Passive, 1);
        assert_eq!(m.mem().load(Addr(crate::APP_BASE)), 11);
    }

    #[test]
    fn fork_join_many_threads() {
        let m = run(WaitPolicy::Active, 16);
        assert_eq!(m.mem().load(Addr(crate::APP_BASE)), 16 + 160);
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        // Each thread does read-modify-write under a lock; without mutual
        // exclusion the unprotected sequence would lose updates under some
        // interleavings — with the lock the total is always exact.
        let nthreads = 8;
        let mut pb = ProgramBuilder::new("lock-test");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Passive);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "locked", |c, rt| {
            c.li(Reg::R4, 100);
            c.counted_loop_reg("", Reg::R4, |c| {
                rt.emit_lock_acquire(c, LockId(3));
                c.li(Reg::R2, crate::APP_BASE as i64);
                c.load(Reg::R1, Reg::R2, 0);
                c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
                c.store(Reg::R1, Reg::R2, 0);
                rt.emit_lock_release(c, LockId(3));
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), nthreads);
        m.run_to_completion(50_000_000).unwrap();
        assert_eq!(m.mem().load(Addr(crate::APP_BASE)), 8 * 100);
    }

    #[test]
    fn explicit_barrier_orders_phases() {
        // Phase A: thread writes slot[tid] = tid+1. Barrier. Phase B: thread
        // reads slot[(tid+1) % n] and adds it to a shared sum. Without the
        // barrier a thread could read a not-yet-written slot (value 0).
        let nthreads = 4;
        let slots = crate::APP_BASE + 0x100;
        let mut pb = ProgramBuilder::new("bar-test");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, WaitPolicy::Active);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "phases", |c, rt| {
            c.tid(Reg::R1);
            c.alui(AluOp::Add, Reg::R2, Reg::R1, 1); // tid+1
            c.li(Reg::R3, slots as i64);
            c.alui(AluOp::Shl, Reg::R4, Reg::R1, 3);
            c.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R4);
            c.store(Reg::R2, Reg::R3, 0);
            rt.emit_barrier(c);
            // neighbour = (tid+1) % n
            c.alui(AluOp::Add, Reg::R5, Reg::R1, 1);
            c.alui(AluOp::Rem, Reg::R5, Reg::R5, nthreads as i64);
            c.li(Reg::R3, slots as i64);
            c.alui(AluOp::Shl, Reg::R4, Reg::R5, 3);
            c.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R4);
            c.load(Reg::R6, Reg::R3, 0);
            c.li(Reg::R7, crate::APP_BASE as i64);
            c.atomic_add(Reg::R8, Reg::R7, 0, Reg::R6);
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let mut m = Machine::new(Arc::new(pb.finish()), nthreads);
        m.run_to_completion(10_000_000).unwrap();
        // Sum of (tid+1) over all threads = 1+2+3+4.
        assert_eq!(m.mem().load(Addr(crate::APP_BASE)), 10);
    }

    #[test]
    fn lock_id_addresses() {
        assert_eq!(LockId(0).addr_imm(), RT_BASE as i64 + layout::LOCKS);
        assert_eq!(LockId(2).addr_imm(), RT_BASE as i64 + layout::LOCKS + 16);
        assert_eq!(LockId::REDUCE.0, layout::NUM_LOCKS - 1);
    }

    #[test]
    #[should_panic(expected = "lock index out of range")]
    fn lock_id_out_of_range_panics() {
        let _ = LockId(layout::NUM_LOCKS).addr_imm();
    }

    #[test]
    fn worker_code_is_in_library_image() {
        let mut pb = ProgramBuilder::new("img-test");
        let mut rt = OmpRuntime::build(&mut pb, 2, WaitPolicy::Active);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let p = pb.finish();
        let w = p.entry_worker().unwrap();
        assert!(p.is_library_pc(w));
        assert!(p.symbol("omp_barrier").is_some());
        assert!(p.is_library_pc(p.symbol("omp_barrier").unwrap()));
    }
}
