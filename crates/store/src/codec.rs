//! A std-only LZ77-style compression codec with varint token encoding.
//!
//! Checkpoint payloads are dominated by memory pages — long zero runs and
//! near-duplicate pages — so a byte-oriented LZ with unbounded match
//! distance gets large wins without any external dependency. The format is
//! a flat token stream:
//!
//! ```text
//! token := varint t
//!   t even  → literal run: (t >> 1) raw bytes follow
//!   t odd   → match: length = MIN_MATCH + (t >> 1),
//!             followed by varint distance (≥ 1, may be < length:
//!             overlapping copies encode runs, RLE-style)
//! ```
//!
//! Compression is greedy with a hash-chain matcher (4-byte prefixes,
//! bounded probes); decompression is a strict validator — any malformed
//! token, out-of-range distance, or length overshoot is an error, never a
//! panic or over-allocation.

/// Shortest encodable match. Below this, literals are cheaper.
const MIN_MATCH: usize = 4;
/// Hash-chain probe bound per position (compression effort knob).
const MAX_CHAIN: usize = 32;
/// log2 of the prefix hash table size.
const TABLE_BITS: u32 = 15;

/// Codec failure while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The token stream ended mid-token or mid-run.
    Truncated,
    /// A varint ran past 10 bytes.
    BadVarint,
    /// A match referenced data before the output start.
    BadDistance {
        /// The offending distance.
        dist: u64,
        /// Bytes produced so far.
        produced: usize,
    },
    /// Output exceeded the declared uncompressed length.
    LengthOverrun,
    /// Output fell short of the declared uncompressed length.
    LengthUnderrun {
        /// Bytes actually produced.
        produced: usize,
        /// Bytes expected.
        expected: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::BadVarint => write!(f, "malformed varint"),
            CodecError::BadDistance { dist, produced } => {
                write!(f, "match distance {dist} exceeds {produced} produced bytes")
            }
            CodecError::LengthOverrun => write!(f, "output exceeds declared length"),
            CodecError::LengthUnderrun { produced, expected } => {
                write!(f, "output {produced} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `v` to `out` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads a LEB128 varint from `data[*pos..]`, advancing `pos`.
///
/// # Errors
/// [`CodecError::Truncated`] / [`CodecError::BadVarint`].
pub fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return Err(CodecError::BadVarint);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::BadVarint);
        }
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let w = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (w.wrapping_mul(0x9e37_79b1) >> (32 - TABLE_BITS)) as usize
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    // Long literal runs are split only by the varint width, not a cap.
    if lits.is_empty() {
        return;
    }
    put_varint(out, (lits.len() as u64) << 1);
    out.extend_from_slice(lits);
}

/// Compresses `input`. The output is self-delimiting given the original
/// length (carried by the container header).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        flush_literals(&mut out, input);
        return out;
    }
    let mut table = vec![u32::MAX; 1 << TABLE_BITS];
    let mut prev = vec![u32::MAX; n];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    let last_hashable = n - MIN_MATCH;

    let insert = |table: &mut [u32], prev: &mut [u32], j: usize| {
        let h = hash4(input, j);
        prev[j] = table[h];
        table[h] = j as u32;
    };

    while i <= last_hashable {
        let h = hash4(input, i);
        let mut cand = table[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut probes = 0usize;
        while cand != u32::MAX && probes < MAX_CHAIN {
            let c = cand as usize;
            // Cheap reject: compare the byte one past the current best.
            if best_len == 0 || input.get(c + best_len) == input.get(i + best_len) {
                let mut l = 0usize;
                while i + l < n && input[c + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                }
            }
            cand = prev[c];
            probes += 1;
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &input[lit_start..i]);
            put_varint(&mut out, (((best_len - MIN_MATCH) as u64) << 1) | 1);
            put_varint(&mut out, best_dist as u64);
            // Index the covered positions so later matches can start inside
            // this one (cap the work for very long matches: the chain only
            // needs entry points, and runs self-reference via distance 1).
            let end = (i + best_len).min(last_hashable + 1);
            let step = 1 + best_len / 64;
            let mut j = i;
            while j < end {
                insert(&mut table, &mut prev, j);
                j += step;
            }
            i += best_len;
            lit_start = i;
        } else {
            insert(&mut table, &mut prev, i);
            i += 1;
        }
    }
    flush_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompresses `data`, expecting exactly `expected_len` output bytes.
///
/// # Errors
/// Any structural violation of the token stream (see [`CodecError`]).
pub fn decompress(data: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < data.len() {
        let token = get_varint(data, &mut pos)?;
        if token & 1 == 0 {
            let run = (token >> 1) as usize;
            let end = pos.checked_add(run).ok_or(CodecError::Truncated)?;
            if end > data.len() {
                return Err(CodecError::Truncated);
            }
            if out.len() + run > expected_len {
                return Err(CodecError::LengthOverrun);
            }
            out.extend_from_slice(&data[pos..end]);
            pos = end;
        } else {
            let len = (token >> 1) as usize + MIN_MATCH;
            let dist = get_varint(data, &mut pos)?;
            if dist == 0 || dist as usize > out.len() {
                return Err(CodecError::BadDistance {
                    dist,
                    produced: out.len(),
                });
            }
            if out.len() + len > expected_len {
                return Err(CodecError::LengthOverrun);
            }
            let d = dist as usize;
            // Overlapping copy: byte-at-a-time semantics.
            let start = out.len() - d;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::LengthUnderrun {
            produced: out.len(),
            expected: expected_len,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c, data.len()).unwrap();
        assert_eq!(d, data, "roundtrip of {} bytes", data.len());
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(roundtrip(b""), 0);
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn zero_pages_compress_massively() {
        let data = vec![0u8; 64 * 1024];
        let c = compress(&data);
        assert!(c.len() < 64, "zero page: {} compressed bytes", c.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn repeated_structure_compresses() {
        // Checkpoint-like: repeating 64-byte records with a small delta.
        let mut data = Vec::new();
        for i in 0..2048u64 {
            let mut rec = [0u8; 64];
            rec[..8].copy_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&rec);
        }
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "structured data: {} of {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes: expansion is bounded by the literal framing.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + 16);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle() {
        let mut data = vec![7u8];
        data.extend(std::iter::repeat_n(7u8, 999));
        let c = compress(&data);
        assert!(c.len() < 16, "RLE run: {} bytes", c.len());
        assert_eq!(decompress(&c, 1000).unwrap(), data);
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = vec![42u8; 512];
        let c = compress(&data);
        for cut in [1, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut], data.len()).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_expected_len_rejected() {
        let data = b"hello hello hello hello".to_vec();
        let c = compress(&data);
        assert!(matches!(
            decompress(&c, data.len() + 1),
            Err(CodecError::LengthUnderrun { .. })
        ));
        assert!(decompress(&c, data.len() - 1).is_err());
    }

    #[test]
    fn bad_distance_rejected() {
        // Hand-built stream: match before any literal.
        let mut s = Vec::new();
        put_varint(&mut s, 1); // match, len = MIN_MATCH
        put_varint(&mut s, 5); // dist 5 with 0 produced
        assert!(matches!(
            decompress(&s, 4),
            Err(CodecError::BadDistance { .. })
        ));
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // Overlong varint rejected.
        let bad = [0x80u8; 11];
        let mut pos = 0;
        assert!(get_varint(&bad, &mut pos).is_err());
    }
}
