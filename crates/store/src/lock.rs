//! Cross-process mutual exclusion for a store directory.
//!
//! Two processes sharing one `--store-dir` (a design-space sweep fanned
//! out over hosts, or the lp-farm daemon next to an ad-hoc CLI run) must
//! not interleave LPIX index read-modify-write cycles: each process keeps
//! an in-memory index, and without exclusion the last writer silently
//! drops the other's entries — artifacts stay on disk but fall out of the
//! LRU order and byte accounting ("lost" until lazily re-adopted).
//!
//! [`DirLock`] is a std-only advisory lock: a `.lpstore.lock` file created
//! with `O_CREAT|O_EXCL` (`create_new`), which is atomic on every platform
//! and filesystem Rust targets. Waiters retry with exponential backoff; a
//! lock whose file is older than [`STALE_AFTER`] is presumed orphaned by a
//! crashed process and broken. Critical sections under this lock are tiny
//! (parse + rewrite an index of a few hundred bytes), so the stale
//! threshold has orders of magnitude of headroom.
//!
//! The lock protects *metadata coherence only*. Artifact payloads never
//! need it: container files are content-addressed and written via
//! temp + fsync + rename, so concurrent writers of the same key produce
//! byte-identical files and the rename picks an arbitrary-but-valid
//! winner.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Lock file name inside the store directory.
pub const LOCK_FILE: &str = ".lpstore.lock";

/// Age beyond which a lock file is presumed orphaned and broken.
pub const STALE_AFTER: Duration = Duration::from_secs(10);

/// Default patience when waiting for a contended lock.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// An acquired directory lock; releases (removes the lock file) on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Acquires the lock for `dir`, waiting up to `timeout`.
    ///
    /// # Errors
    /// `TimedOut` when the lock stays contended past `timeout`; other
    /// filesystem errors are propagated.
    pub fn acquire(dir: &Path, timeout: Duration) -> io::Result<DirLock> {
        let path = dir.join(LOCK_FILE);
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Duration::from_millis(1);
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Holder identity, for post-mortem debugging only.
                    let _ = writeln!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    // Orphan detection: break locks past the stale age.
                    // (Re-stat immediately before removing to shrink the
                    // race against a holder that just acquired.)
                    if lock_age(&path).is_some_and(|age| age > STALE_AFTER) {
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("store lock {} contended past timeout", path.display()),
                        ));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn lock_age(path: &Path) -> Option<Duration> {
    let meta = fs::metadata(path).ok()?;
    let mtime = meta.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "lp-lock-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = tmpdir("arr");
        let lock = DirLock::acquire(&dir, Duration::from_secs(1)).unwrap();
        assert!(dir.join(LOCK_FILE).exists());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists(), "drop releases");
        let _again = DirLock::acquire(&dir, Duration::from_secs(1)).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn contended_lock_times_out() {
        let dir = tmpdir("contend");
        let _held = DirLock::acquire(&dir, Duration::from_secs(1)).unwrap();
        let err = DirLock::acquire(&dir, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serializes_threads() {
        let dir = tmpdir("serial");
        let counter_path = dir.join("counter.txt");
        fs::write(&counter_path, "0").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        let _lock = DirLock::acquire(&dir, Duration::from_secs(10)).unwrap();
                        // Unprotected read-modify-write of a shared file:
                        // any interleaving loses increments.
                        let n: u64 = fs::read_to_string(&counter_path)
                            .unwrap()
                            .trim()
                            .parse()
                            .unwrap();
                        fs::write(&counter_path, format!("{}", n + 1)).unwrap();
                    }
                });
            }
        });
        let n: u64 = fs::read_to_string(&counter_path)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(n, 100, "lock must serialize read-modify-write cycles");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken() {
        let dir = tmpdir("stale");
        let path = dir.join(LOCK_FILE);
        fs::write(&path, "dead\n").unwrap();
        // Backdate the lock file past the stale threshold by rewriting
        // its mtime via filetime-less means: set it old with utime is not
        // in std, so instead assert the behavior with a shortened wait —
        // a fresh lock must NOT be broken...
        let err = DirLock::acquire(&dir, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "fresh lock honored");
        // ...and one past STALE_AFTER must be. Simulate age by checking
        // the predicate directly (std cannot set mtimes portably).
        assert!(lock_age(&path).unwrap() < STALE_AFTER);
        let _ = fs::remove_dir_all(&dir);
    }
}
