//! The [`Store`]: a content-addressed artifact cache on disk.
//!
//! Layout of a store directory:
//!
//! ```text
//! <dir>/index.lpix                 metadata + LRU order (see index.rs)
//! <dir>/<hex128>-<kind>.lpa        sealed artifact containers
//! <dir>/<hex128>-<kind>.lpa.corrupt   quarantined failed containers
//! ```
//!
//! Every mutation is crash-safe: containers and the index are written to a
//! temp file, fsynced, then renamed into place, and the directory itself is
//! fsynced so the rename is durable. A crash at any point leaves either the
//! old state or the new state, never a torn file — and even a torn file
//! would be caught by the container checksum and quarantined on next load.
//!
//! The handle uses interior mutability (one mutex around the index and
//! session stats) so pipeline code can share `&Store` freely.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lp_obs::{names, Observer};

use crate::container::{self, ArtifactKind};
use crate::hash::Hash64;
use crate::index::Index;
use crate::lock::{DirLock, DEFAULT_TIMEOUT};

/// A 128-bit content-derived store key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey(pub [u8; 16]);

impl StoreKey {
    /// Lowercase 32-character hex rendering (used in file names).
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 32-hex-char rendering back into a key (the inverse of
    /// [`StoreKey::hex`]); `None` on any other shape. Wire paths that
    /// carry keys as text — farm job keys, cluster artifact routes —
    /// re-enter the store through here.
    pub fn from_hex(s: &str) -> Option<StoreKey> {
        let s = s.trim();
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(StoreKey(out))
    }
}

impl std::fmt::Display for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Second fixed key pair for the high half of the 128-bit key digest.
const KEY_HI: (u64, u64) = (0x9e37_79b9_7f4a_7c15, 0x2545_f491_4f6c_dd1d);

/// Builds a [`StoreKey`] from labelled fields.
///
/// Each field is absorbed as `len(label) label len(value) value`, so
/// adjacent fields can never collide by concatenation and renaming a field
/// changes the key (which is what you want: the key must pin down the exact
/// configuration that produced an artifact).
#[derive(Debug, Clone)]
pub struct StoreKeyBuilder {
    lo: Hash64,
    hi: Hash64,
}

impl StoreKeyBuilder {
    /// A builder domain-separated by `domain` (e.g. `"analysis/v1"`).
    pub fn new(domain: &str) -> Self {
        let mut b = StoreKeyBuilder {
            lo: Hash64::checksum(),
            hi: Hash64::with_key(KEY_HI.0, KEY_HI.1),
        };
        b.raw(domain.as_bytes());
        b
    }

    fn raw(&mut self, bytes: &[u8]) {
        self.lo.update(&(bytes.len() as u64).to_le_bytes());
        self.hi.update(&(bytes.len() as u64).to_le_bytes());
        self.lo.update(bytes);
        self.hi.update(bytes);
    }

    /// Absorbs a labelled byte field.
    pub fn field_bytes(&mut self, label: &str, value: &[u8]) -> &mut Self {
        self.raw(label.as_bytes());
        self.raw(value);
        self
    }

    /// Absorbs a labelled `u64`.
    pub fn field_u64(&mut self, label: &str, value: u64) -> &mut Self {
        self.field_bytes(label, &value.to_le_bytes())
    }

    /// Absorbs a labelled `f64` by bit pattern (exact, no rounding drift).
    pub fn field_f64(&mut self, label: &str, value: f64) -> &mut Self {
        self.field_u64(label, value.to_bits())
    }

    /// Absorbs a labelled bool.
    pub fn field_bool(&mut self, label: &str, value: bool) -> &mut Self {
        self.field_u64(label, u64::from(value))
    }

    /// Absorbs a labelled string.
    pub fn field_str(&mut self, label: &str, value: &str) -> &mut Self {
        self.field_bytes(label, value.as_bytes())
    }

    /// Finalizes into the 128-bit key.
    pub fn finish(&self) -> StoreKey {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.lo.clone().finish().to_le_bytes());
        out[8..].copy_from_slice(&self.hi.clone().finish().to_le_bytes());
        StoreKey(out)
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreConfig {
    /// On-disk byte budget for artifact containers (the index file is not
    /// counted; it is a few hundred bytes). `None` = unbounded.
    pub max_bytes: Option<u64>,
}

/// Session counters, readable without an enabled [`Observer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts served from disk.
    pub hits: u64,
    /// Artifacts absent (or stale) at load time.
    pub misses: u64,
    /// Artifacts removed by LRU eviction.
    pub evictions: u64,
    /// Artifacts quarantined after failing validation.
    pub corruptions: u64,
    /// Uncompressed bytes of all live artifacts.
    pub bytes_raw: u64,
    /// On-disk bytes of all live artifacts.
    pub bytes_stored: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corruptions: AtomicU64,
}

/// The artifact store handle.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    obs: Observer,
    index: Mutex<Index>,
    counters: Counters,
}

/// Writes `bytes` to `dir/name` atomically: unique temp file in the same
/// directory, fsync, rename over the target, fsync the directory.
pub(crate) fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, dir.join(name))?;
        // Durability of the rename itself: fsync the directory. Some
        // platforms refuse to open directories for writing; a failure here
        // only weakens crash-durability, never correctness, so ignore it.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

impl Store {
    /// Opens (creating if needed) the store at `dir` with default config.
    pub fn open(dir: impl AsRef<Path>, obs: Observer) -> io::Result<Store> {
        Store::open_with(dir, StoreConfig::default(), obs)
    }

    /// Opens (creating if needed) the store at `dir`.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        obs: Observer,
    ) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let index = Index::load(&dir);
        let store = Store {
            dir,
            config,
            obs,
            index: Mutex::new(index),
            counters: Counters::default(),
        };
        store.publish_gauges(&store.index.lock().expect("store index lock"));
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File name for `key`/`kind` (relative to the store directory).
    pub fn file_name(key: &StoreKey, kind: ArtifactKind) -> String {
        format!("{}-{}.lpa", key.hex(), kind.tag())
    }

    fn publish_gauges(&self, index: &Index) {
        self.obs
            .gauge(names::STORE_BYTES_RAW)
            .set(index.total_raw() as f64);
        self.obs
            .gauge(names::STORE_BYTES_COMPRESSED)
            .set(index.total_stored() as f64);
    }

    fn miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.obs.counter(names::STORE_MISS).inc();
    }

    /// Runs `f` on the index under both the in-process mutex **and** the
    /// cross-process [`DirLock`], with the index refreshed from disk first
    /// so another process's mutations are merged instead of overwritten —
    /// the full read-modify-write cycle is atomic across processes sharing
    /// one store directory. The updated index is saved and gauges
    /// republished before the lock is released.
    ///
    /// # Errors
    /// Lock acquisition (timeout) or index write failures.
    fn with_shared_index<R>(&self, f: impl FnOnce(&mut Index) -> R) -> io::Result<R> {
        let _dirlock = DirLock::acquire(&self.dir, DEFAULT_TIMEOUT)?;
        let mut index = self.index.lock().expect("store index lock");
        *index = Index::load(&self.dir);
        let r = f(&mut index);
        index.save(&self.dir)?;
        self.publish_gauges(&index);
        Ok(r)
    }

    /// Loads and verifies the artifact for `key`/`kind`.
    ///
    /// Returns the decoded payload on a hit. On a miss returns `None`. On a
    /// *corrupt* container (bad checksum, framing, or codec) the file is
    /// quarantined by renaming it to `<name>.corrupt`, the corruption is
    /// counted and logged, and `None` is returned — the caller recomputes,
    /// exactly as on a plain miss.
    pub fn load(&self, key: &StoreKey, kind: ArtifactKind) -> Option<Vec<u8>> {
        let name = Store::file_name(key, kind);
        let path = self.dir.join(&name);
        let mut span = self.obs.span(names::SPAN_STORE_LOAD, names::CAT_STORE);
        span.arg("kind", kind.tag());
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                // Absent file: also drop any stale index entry. Best
                // effort — a contended lock never blocks serving a miss.
                let _ = self.with_shared_index(|index| index.remove(&name));
                self.miss();
                return None;
            }
        };
        match container::open(&bytes, kind) {
            Ok(c) => {
                // Best effort: a contended lock never blocks serving the
                // (already decoded) payload; only LRU bookkeeping is lost.
                let _ = self.with_shared_index(|index| {
                    if !index.touch(&name) {
                        // File exists but predates the index (or the index
                        // was rebuilt): adopt it.
                        index.upsert(&name, kind, bytes.len() as u64, c.payload.len() as u64);
                    }
                });
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.obs.counter(names::STORE_HIT).inc();
                span.arg("bytes", c.payload.len() as u64);
                Some(c.payload)
            }
            Err(e) => {
                lp_obs::lp_warn!("store: quarantining corrupt artifact {name}: {e}");
                let _ = fs::rename(&path, self.dir.join(format!("{name}.corrupt")));
                let _ = self.with_shared_index(|index| index.remove(&name));
                self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
                self.obs.counter(names::STORE_CORRUPT).inc();
                self.miss();
                None
            }
        }
    }

    /// Seals and atomically persists `payload` under `key`/`kind`, then
    /// enforces the byte budget by LRU eviction.
    pub fn save(&self, key: &StoreKey, kind: ArtifactKind, payload: &[u8]) -> io::Result<()> {
        let name = Store::file_name(key, kind);
        let mut span = self.obs.span(names::SPAN_STORE_SAVE, names::CAT_STORE);
        span.arg("kind", kind.tag());
        span.arg("raw_bytes", payload.len() as u64);
        let sealed = container::seal(kind, payload);
        span.arg("stored_bytes", sealed.len() as u64);
        // The artifact itself needs no lock: content-addressed name +
        // atomic rename means concurrent writers of one key race to
        // install byte-identical files.
        write_atomic(&self.dir, &name, &sealed)?;
        self.with_shared_index(|index| {
            index.upsert(&name, kind, sealed.len() as u64, payload.len() as u64);
            if let Some(budget) = self.config.max_bytes {
                for victim in index.eviction_plan(budget) {
                    let _ = fs::remove_file(self.dir.join(&victim));
                    index.remove(&victim);
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    self.obs.counter(names::STORE_EVICT).inc();
                }
            }
        })
    }

    /// Whether an artifact file for `key`/`kind` currently exists (no
    /// validation — `load` is the authority).
    pub fn contains(&self, key: &StoreKey, kind: ArtifactKind) -> bool {
        self.dir.join(Store::file_name(key, kind)).exists()
    }

    /// Session counters + live byte totals.
    pub fn stats(&self) -> StoreStats {
        let index = self.index.lock().expect("store index lock");
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            corruptions: self.counters.corruptions.load(Ordering::Relaxed),
            bytes_raw: index.total_raw(),
            bytes_stored: index.total_stored(),
        }
    }

    /// Per-kind `(kind, stored, raw)` totals for compression-ratio stats.
    pub fn totals_by_kind(&self) -> Vec<(ArtifactKind, u64, u64)> {
        self.index
            .lock()
            .expect("store index lock")
            .totals_by_kind()
    }

    /// Number of live artifacts.
    pub fn len(&self) -> usize {
        self.index.lock().expect("store index lock").len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.index.lock().expect("store index lock").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "lp-store-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn key(n: u8) -> StoreKey {
        let mut b = StoreKeyBuilder::new("test");
        b.field_u64("n", n as u64);
        b.finish()
    }

    #[test]
    fn save_load_roundtrip_and_stats() {
        let dir = tmpdir("roundtrip");
        let store = Store::open(&dir, Observer::disabled()).unwrap();
        let payload = vec![7u8; 10_000];
        assert!(store.load(&key(1), ArtifactKind::Pinball).is_none());
        store
            .save(&key(1), ArtifactKind::Pinball, &payload)
            .unwrap();
        assert_eq!(
            store.load(&key(1), ArtifactKind::Pinball).as_deref(),
            Some(&payload[..])
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corruptions), (1, 1, 0));
        assert_eq!(s.bytes_raw, 10_000);
        assert!(s.bytes_stored < 1_000, "RLE payload should compress");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let store = Store::open(&dir, Observer::disabled()).unwrap();
            store
                .save(&key(2), ArtifactKind::Analysis, b"analysis bytes")
                .unwrap();
        }
        let store = Store::open(&dir, Observer::disabled()).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.load(&key(2), ArtifactKind::Analysis).as_deref(),
            Some(&b"analysis bytes"[..])
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_quarantines_and_recovers() {
        let dir = tmpdir("corrupt");
        let obs = Observer::enabled();
        let store = Store::open(&dir, obs.clone()).unwrap();
        store
            .save(&key(3), ArtifactKind::BbvMatrix, b"matrix payload here")
            .unwrap();
        let name = Store::file_name(&key(3), ArtifactKind::BbvMatrix);
        let path = dir.join(&name);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load(&key(3), ArtifactKind::BbvMatrix).is_none());
        assert!(!path.exists(), "corrupt file removed from live set");
        assert!(dir.join(format!("{name}.corrupt")).exists(), "quarantined");
        let s = store.stats();
        assert_eq!((s.corruptions, s.hits), (1, 0));
        assert_eq!(obs.snapshot().counters["store.corrupt"], 1);

        // Recompute-and-save works transparently afterwards.
        store
            .save(&key(3), ArtifactKind::BbvMatrix, b"matrix payload here")
            .unwrap();
        assert!(store.load(&key(3), ArtifactKind::BbvMatrix).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let dir = tmpdir("kindmix");
        let store = Store::open(&dir, Observer::disabled()).unwrap();
        store.save(&key(4), ArtifactKind::Pinball, b"pb").unwrap();
        // Same key, wrong kind: distinct file name, so a plain miss.
        assert!(store.load(&key(4), ArtifactKind::Analysis).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let dir = tmpdir("evict");
        let obs = Observer::enabled();
        let cfg = StoreConfig {
            max_bytes: Some(3 * 200),
        };
        let store = Store::open_with(&dir, cfg, obs.clone()).unwrap();
        // Incompressible payloads of ~150 stored bytes each.
        let mk = |seed: u8| -> Vec<u8> {
            let mut x = seed as u64 + 1;
            (0..120)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 33) as u8
                })
                .collect()
        };
        for i in 0..4u8 {
            store
                .save(&key(i), ArtifactKind::Checkpoints, &mk(i))
                .unwrap();
        }
        // Budget fits ~3 artifacts; key(0) is the LRU victim.
        assert!(store.stats().bytes_stored <= 600);
        assert!(store.load(&key(0), ArtifactKind::Checkpoints).is_none());
        assert!(store.load(&key(3), ArtifactKind::Checkpoints).is_some());
        assert!(store.stats().evictions >= 1);
        assert!(obs.snapshot().counters["store.evict"] >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn touch_changes_eviction_order() {
        let dir = tmpdir("touch");
        let cfg = StoreConfig {
            max_bytes: Some(260),
        };
        let store = Store::open_with(&dir, cfg, Observer::disabled()).unwrap();
        let mk = |seed: u8| -> Vec<u8> {
            let mut x = seed as u64 + 99;
            (0..80)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    (x >> 29) as u8
                })
                .collect()
        };
        store
            .save(&key(10), ArtifactKind::Pinball, &mk(10))
            .unwrap();
        store
            .save(&key(11), ArtifactKind::Pinball, &mk(11))
            .unwrap();
        // Touch key(10) so key(11) becomes the LRU entry...
        assert!(store.load(&key(10), ArtifactKind::Pinball).is_some());
        // ...then overflow the budget.
        store
            .save(&key(12), ArtifactKind::Pinball, &mk(12))
            .unwrap();
        assert!(store.contains(&key(10), ArtifactKind::Pinball));
        assert!(!store.contains(&key(11), ArtifactKind::Pinball));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_builder_is_order_and_label_sensitive() {
        let k1 = {
            let mut b = StoreKeyBuilder::new("d");
            b.field_u64("a", 1).field_u64("b", 2);
            b.finish()
        };
        let k2 = {
            let mut b = StoreKeyBuilder::new("d");
            b.field_u64("b", 2).field_u64("a", 1);
            b.finish()
        };
        let k3 = {
            let mut b = StoreKeyBuilder::new("d");
            b.field_u64("a", 1).field_u64("c", 2);
            b.finish()
        };
        let k4 = {
            let mut b = StoreKeyBuilder::new("e");
            b.field_u64("a", 1).field_u64("b", 2);
            b.finish()
        };
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
        // Deterministic across builders.
        let k1b = {
            let mut b = StoreKeyBuilder::new("d");
            b.field_u64("a", 1).field_u64("b", 2);
            b.finish()
        };
        assert_eq!(k1, k1b);
        assert_eq!(k1.hex().len(), 32);
    }

    #[test]
    fn stale_index_entry_dropped_cleanly() {
        let dir = tmpdir("stale");
        let store = Store::open(&dir, Observer::disabled()).unwrap();
        store
            .save(&key(5), ArtifactKind::Clustering, b"clusters")
            .unwrap();
        // Delete the artifact behind the index's back.
        fs::remove_file(dir.join(Store::file_name(&key(5), ArtifactKind::Clustering))).unwrap();
        assert!(store.load(&key(5), ArtifactKind::Clustering).is_none());
        assert_eq!(store.len(), 0, "stale entry dropped");
        fs::remove_dir_all(&dir).unwrap();
    }
}
