//! The store's metadata index: a small, human-readable file mapping
//! artifact file names to sizes and access order.
//!
//! The index is a *cache of metadata*, never a source of truth — artifact
//! integrity lives in each container's own checksum. If the index file is
//! missing or malformed the store rebuilds an empty one and re-discovers
//! artifacts lazily (a stale index entry for a deleted file is dropped on
//! first touch; an on-disk file absent from the index is simply re-saved on
//! the next miss). This keeps the failure story simple: nothing in the
//! index can corrupt a payload.
//!
//! Format (one record per line, fields space-separated; file names are
//! `<hex key>-<kind tag>.lpa` and never contain spaces):
//!
//! ```text
//! LPIX 1 <next_seq>
//! <file_name> <kind> <stored_bytes> <raw_bytes> <access_seq> <unix_atime>
//! ...
//! ```
//!
//! LRU order is the persisted `access_seq` counter, not filesystem atime:
//! it is deterministic, testable, and immune to `noatime` mounts.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::container::ArtifactKind;

/// Index file name inside the store directory.
pub const INDEX_FILE: &str = "index.lpix";
/// Index format magic + version line prefix.
const INDEX_MAGIC: &str = "LPIX";
/// Current index format version.
const INDEX_VERSION: u32 = 1;

/// Per-artifact metadata record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Artifact kind (redundant with the file-name tag; kept for cheap
    /// per-kind stats without string parsing).
    pub kind: ArtifactKind,
    /// On-disk container size in bytes (header + stored payload + trailer).
    pub stored_bytes: u64,
    /// Uncompressed payload size in bytes.
    pub raw_bytes: u64,
    /// Monotonic access sequence number; higher = more recently used.
    pub access_seq: u64,
    /// Seconds since the Unix epoch at last access (informational only).
    pub unix_atime: u64,
}

/// The in-memory index: file name → entry, plus the LRU counter.
#[derive(Debug, Default)]
pub struct Index {
    entries: BTreeMap<String, IndexEntry>,
    next_seq: u64,
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Index {
    /// Loads the index from `dir`, tolerating absence and corruption (both
    /// yield an empty index — see the module docs for why that is safe).
    pub fn load(dir: &Path) -> Index {
        let path = dir.join(INDEX_FILE);
        let Ok(text) = fs::read_to_string(&path) else {
            return Index::default();
        };
        Index::parse(&text).unwrap_or_default()
    }

    fn parse(text: &str) -> Option<Index> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut h = header.split_ascii_whitespace();
        if h.next()? != INDEX_MAGIC {
            return None;
        }
        let version: u32 = h.next()?.parse().ok()?;
        if version != INDEX_VERSION {
            return None;
        }
        let mut next_seq: u64 = h.next()?.parse().ok()?;
        let mut entries = BTreeMap::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut f = line.split_ascii_whitespace();
            let name = f.next()?.to_string();
            let kind = ArtifactKind::from_u16(f.next()?.parse().ok()?)?;
            let entry = IndexEntry {
                kind,
                stored_bytes: f.next()?.parse().ok()?,
                raw_bytes: f.next()?.parse().ok()?,
                access_seq: f.next()?.parse().ok()?,
                unix_atime: f.next()?.parse().ok()?,
            };
            next_seq = next_seq.max(entry.access_seq + 1);
            entries.insert(name, entry);
        }
        Some(Index { entries, next_seq })
    }

    fn render(&self) -> String {
        let mut out = format!("{INDEX_MAGIC} {INDEX_VERSION} {}\n", self.next_seq);
        for (name, e) in &self.entries {
            out.push_str(&format!(
                "{name} {} {} {} {} {}\n",
                e.kind as u16, e.stored_bytes, e.raw_bytes, e.access_seq, e.unix_atime
            ));
        }
        out
    }

    /// Atomically persists the index into `dir` (temp + fsync + rename).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        crate::store::write_atomic(dir, INDEX_FILE, self.render().as_bytes())
    }

    /// Records (or refreshes) `name` after a successful save.
    pub fn upsert(&mut self, name: &str, kind: ArtifactKind, stored_bytes: u64, raw_bytes: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            name.to_string(),
            IndexEntry {
                kind,
                stored_bytes,
                raw_bytes,
                access_seq: seq,
                unix_atime: now_unix(),
            },
        );
    }

    /// Bumps `name` to most-recently-used. Returns false if unknown.
    pub fn touch(&mut self, name: &str) -> bool {
        match self.entries.get_mut(name) {
            Some(e) => {
                e.access_seq = self.next_seq;
                e.unix_atime = now_unix();
                self.next_seq += 1;
                true
            }
            None => false,
        }
    }

    /// Drops `name` from the index (eviction, quarantine, or staleness).
    pub fn remove(&mut self, name: &str) -> Option<IndexEntry> {
        self.entries.remove(name)
    }

    /// Looks up one entry.
    pub fn get(&self, name: &str) -> Option<&IndexEntry> {
        self.entries.get(name)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total on-disk bytes across live entries.
    pub fn total_stored(&self) -> u64 {
        self.entries.values().map(|e| e.stored_bytes).sum()
    }

    /// Total uncompressed bytes across live entries.
    pub fn total_raw(&self) -> u64 {
        self.entries.values().map(|e| e.raw_bytes).sum()
    }

    /// Per-kind `(stored, raw)` byte totals, in [`ArtifactKind::ALL`] order.
    pub fn totals_by_kind(&self) -> Vec<(ArtifactKind, u64, u64)> {
        ArtifactKind::ALL
            .into_iter()
            .map(|k| {
                let (mut s, mut r) = (0u64, 0u64);
                for e in self.entries.values().filter(|e| e.kind == k) {
                    s += e.stored_bytes;
                    r += e.raw_bytes;
                }
                (k, s, r)
            })
            .collect()
    }

    /// File names to evict (least-recently-used first) so the remaining
    /// stored bytes fit under `budget`. The most recently used entry is
    /// never selected: evicting the artifact that was just written would
    /// make the store useless whenever one artifact alone exceeds the
    /// budget.
    pub fn eviction_plan(&self, budget: u64) -> Vec<String> {
        let mut total = self.total_stored();
        if total <= budget {
            return Vec::new();
        }
        let mut by_age: Vec<(&String, &IndexEntry)> = self.entries.iter().collect();
        by_age.sort_by_key(|(_, e)| e.access_seq);
        let mut plan = Vec::new();
        // Skip the newest entry (last after the sort).
        for (name, e) in by_age.iter().take(by_age.len().saturating_sub(1)) {
            if total <= budget {
                break;
            }
            total -= e.stored_bytes;
            plan.push((*name).clone());
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let mut ix = Index::default();
        ix.upsert("aa-pinball.lpa", ArtifactKind::Pinball, 100, 400);
        ix.upsert("bb-bbv.lpa", ArtifactKind::BbvMatrix, 50, 60);
        ix.touch("aa-pinball.lpa");
        let text = ix.render();
        let back = Index::parse(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("aa-pinball.lpa"), ix.get("aa-pinball.lpa"));
        assert_eq!(back.get("bb-bbv.lpa"), ix.get("bb-bbv.lpa"));
        // next_seq resumes past the highest persisted seq.
        assert!(back.next_seq > back.get("aa-pinball.lpa").unwrap().access_seq);
    }

    #[test]
    fn malformed_text_yields_empty() {
        assert!(Index::parse("garbage").is_none());
        assert!(Index::parse("LPIX 99 0\n").is_none());
        assert!(Index::parse("LPIX 1 0\nname notanumber 1 2 3 4\n").is_none());
    }

    #[test]
    fn eviction_is_lru_and_spares_newest() {
        let mut ix = Index::default();
        ix.upsert("a", ArtifactKind::Pinball, 100, 100);
        ix.upsert("b", ArtifactKind::Analysis, 100, 100);
        ix.upsert("c", ArtifactKind::Clustering, 100, 100);
        ix.touch("a"); // order oldest→newest is now b, c, a
        let plan = ix.eviction_plan(150);
        assert_eq!(plan, vec!["b".to_string(), "c".to_string()]);
        // Even a zero budget never evicts the most recent entry.
        let plan = ix.eviction_plan(0);
        assert_eq!(plan, vec!["b".to_string(), "c".to_string()]);
        // Under budget: no evictions.
        assert!(ix.eviction_plan(1000).is_empty());
    }

    #[test]
    fn totals_by_kind_partition_totals() {
        let mut ix = Index::default();
        ix.upsert("a", ArtifactKind::Pinball, 10, 40);
        ix.upsert("b", ArtifactKind::Pinball, 20, 50);
        ix.upsert("c", ArtifactKind::Checkpoints, 5, 5);
        let by_kind = ix.totals_by_kind();
        let stored: u64 = by_kind.iter().map(|(_, s, _)| s).sum();
        let raw: u64 = by_kind.iter().map(|(_, _, r)| r).sum();
        assert_eq!(stored, ix.total_stored());
        assert_eq!(raw, ix.total_raw());
        let pin = by_kind
            .iter()
            .find(|(k, _, _)| *k == ArtifactKind::Pinball)
            .unwrap();
        assert_eq!((pin.1, pin.2), (30, 90));
    }
}
