//! The versioned on-disk artifact container.
//!
//! Every stored artifact is wrapped in one self-describing binary envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "LPAC"
//! 4       4     format version (u32 LE)
//! 8       2     payload kind   (u16 LE, see ArtifactKind)
//! 10      1     codec          (0 = raw, 1 = LZ)
//! 11      1     reserved (0)
//! 12      8     raw (uncompressed) payload length (u64 LE)
//! 20      8     stored payload length (u64 LE)
//! 28      n     payload bytes
//! 28+n    8     SipHash-2-4 checksum of bytes [0, 28+n) (u64 LE)
//! ```
//!
//! The checksum covers header *and* payload, so a flipped byte anywhere in
//! the file — including in the kind or length fields — is detected before
//! any payload byte is interpreted.

use crate::codec::{self, CodecError};
use crate::hash::Hash64;

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"LPAC";
/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;
/// Header length in bytes (before the payload).
pub const HEADER_LEN: usize = 28;
/// Checksum trailer length in bytes.
pub const TRAILER_LEN: usize = 8;

/// What an artifact contains. The discriminants are the on-disk `kind`
/// field and must never be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ArtifactKind {
    /// A whole-program pinball (`lp_pinball::Pinball::write_to` bytes).
    Pinball = 1,
    /// Analysis metadata: DCFG parts + selected looppoint regions.
    Analysis = 2,
    /// The BBV matrix: the loop-aligned, spin-filtered slice profile.
    BbvMatrix = 3,
    /// Clustering results (assignments, representatives, scores).
    Clustering = 4,
    /// Prepared region checkpoints (machine states + watch counts).
    Checkpoints = 5,
    /// A finished farm job's summary document (terminal pipeline output),
    /// so a restarted daemon serves repeat work without re-simulating.
    JobSummary = 6,
}

impl ArtifactKind {
    /// All defined kinds.
    pub const ALL: [ArtifactKind; 6] = [
        ArtifactKind::Pinball,
        ArtifactKind::Analysis,
        ArtifactKind::BbvMatrix,
        ArtifactKind::Clustering,
        ArtifactKind::Checkpoints,
        ArtifactKind::JobSummary,
    ];

    /// Decodes a kind from its on-disk discriminant.
    pub fn from_u16(v: u16) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| *k as u16 == v)
    }

    /// Decodes a kind from its [`ArtifactKind::tag`] (the inverse; used
    /// by wire paths that name kinds in URLs).
    pub fn from_tag(tag: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Short lowercase tag used in file names and metrics.
    pub fn tag(self) -> &'static str {
        match self {
            ArtifactKind::Pinball => "pinball",
            ArtifactKind::Analysis => "analysis",
            ArtifactKind::BbvMatrix => "bbv",
            ArtifactKind::Clustering => "clustering",
            ArtifactKind::Checkpoints => "checkpoints",
            ArtifactKind::JobSummary => "jobsummary",
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Why a container failed to open.
#[derive(Debug)]
pub enum ContainerError {
    /// File shorter than header + trailer.
    TooShort,
    /// Magic bytes mismatch.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Unknown payload kind discriminant.
    BadKind(u16),
    /// Kind in the file differs from the kind requested.
    KindMismatch {
        /// Kind found in the container.
        found: ArtifactKind,
        /// Kind the caller asked for.
        want: ArtifactKind,
    },
    /// Declared payload length disagrees with the file size.
    LengthMismatch,
    /// Checksum trailer does not match the content.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum recomputed from the content.
        computed: u64,
    },
    /// Unknown codec byte.
    BadCodec(u8),
    /// The payload failed to decompress.
    Codec(CodecError),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::TooShort => write!(f, "container shorter than header"),
            ContainerError::BadMagic => write!(f, "bad container magic"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::BadKind(k) => write!(f, "unknown artifact kind {k}"),
            ContainerError::KindMismatch { found, want } => {
                write!(f, "artifact kind {found} where {want} expected")
            }
            ContainerError::LengthMismatch => write!(f, "container length fields inconsistent"),
            ContainerError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            ContainerError::BadCodec(c) => write!(f, "unknown codec byte {c}"),
            ContainerError::Codec(e) => write!(f, "payload decompression failed: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// A parsed container.
#[derive(Debug)]
pub struct Container {
    /// Payload kind.
    pub kind: ArtifactKind,
    /// Decompressed payload bytes.
    pub payload: Vec<u8>,
    /// Stored (possibly compressed) payload length.
    pub stored_len: u64,
}

/// Seals `payload` of `kind` into container bytes, compressing when the
/// codec actually shrinks the payload (raw otherwise, so pathological
/// inputs never expand past the fixed framing).
pub fn seal(kind: ArtifactKind, payload: &[u8]) -> Vec<u8> {
    let compressed = codec::compress(payload);
    let (codec_byte, stored): (u8, &[u8]) = if compressed.len() < payload.len() {
        (1, &compressed)
    } else {
        (0, payload)
    };
    let mut out = Vec::with_capacity(HEADER_LEN + stored.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(kind as u16).to_le_bytes());
    out.push(codec_byte);
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&(stored.len() as u64).to_le_bytes());
    out.extend_from_slice(stored);
    let mut h = Hash64::checksum();
    h.update(&out);
    let sum = h.finish();
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Opens container `bytes`, verifying framing and checksum and expecting
/// `want` as the payload kind.
///
/// # Errors
/// Every corruption mode maps to a distinct [`ContainerError`].
pub fn open(bytes: &[u8], want: ArtifactKind) -> Result<Container, ContainerError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(ContainerError::TooShort);
    }
    let (content, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
    let stored_sum = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let mut h = Hash64::checksum();
    h.update(content);
    let computed = h.finish();
    if computed != stored_sum {
        return Err(ContainerError::ChecksumMismatch {
            stored: stored_sum,
            computed,
        });
    }
    if content[0..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = u32::from_le_bytes(content[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let kind_raw = u16::from_le_bytes(content[8..10].try_into().expect("2 bytes"));
    let kind = ArtifactKind::from_u16(kind_raw).ok_or(ContainerError::BadKind(kind_raw))?;
    if kind != want {
        return Err(ContainerError::KindMismatch { found: kind, want });
    }
    let codec_byte = content[10];
    let raw_len = u64::from_le_bytes(content[12..20].try_into().expect("8 bytes"));
    let stored_len = u64::from_le_bytes(content[20..28].try_into().expect("8 bytes"));
    let stored = &content[HEADER_LEN..];
    if stored.len() as u64 != stored_len {
        return Err(ContainerError::LengthMismatch);
    }
    let payload = match codec_byte {
        0 => {
            if raw_len != stored_len {
                return Err(ContainerError::LengthMismatch);
            }
            stored.to_vec()
        }
        1 => codec::decompress(stored, raw_len as usize).map_err(ContainerError::Codec)?,
        other => return Err(ContainerError::BadCodec(other)),
    };
    Ok(Container {
        kind,
        payload,
        stored_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip_all_kinds() {
        let payload: Vec<u8> = (0..5000u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        for kind in ArtifactKind::ALL {
            let sealed = seal(kind, &payload);
            let c = open(&sealed, kind).unwrap();
            assert_eq!(c.kind, kind);
            assert_eq!(c.payload, payload);
        }
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let sealed = seal(ArtifactKind::Pinball, b"some payload bytes some payload");
        for pos in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[pos] ^= 0x40;
            assert!(
                open(&bad, ArtifactKind::Pinball).is_err(),
                "flip at byte {pos} survived"
            );
        }
    }

    #[test]
    fn kind_mismatch_rejected() {
        let sealed = seal(ArtifactKind::Analysis, b"x");
        assert!(matches!(
            open(&sealed, ArtifactKind::Pinball),
            Err(ContainerError::KindMismatch { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let sealed = seal(ArtifactKind::BbvMatrix, &vec![9u8; 4000]);
        for cut in [0, 5, HEADER_LEN, sealed.len() - 1] {
            assert!(open(&sealed[..cut], ArtifactKind::BbvMatrix).is_err());
        }
    }

    #[test]
    fn incompressible_payload_stored_raw() {
        let mut x = 12345u64;
        let noise: Vec<u8> = (0..300)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let sealed = seal(ArtifactKind::Clustering, &noise);
        assert_eq!(sealed.len(), HEADER_LEN + noise.len() + TRAILER_LEN);
        assert_eq!(
            open(&sealed, ArtifactKind::Clustering).unwrap().payload,
            noise
        );
    }

    #[test]
    fn kind_discriminants_are_stable() {
        assert_eq!(ArtifactKind::Pinball as u16, 1);
        assert_eq!(ArtifactKind::Analysis as u16, 2);
        assert_eq!(ArtifactKind::BbvMatrix as u16, 3);
        assert_eq!(ArtifactKind::Clustering as u16, 4);
        assert_eq!(ArtifactKind::Checkpoints as u16, 5);
        for k in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::from_u16(k as u16), Some(k));
        }
        assert_eq!(ArtifactKind::from_u16(0), None);
        assert_eq!(ArtifactKind::from_u16(99), None);
    }
}
