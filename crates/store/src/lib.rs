//! # lp-store — persistent content-addressed artifact store
//!
//! LoopPoint's front half (record → replay/DCFG → BBV slicing → clustering
//! → checkpoint generation) is deterministic in the program, the workload
//! scale, and the analysis configuration. That makes its outputs perfect
//! cache material: key them by a stable content hash and a design-space
//! sweep that varies only simulator parameters can skip the entire analysis
//! on every configuration after the first.
//!
//! This crate is the storage layer, std-only and dependency-free (except
//! `lp-obs` for metrics/spans):
//!
//! * [`hash`] — SipHash-2-4, streaming, plus a 128-bit composite digest;
//! * [`codec`] — an LZ77-with-varints compression codec tuned for
//!   checkpoint payloads (zero pages, repeated records);
//! * [`container`] — the versioned sealed envelope (magic, version, kind,
//!   lengths, whole-file checksum trailer);
//! * [`index`] — the metadata index with deterministic LRU order;
//! * [`store`] — the [`Store`] API: crash-safe atomic writes, quarantine
//!   of corrupt artifacts, byte-budget eviction, and hit/miss/corrupt
//!   counters mirrored into `lp-obs`.
//!
//! What this crate deliberately does **not** know: how to encode a pinball
//! or an analysis result. Callers (`looppoint::persist`) bring their own
//! payload encodings; the store deals in opaque bytes plus an
//! [`ArtifactKind`] tag so a mixed-up file can never be decoded as the
//! wrong thing.
//!
//! ```
//! use lp_store::{ArtifactKind, Store, StoreKeyBuilder};
//!
//! let dir = std::env::temp_dir().join(format!("lp-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir, lp_obs::Observer::disabled())?;
//!
//! let mut kb = StoreKeyBuilder::new("analysis/v1");
//! kb.field_str("program", "demo").field_u64("nthreads", 4);
//! let key = kb.finish();
//!
//! assert!(store.load(&key, ArtifactKind::Analysis).is_none()); // miss
//! store.save(&key, ArtifactKind::Analysis, b"expensive result")?;
//! assert_eq!(
//!     store.load(&key, ArtifactKind::Analysis).as_deref(),
//!     Some(&b"expensive result"[..])                           // hit
//! );
//! assert_eq!(store.stats().hits, 1);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod container;
pub mod hash;
pub mod index;
pub mod lock;
pub mod store;

pub use container::{ArtifactKind, Container, ContainerError};
pub use hash::{checksum64, digest128, Hash64};
pub use lock::DirLock;
pub use store::{Store, StoreConfig, StoreKey, StoreKeyBuilder, StoreStats};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn codec_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = crate::codec::compress(&data);
            let d = crate::codec::decompress(&c, data.len()).unwrap();
            prop_assert_eq!(d, data);
        }

        #[test]
        fn container_roundtrips_and_rejects_flips(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            flip in any::<u16>(),
        ) {
            let sealed = crate::container::seal(crate::ArtifactKind::Checkpoints, &data);
            let opened = crate::container::open(&sealed, crate::ArtifactKind::Checkpoints).unwrap();
            prop_assert_eq!(&opened.payload, &data);
            let pos = (flip as usize) % sealed.len();
            let mut bad = sealed.clone();
            bad[pos] ^= 0x01;
            prop_assert!(crate::container::open(&bad, crate::ArtifactKind::Checkpoints).is_err());
        }
    }
}
