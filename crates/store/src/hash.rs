//! Keyed hashing: SipHash-2-4 (64-bit) plus a 128-bit composite digest.
//!
//! The store needs two things from a hash: **content addressing** (a stable
//! key derived from program bytes and configuration, strong enough that two
//! different inputs essentially never collide) and **integrity checking**
//! (any flipped byte in a stored container must change the trailer). Both
//! are served by SipHash-2-4, a small, well-studied keyed PRF that is
//! straightforward to implement in safe `std`-only Rust and fully
//! deterministic across platforms (all arithmetic is explicit
//! little-endian / wrapping).
//!
//! [`Hash64`] is a streaming hasher (it implements [`std::io::Write`], so
//! existing `write_to(&mut impl Write)` encoders can be piped straight into
//! it without buffering). [`digest128`] runs two independently-keyed
//! SipHash instances over the same bytes for a 128-bit content key.

use std::io::{self, Write};

/// Fixed key for checksums (the store is not defending against adversarial
/// collisions, only corruption — a public fixed key is fine and keeps
/// digests stable across processes).
const CHECKSUM_KEY: (u64, u64) = (0x4c50_5354_4f52_4531, 0x6c6f_6f70_706f_696e);

/// Second fixed key pair for the high half of [`digest128`].
const DIGEST_HI_KEY: (u64, u64) = (0x9e37_79b9_7f4a_7c15, 0x2545_f491_4f6c_dd1d);

#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Streaming SipHash-2-4 (64-bit output) with an explicit key.
#[derive(Debug, Clone)]
pub struct Hash64 {
    v: [u64; 4],
    buf: [u8; 8],
    buf_len: usize,
    total: u64,
}

impl Hash64 {
    /// A hasher keyed with `(k0, k1)`.
    pub fn with_key(k0: u64, k1: u64) -> Self {
        Hash64 {
            v: [
                k0 ^ 0x736f_6d65_7073_6575,
                k1 ^ 0x646f_7261_6e64_6f6d,
                k0 ^ 0x6c79_6765_6e65_7261,
                k1 ^ 0x7465_6462_7974_6573,
            ],
            buf: [0; 8],
            buf_len: 0,
            total: 0,
        }
    }

    /// The checksum-keyed hasher used by the container format.
    pub fn checksum() -> Self {
        Hash64::with_key(CHECKSUM_KEY.0, CHECKSUM_KEY.1)
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v[3] ^= m;
        sip_round(&mut self.v);
        sip_round(&mut self.v);
        self.v[0] ^= m;
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.buf_len > 0 {
            let need = 8 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 8 {
                let m = u64::from_le_bytes(self.buf);
                self.compress(m);
                self.buf_len = 0;
            }
        }
        if rest.is_empty() {
            // Everything was absorbed into the partial buffer above; do not
            // clobber buf_len.
            return;
        }
        // Invariant: reaching here means the partial buffer is empty (if it
        // had bytes, it either filled to 8 and was flushed, or it consumed
        // all of `rest`).
        debug_assert_eq!(self.buf_len, 0);
        let mut chunks = rest.chunks_exact(8);
        for c in &mut chunks {
            let m = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.compress(m);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Finalizes and returns the 64-bit digest.
    pub fn finish(mut self) -> u64 {
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = (self.total & 0xff) as u8;
        let m = u64::from_le_bytes(last);
        self.compress(m);
        self.v[2] ^= 0xff;
        for _ in 0..4 {
            sip_round(&mut self.v);
        }
        self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3]
    }
}

impl Write for Hash64 {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One-shot checksum of `bytes` with the container key.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = Hash64::checksum();
    h.update(bytes);
    h.finish()
}

/// 128-bit content digest: two independently-keyed SipHash-2-4 runs.
pub fn digest128(bytes: &[u8]) -> [u8; 16] {
    let mut lo = Hash64::checksum();
    let mut hi = Hash64::with_key(DIGEST_HI_KEY.0, DIGEST_HI_KEY.1);
    lo.update(bytes);
    hi.update(bytes);
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&lo.finish().to_le_bytes());
    out[8..].copy_from_slice(&hi.finish().to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let whole = checksum64(&data);
        for split in [0, 1, 7, 8, 9, 63, 999, data.len()] {
            let mut h = Hash64::checksum();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
        // Byte-at-a-time.
        let mut h = Hash64::checksum();
        for b in &data {
            h.update(&[*b]);
        }
        assert_eq!(h.finish(), whole);
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 4096];
        data[100] = 7;
        let base = checksum64(&data);
        for pos in [0usize, 1, 100, 2048, 4095] {
            for bit in [0u8, 3, 7] {
                let mut d = data.clone();
                d[pos] ^= 1 << bit;
                assert_ne!(checksum64(&d), base, "flip at {pos}:{bit} undetected");
            }
        }
    }

    #[test]
    fn length_extension_suffixes_differ() {
        // Same prefix, different lengths: digests must differ (the length
        // is folded into the final block).
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(b"ab"), checksum64(b"ab\0"));
    }

    #[test]
    fn digest128_halves_are_independent() {
        let a = digest128(b"hello world");
        let b = digest128(b"hello worle");
        assert_ne!(a, b);
        assert_ne!(&a[..8], &a[8..], "keys differ so halves differ");
    }

    #[test]
    fn write_impl_feeds_hasher() {
        use std::io::Write as _;
        let mut h = Hash64::checksum();
        h.write_all(b"abcdef").unwrap();
        assert_eq!(h.finish(), checksum64(b"abcdef"));
    }
}
