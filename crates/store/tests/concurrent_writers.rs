//! Cross-process store-sharing regression test.
//!
//! Before the `DirLock` fix, two processes sharing one `--store-dir` each
//! held an in-memory LPIX index and saved it wholesale after every
//! mutation: the last writer silently overwrote the other's entries, so
//! artifacts fell out of the index ("lost" — wrong LRU order, wrong byte
//! totals, eviction planning over a partial view). This test spawns two
//! *real* writer processes (the test binary re-executes itself in helper
//! mode) hammering one directory and asserts that the final index is
//! complete and coherent.

use lp_store::{ArtifactKind, Store, StoreKeyBuilder};
use std::process::Command;

const HELPER_ENV: &str = "LP_STORE_WRITER_HELPER";
const WRITES_PER_WRITER: usize = 24;

fn writer_key(writer: &str, n: usize) -> lp_store::StoreKey {
    let mut b = StoreKeyBuilder::new("two-writers/v1");
    b.field_str("writer", writer).field_u64("n", n as u64);
    b.finish()
}

fn writer_payload(writer: &str, n: usize) -> Vec<u8> {
    // Mildly incompressible, unique per (writer, n).
    let seed = writer.len() as u64 * 131 + n as u64;
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..256)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

/// Helper-mode body: run as a separate process by the test below.
fn writer_main(dir: &str, name: &str) {
    let store = Store::open(dir, lp_obs::Observer::disabled()).expect("helper opens store");
    for n in 0..WRITES_PER_WRITER {
        store
            .save(
                &writer_key(name, n),
                ArtifactKind::Analysis,
                &writer_payload(name, n),
            )
            .expect("helper save");
        // Interleave loads so touch/save index cycles contend too.
        assert!(store
            .load(&writer_key(name, n), ArtifactKind::Analysis)
            .is_some());
    }
}

#[test]
fn two_processes_share_a_store_without_losing_artifacts() {
    if let Ok(spec) = std::env::var(HELPER_ENV) {
        let (dir, name) = spec.split_once('|').expect("helper spec");
        writer_main(dir, name);
        return;
    }

    let dir = std::env::temp_dir().join(format!(
        "lp-store-two-writers-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();

    let spawn = |name: &str| {
        Command::new(&exe)
            .args([
                "two_processes_share_a_store_without_losing_artifacts",
                "--exact",
                "--nocapture",
            ])
            .env(HELPER_ENV, format!("{}|{name}", dir.display()))
            .spawn()
            .expect("spawn writer process")
    };
    let mut a = spawn("alpha");
    let mut b = spawn("beta");
    assert!(a.wait().unwrap().success(), "writer alpha failed");
    assert!(b.wait().unwrap().success(), "writer beta failed");

    // A fresh handle sees a coherent, complete index: every artifact from
    // both writers present, loadable, and accounted.
    let store = Store::open(&dir, lp_obs::Observer::disabled()).unwrap();
    assert_eq!(
        store.len(),
        2 * WRITES_PER_WRITER,
        "index lost artifacts under concurrent writers"
    );
    for name in ["alpha", "beta"] {
        for n in 0..WRITES_PER_WRITER {
            let got = store.load(&writer_key(name, n), ArtifactKind::Analysis);
            assert_eq!(
                got.as_deref(),
                Some(&writer_payload(name, n)[..]),
                "lost or corrupted artifact {name}/{n}"
            );
        }
    }
    let stats = store.stats();
    assert_eq!(stats.corruptions, 0);
    assert_eq!(stats.bytes_raw, (2 * WRITES_PER_WRITER * 256) as u64);
    // No stale lock file survives an orderly shutdown.
    assert!(
        !dir.join(lp_store::lock::LOCK_FILE).exists(),
        "lock file leaked"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
