//! Seeded random linear projection of sparse vectors.

/// Projects L1-normalized sparse vectors into `dims` dimensions using a
//  sign-random projection derived from a hash of `(input dim, output dim,
/// seed)` — equivalent to a ±1 random matrix without materializing it over
/// the unbounded sparse dimension space (the paper projects BBVs to 100
/// dimensions, §III-E).
pub fn project(vectors: &[&[(u64, f64)]], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(dims > 0);
    vectors
        .iter()
        .map(|entries| project_one(entries, dims, seed))
        .collect()
}

/// Projects a single sparse vector — the same arithmetic [`project`]
/// applies per vector, exposed so online (live-mode) classification can
/// place incrementally built BBVs into the *same* projected space a batch
/// clustering over the same profile would use.
pub fn project_one(entries: &[(u64, f64)], dims: usize, seed: u64) -> Vec<f64> {
    assert!(dims > 0);
    let l1: f64 = entries.iter().map(|&(_, w)| w).sum();
    let scale = if l1 > 0.0 { 1.0 / l1 } else { 0.0 };
    let mut out = vec![0.0f64; dims];
    for &(d, w) in entries.iter() {
        let wn = w * scale;
        for (j, slot) in out.iter_mut().enumerate() {
            if sign(d, j as u64, seed) {
                *slot += wn;
            } else {
                *slot -= wn;
            }
        }
    }
    out
}

fn sign(dim: u64, j: u64, seed: u64) -> bool {
    // SplitMix64-style mix over the triple.
    let mut x = dim
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(j.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(seed);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_project_identically() {
        let a = vec![(3u64, 5.0), (9, 1.0)];
        let p = project(&[&a, &a], 16, 42);
        assert_eq!(p[0], p[1]);
        assert_eq!(p[0].len(), 16);
    }

    #[test]
    fn scaling_is_removed_by_normalization() {
        let a = vec![(3u64, 5.0), (9, 1.0)];
        let b = vec![(3u64, 50.0), (9, 10.0)];
        let p = project(&[&a, &b], 16, 42);
        for (x, y) in p[0].iter().zip(&p[1]) {
            assert!((x - y).abs() < 1e-12, "L1 normalization makes them equal");
        }
    }

    #[test]
    fn different_vectors_differ() {
        let a = vec![(3u64, 1.0)];
        let b = vec![(4u64, 1.0)];
        let p = project(&[&a, &b], 32, 42);
        assert_ne!(p[0], p[1]);
    }

    #[test]
    fn distance_roughly_preserved() {
        // Close sparse vectors stay closer than distant ones after
        // projection (Johnson-Lindenstrauss flavour, sanity only).
        let a = vec![(0u64, 10.0), (1, 10.0)];
        let b = vec![(0u64, 10.0), (1, 9.0)]; // close to a
        let c = vec![(7u64, 10.0), (8, 10.0)]; // far from a
        let p = project(&[&a, &b, &c], 64, 7);
        let d = |x: &Vec<f64>, y: &Vec<f64>| -> f64 {
            x.iter().zip(y).map(|(u, v)| (u - v) * (u - v)).sum()
        };
        assert!(d(&p[0], &p[1]) < d(&p[0], &p[2]));
    }

    #[test]
    fn seed_changes_projection() {
        let a = vec![(3u64, 5.0)];
        let p1 = project(&[&a], 32, 1);
        let p2 = project(&[&a], 32, 2);
        assert_ne!(p1[0], p2[0]);
    }
}
