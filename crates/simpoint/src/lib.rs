//! # lp-simpoint — SimPoint-style clustering
//!
//! The clustering machinery of §III-E: basic-block vectors are projected
//! down to a small number of dimensions (the paper uses 100) by a random
//! linear projection, clustered with k-means for every candidate cluster
//! count up to `maxK = 50`, and the final clustering chosen by the
//! Bayesian Information Criterion — the smallest `k` whose BIC score
//! reaches a fixed fraction of the best observed score, exactly the
//! SimPoint 3.2 selection rule.
//!
//! The crate is self-contained (it knows nothing about programs or BBVs):
//! inputs are sparse `(dimension, weight)` vectors, outputs are cluster
//! assignments plus one representative index per cluster (the member
//! closest to its centroid).
//!
//! All randomness (projection hashing, k-means++ seeding) is derived from
//! an explicit seed, making the whole LoopPoint pipeline reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bic;
mod kmeans;
mod projection;

pub use bic::bic_score;
pub use kmeans::{kmeans, KmeansResult};
pub use projection::{project, project_one};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`cluster`].
#[derive(Debug, Clone, Copy)]
pub struct SimpointConfig {
    /// Maximum number of clusters to consider (paper: 50).
    pub max_k: usize,
    /// Random-projection target dimensionality (paper: 100).
    pub proj_dims: usize,
    /// Seed for projection and k-means initialization.
    pub seed: u64,
    /// Select the smallest k whose BIC ≥ `bic_threshold × best BIC`
    /// (SimPoint's default is 0.9).
    pub bic_threshold: f64,
    /// Lloyd-iteration budget per k.
    pub max_iters: usize,
    /// Run the per-k sweep on a bounded thread pool. The k = 1..max_k
    /// Lloyd runs are independent and each gets a deterministic per-k seed
    /// (drawn serially up front), so the result is **bit-identical** to
    /// the serial sweep — `false` only exists for measurement and the
    /// determinism tests.
    pub parallel_sweep: bool,
}

impl Default for SimpointConfig {
    fn default() -> Self {
        SimpointConfig {
            max_k: 50,
            proj_dims: 100,
            seed: 0x10_0990,
            bic_threshold: 0.9,
            max_iters: 60,
            parallel_sweep: true,
        }
    }
}

/// A finished clustering of the input vectors.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Chosen number of clusters.
    pub k: usize,
    /// Cluster assignment per input vector.
    pub assignments: Vec<usize>,
    /// Index of each cluster's representative (member nearest its
    /// centroid).
    pub representatives: Vec<usize>,
    /// Members per cluster.
    pub cluster_sizes: Vec<usize>,
    /// Euclidean distance (in the projected BBV space) of every input
    /// vector to its assigned centroid, in input order. The representative
    /// of a cluster minimizes this distance among members; downstream
    /// diagnostics (lp-diag) use these to score how *representative* each
    /// chosen region is of its cluster.
    pub point_distances: Vec<f64>,
    /// BIC score of the chosen clustering.
    pub bic: f64,
    /// Sum of squared distances to assigned centroids.
    pub sse: f64,
}

impl Clustering {
    /// Input indices grouped by cluster.
    pub fn members(&self, cluster: usize) -> impl Iterator<Item = usize> + '_ {
        self.assignments
            .iter()
            .enumerate()
            .filter(move |&(_, &c)| c == cluster)
            .map(|(i, _)| i)
    }

    /// Distance of `cluster`'s representative to the cluster centroid.
    pub fn representative_distance(&self, cluster: usize) -> f64 {
        self.point_distances[self.representatives[cluster]]
    }

    /// `(mean, max)` member→centroid distance for `cluster` — the spread
    /// the representative's own distance is judged against. `(0, 0)` for
    /// an empty cluster (cannot happen after dense remapping).
    pub fn member_distance_stats(&self, cluster: usize) -> (f64, f64) {
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        let mut n = 0usize;
        for i in self.members(cluster) {
            let d = self.point_distances[i];
            sum += d;
            max = max.max(d);
            n += 1;
        }
        if n == 0 {
            (0.0, 0.0)
        } else {
            (sum / n as f64, max)
        }
    }
}

/// Clusters sparse vectors: L1-normalize → random-project → k-means with
/// BIC model selection.
///
/// Returns the chosen [`Clustering`].
///
/// ```
/// use lp_simpoint::{cluster, SimpointConfig};
///
/// // Two obvious phases on disjoint dimensions.
/// let a = vec![(0u64, 10.0), (1, 5.0)];
/// let b = vec![(100u64, 10.0), (101, 5.0)];
/// let vectors: Vec<&[(u64, f64)]> = vec![&a, &a, &b, &b];
/// let c = cluster(&vectors, &SimpointConfig::default());
/// assert_eq!(c.k, 2);
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
///
/// # Panics
/// Panics if `vectors` is empty.
pub fn cluster(vectors: &[&[(u64, f64)]], cfg: &SimpointConfig) -> Clustering {
    assert!(!vectors.is_empty(), "need at least one vector");
    let obs = lp_obs::global();
    let mut cluster_span = obs.span("simpoint.cluster", "simpoint");
    cluster_span.arg("vectors", vectors.len());
    let points = project(vectors, cfg.proj_dims, cfg.seed);
    let n = points.len();
    let max_k = cfg.max_k.min(n);

    // Deterministic per-k seeds, drawn serially up front: the sweep below
    // may then evaluate the k values in any order (or concurrently) and
    // still be bit-identical to the historical serial sweep.
    let seeds: Vec<u64> = {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
        (1..=max_k).map(|_| rng.gen()).collect()
    };
    let all: Vec<(usize, f64, KmeansResult)> = sweep_k(&points, &seeds, cfg, &obs);
    let best_bic = all
        .iter()
        .map(|(_, b, _)| *b)
        .fold(f64::NEG_INFINITY, f64::max);
    // Smallest k reaching the threshold fraction of the best score. BIC
    // scores are typically negative; "fraction of best" follows SimPoint's
    // scoring by ranking against the observed range.
    let min_bic = all.iter().map(|(_, b, _)| *b).fold(f64::INFINITY, f64::min);
    let span = (best_bic - min_bic).max(f64::EPSILON);
    let chosen = all
        .iter()
        .find(|(_, b, _)| (b - min_bic) / span >= cfg.bic_threshold)
        .unwrap_or_else(|| all.last().unwrap());
    let (k, bic, km) = (chosen.0, chosen.1, chosen.2.clone());

    // Representatives: nearest member to each centroid. The per-point
    // distances are kept (square-rooted) for downstream diagnostics.
    let mut representatives = vec![usize::MAX; k];
    let mut best_dist = vec![f64::INFINITY; k];
    let mut point_distances = vec![0.0f64; points.len()];
    for (i, p) in points.iter().enumerate() {
        let c = km.assignments[i];
        let d = dist2(p, &km.centroids[c]);
        point_distances[i] = d.sqrt();
        if d < best_dist[c] {
            best_dist[c] = d;
            representatives[c] = i;
        }
    }
    let mut cluster_sizes = vec![0usize; k];
    for &a in &km.assignments {
        cluster_sizes[a] += 1;
    }
    // Drop empty clusters (k-means can produce them on degenerate data):
    // remap assignments densely.
    let mut remap = vec![usize::MAX; k];
    let mut dense = 0usize;
    for c in 0..k {
        if cluster_sizes[c] > 0 {
            remap[c] = dense;
            dense += 1;
        }
    }
    let assignments: Vec<usize> = km.assignments.iter().map(|&a| remap[a]).collect();
    let representatives: Vec<usize> = (0..k)
        .filter(|&c| cluster_sizes[c] > 0)
        .map(|c| representatives[c])
        .collect();
    let cluster_sizes: Vec<usize> = cluster_sizes.into_iter().filter(|&s| s > 0).collect();

    cluster_span.arg("chosen_k", dense);
    cluster_span.arg("bic", bic);
    obs.gauge("simpoint.chosen_k").set(dense as f64);
    obs.gauge("simpoint.bic").set(bic);
    obs.counter("simpoint.clusterings").inc();

    Clustering {
        k: dense,
        assignments,
        representatives,
        cluster_sizes,
        point_distances,
        bic,
        sse: km.sse,
    }
}

/// Runs the per-k sweep (`k = 1..=seeds.len()`, seed `seeds[k-1]`) either
/// serially or on a bounded thread pool, returning `(k, bic, result)` in
/// ascending-k order. Each k is an independent Lloyd run with its own
/// pre-drawn seed, so scheduling cannot affect the results.
fn sweep_k(
    points: &[Vec<f64>],
    seeds: &[u64],
    cfg: &SimpointConfig,
    obs: &lp_obs::Observer,
) -> Vec<(usize, f64, KmeansResult)> {
    let run_one = |k: usize, seed: u64| -> (usize, f64, KmeansResult) {
        let mut k_span = obs.span("simpoint.kmeans", "simpoint");
        k_span.arg("k", k);
        let km = kmeans(points, k, seed, cfg.max_iters);
        let bic = bic_score(points, &km);
        k_span.arg("bic", bic);
        (k, bic, km)
    };

    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Thread spawn/teardown costs more than the Lloyd iterations it
    // saves when the sweep is small; points × k approximates the total
    // work, and below this floor the serial path is faster in practice
    // (each k is an independent seeded run, so results are identical
    // either way).
    const PARALLEL_MIN_WORK: usize = 4_096;
    let workers = if cfg.parallel_sweep && points.len() * seeds.len() >= PARALLEL_MIN_WORK {
        hw.min(seeds.len()).max(1)
    } else {
        1
    };
    obs.gauge("analyze.kmeans.par_k").set(workers as f64);
    if workers <= 1 {
        return seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| run_one(i + 1, s))
            .collect();
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(usize, f64, KmeansResult)>>> =
        seeds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                *slots[i].lock().expect("sweep slot poisoned") = Some(run_one(i + 1, seeds[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("sweep slot poisoned")
                .expect("every k evaluated")
        })
        .collect()
}

pub(crate) fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(groups: &[(u64, usize)]) -> Vec<Vec<(u64, f64)>> {
        // Each group g produces `count` near-identical vectors on distinct
        // dimensions.
        let mut out = Vec::new();
        for &(base_dim, count) in groups {
            for i in 0..count {
                out.push(vec![
                    (base_dim, 100.0 + (i % 3) as f64),
                    (base_dim + 1, 50.0),
                ]);
            }
        }
        out
    }

    #[test]
    fn separates_obvious_phases() {
        let vecs = synth(&[(0, 10), (1000, 10), (2000, 10)]);
        let refs: Vec<&[(u64, f64)]> = vecs.iter().map(|v| v.as_slice()).collect();
        let c = cluster(&refs, &SimpointConfig::default());
        assert!(
            c.k >= 3,
            "three phases should give >= 3 clusters, got {}",
            c.k
        );
        // All members of one synthetic group share a cluster.
        for g in 0..3 {
            let first = c.assignments[g * 10];
            for i in 0..10 {
                assert_eq!(c.assignments[g * 10 + i], first, "group {g} split");
            }
        }
        // Representatives point into their own clusters.
        for (cl, &r) in c.representatives.iter().enumerate() {
            assert_eq!(c.assignments[r], cl);
        }
        assert_eq!(c.cluster_sizes.iter().sum::<usize>(), 30);
    }

    #[test]
    fn single_phase_collapses_to_one_cluster() {
        let vecs = synth(&[(0, 20)]);
        let refs: Vec<&[(u64, f64)]> = vecs.iter().map(|v| v.as_slice()).collect();
        let c = cluster(&refs, &SimpointConfig::default());
        assert_eq!(c.k, 1, "identical behaviour is one phase");
        assert_eq!(c.representatives.len(), 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let vecs = synth(&[(0, 8), (500, 8)]);
        let refs: Vec<&[(u64, f64)]> = vecs.iter().map(|v| v.as_slice()).collect();
        let a = cluster(&refs, &SimpointConfig::default());
        let b = cluster(&refs, &SimpointConfig::default());
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.representatives, b.representatives);
    }

    #[test]
    fn parallel_sweep_matches_serial_for_three_seeds() {
        let vecs = synth(&[(0, 8), (500, 8), (900, 8)]);
        let refs: Vec<&[(u64, f64)]> = vecs.iter().map(|v| v.as_slice()).collect();
        for seed in [0x10_0990u64, 7, 0xdead_beef] {
            let serial = cluster(
                &refs,
                &SimpointConfig {
                    seed,
                    parallel_sweep: false,
                    ..Default::default()
                },
            );
            let parallel = cluster(
                &refs,
                &SimpointConfig {
                    seed,
                    parallel_sweep: true,
                    ..Default::default()
                },
            );
            assert_eq!(serial.k, parallel.k, "seed {seed}: chosen k");
            assert_eq!(serial.assignments, parallel.assignments, "seed {seed}");
            assert_eq!(
                serial.representatives, parallel.representatives,
                "seed {seed}"
            );
            assert_eq!(serial.cluster_sizes, parallel.cluster_sizes, "seed {seed}");
            assert_eq!(
                serial.bic.to_bits(),
                parallel.bic.to_bits(),
                "seed {seed}: BIC must be bit-identical"
            );
            assert_eq!(
                serial.sse.to_bits(),
                parallel.sse.to_bits(),
                "seed {seed}: SSE must be bit-identical"
            );
        }
    }

    #[test]
    fn respects_max_k() {
        let vecs = synth(&[(0, 4), (100, 4), (200, 4), (300, 4)]);
        let refs: Vec<&[(u64, f64)]> = vecs.iter().map(|v| v.as_slice()).collect();
        let c = cluster(
            &refs,
            &SimpointConfig {
                max_k: 2,
                ..Default::default()
            },
        );
        assert!(c.k <= 2);
    }

    #[test]
    fn point_distances_cover_inputs_and_reps_minimize() {
        let vecs = synth(&[(0, 10), (1000, 10)]);
        let refs: Vec<&[(u64, f64)]> = vecs.iter().map(|v| v.as_slice()).collect();
        let c = cluster(&refs, &SimpointConfig::default());
        assert_eq!(c.point_distances.len(), refs.len());
        assert!(c.point_distances.iter().all(|d| d.is_finite() && *d >= 0.0));
        for (cl, &rep) in c.representatives.iter().enumerate() {
            let (mean, max) = c.member_distance_stats(cl);
            let rep_d = c.representative_distance(cl);
            assert_eq!(rep_d, c.point_distances[rep]);
            // The representative is the member nearest its centroid.
            for i in c.members(cl) {
                assert!(rep_d <= c.point_distances[i] + 1e-12, "cluster {cl}");
            }
            assert!(rep_d <= mean + 1e-12 && mean <= max + 1e-12);
        }
    }

    #[test]
    fn handles_single_vector() {
        let vecs = synth(&[(0, 1)]);
        let refs: Vec<&[(u64, f64)]> = vecs.iter().map(|v| v.as_slice()).collect();
        let c = cluster(&refs, &SimpointConfig::default());
        assert_eq!(c.k, 1);
        assert_eq!(c.representatives, vec![0]);
    }
}
