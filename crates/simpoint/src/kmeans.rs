//! Lloyd's k-means with k-means++ seeding.

use crate::dist2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Cluster index per point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroids.
    pub sse: f64,
}

/// Runs k-means (k-means++ init, Lloyd iterations until convergence or
/// `max_iters`).
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> KmeansResult {
    assert!(!points.is_empty() && k > 0);
    let k = k.min(points.len());
    let dims = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let nd = dist2(p, centroids.last().unwrap());
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }

    // Cached squared norms: ‖p − c‖² = ‖p‖² − 2 p·c + ‖c‖². Point norms
    // are computed once per run and centroid norms once per iteration, so
    // the inner argmin evaluates `‖c‖² − 2 p·c` — one dot product — and
    // the full distance (for the SSE) is reconstructed incrementally for
    // the winner only, instead of recomputing a subtract-square-sum per
    // (point, centroid) pair.
    let point_norms: Vec<f64> = points.iter().map(|p| dot(p, p)).collect();

    // Start unassigned so the first Lloyd iteration always updates
    // centroids (k = 1 must converge to the mean, not the seed point).
    let mut assignments = vec![usize::MAX; points.len()];
    let mut sse = f64::INFINITY;
    for _ in 0..max_iters {
        // Assign.
        let centroid_norms: Vec<f64> = centroids.iter().map(|c| dot(c, c)).collect();
        let mut changed = false;
        let mut new_sse = 0.0;
        for (i, p) in points.iter().enumerate() {
            // Minimizing ‖p − c‖² over c is minimizing ‖c‖² − 2 p·c (the
            // ‖p‖² term is constant per point).
            let (mut best_c, mut best_s) = (0usize, f64::INFINITY);
            for (c, cent) in centroids.iter().enumerate() {
                let s = centroid_norms[c] - 2.0 * dot(p, cent);
                if s < best_s {
                    best_s = s;
                    best_c = c;
                }
            }
            if assignments[i] != best_c {
                assignments[i] = best_c;
                changed = true;
            }
            // Clamp: the incremental form can go fractionally negative for
            // points sitting exactly on their centroid.
            new_sse += (point_norms[i] + best_s).max(0.0);
        }
        sse = new_sse;
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dims]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, cent) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (x, s) in cent.iter_mut().zip(&sums[c]) {
                    *x = s / counts[c] as f64;
                }
            }
        }
    }

    KmeansResult {
        assignments,
        centroids,
        sse,
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![center + (i as f64) * 0.01, center - (i as f64) * 0.01])
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 10);
        pts.extend(blob(100.0, 10));
        let r = kmeans(&pts, 2, 1, 50);
        let first = r.assignments[0];
        assert!(r.assignments[..10].iter().all(|&a| a == first));
        assert!(r.assignments[10..].iter().all(|&a| a != first));
        assert!(r.sse < 1.0, "tight blobs, sse={}", r.sse);
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let pts = vec![vec![0.0], vec![10.0], vec![20.0]];
        let r = kmeans(&pts, 3, 2, 50);
        assert!(r.sse < 1e-12);
        let mut a = r.assignments.clone();
        a.sort_unstable();
        a.dedup();
        assert_eq!(a.len(), 3, "each point its own cluster");
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let r = kmeans(&pts, 1, 3, 50);
        assert!((r.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((r.centroids[0][1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut pts = blob(0.0, 20);
        pts.extend(blob(50.0, 20));
        let a = kmeans(&pts, 4, 9, 50);
        let b = kmeans(&pts, 4, 9, 50);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let pts = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&pts, 10, 4, 50);
        assert_eq!(r.centroids.len(), 2);
    }
}
