//! Bayesian Information Criterion for k-means clusterings.

use crate::kmeans::KmeansResult;

/// Scores a clustering with the spherical-Gaussian BIC of Pelleg & Moore
/// (the criterion SimPoint uses for model selection, §III-E).
///
/// Higher is better. Degenerate (zero-variance) fits are scored with a
/// variance floor so that k = n does not trivially win; the floor is sized
/// for L1-normalized, randomly projected BBVs, where genuine phase
/// differences are O(0.1) and within-phase noise is orders of magnitude
/// smaller.
pub fn bic_score(points: &[Vec<f64>], km: &KmeansResult) -> f64 {
    let r = points.len() as f64;
    let m = points[0].len() as f64;
    let k = km.centroids.len() as f64;

    let mut sizes = vec![0usize; km.centroids.len()];
    for &a in &km.assignments {
        sizes[a] += 1;
    }

    // Pooled spherical variance estimate with a floor.
    let dof = (r - k).max(1.0);
    let sigma2 = (km.sse / (dof * m)).max(1e-4);

    let mut ll = 0.0;
    for &sz in &sizes {
        if sz == 0 {
            continue;
        }
        let rn = sz as f64;
        ll += rn * rn.ln() - rn * r.ln();
    }
    ll -= r * m / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln();
    ll -= (r - k) * m / 2.0;

    let params = k * (m + 1.0);
    ll - params / 2.0 * r.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;

    #[test]
    fn true_k_beats_underfit_and_heavy_overfit() {
        // Three well-separated blobs in 2D.
        let mut pts = Vec::new();
        for c in [0.0, 100.0, 200.0] {
            for i in 0..12 {
                pts.push(vec![c + (i % 4) as f64 * 0.1, c - (i % 3) as f64 * 0.1]);
            }
        }
        let score = |k: usize| {
            let km = kmeans(&pts, k, 7, 60);
            bic_score(&pts, &km)
        };
        let s1 = score(1);
        let s3 = score(3);
        let s30 = score(30);
        assert!(s3 > s1, "true k should beat k=1: {s3} vs {s1}");
        assert!(
            s3 > s30,
            "true k should beat extreme overfit: {s3} vs {s30}"
        );
    }

    #[test]
    fn penalty_prefers_true_k_over_overfit() {
        // 7 distinct values, 40 points: k = 7 explains everything; k = 20
        // fits no better and pays a larger parameter penalty.
        let pts: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 7) as f64]).collect();
        let km7 = kmeans(&pts, 7, 1, 60);
        let km20 = kmeans(&pts, 20, 1, 60);
        assert!(km7.sse < 1e-9, "7 clusters fit exactly");
        assert!(bic_score(&pts, &km7) > bic_score(&pts, &km20));
    }
}
