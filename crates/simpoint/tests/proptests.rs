//! Property-based tests for clustering.

use lp_simpoint::{cluster, kmeans, project, SimpointConfig};
use proptest::prelude::*;

fn arb_vectors() -> impl Strategy<Value = Vec<Vec<(u64, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u64..512, 1.0f64..1000.0), 1..20),
        2..30,
    )
}

proptest! {
    /// Clustering output is structurally sound for arbitrary inputs:
    /// assignments in range, representatives members of their clusters,
    /// sizes summing to n.
    #[test]
    fn clustering_is_structurally_sound(vectors in arb_vectors()) {
        let refs: Vec<&[(u64, f64)]> = vectors.iter().map(|v| v.as_slice()).collect();
        let cfg = SimpointConfig { max_k: 8, ..Default::default() };
        let c = cluster(&refs, &cfg);
        prop_assert!(c.k >= 1 && c.k <= refs.len().min(8));
        prop_assert_eq!(c.assignments.len(), refs.len());
        for &a in &c.assignments {
            prop_assert!(a < c.k);
        }
        prop_assert_eq!(c.representatives.len(), c.k);
        for (cl, &rep) in c.representatives.iter().enumerate() {
            prop_assert!(rep < refs.len());
            prop_assert_eq!(c.assignments[rep], cl, "representative in own cluster");
        }
        prop_assert_eq!(c.cluster_sizes.iter().sum::<usize>(), refs.len());
        prop_assert!(c.cluster_sizes.iter().all(|&s| s > 0), "no empty clusters");
    }

    /// Determinism: same inputs and seed give identical output.
    #[test]
    fn clustering_is_deterministic(vectors in arb_vectors()) {
        let refs: Vec<&[(u64, f64)]> = vectors.iter().map(|v| v.as_slice()).collect();
        let cfg = SimpointConfig { max_k: 6, ..Default::default() };
        let a = cluster(&refs, &cfg);
        let b = cluster(&refs, &cfg);
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.representatives, b.representatives);
    }

    /// Projection is invariant to positive scaling of a vector (L1
    /// normalization) and produces finite outputs.
    #[test]
    fn projection_scale_invariance(
        v in prop::collection::vec((0u64..4096, 1.0f64..100.0), 1..30),
        scale in 0.5f64..100.0,
    ) {
        let scaled: Vec<(u64, f64)> = v.iter().map(|&(d, w)| (d, w * scale)).collect();
        let p = project(&[&v, &scaled], 32, 99);
        for (a, b) in p[0].iter().zip(&p[1]) {
            prop_assert!(a.is_finite());
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// k-means SSE equals the sum of squared distances implied by its own
    /// assignments/centroids (internal consistency).
    #[test]
    fn kmeans_sse_is_consistent(
        pts in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..40),
        k in 1usize..6,
    ) {
        let r = kmeans(&pts, k, 11, 60);
        let mut sse = 0.0;
        for (p, &a) in pts.iter().zip(&r.assignments) {
            sse += p.iter().zip(&r.centroids[a]).map(|(x, y)| (x - y) * (x - y)).sum::<f64>();
        }
        prop_assert!((sse - r.sse).abs() < 1e-6 * (1.0 + sse), "{sse} vs {}", r.sse);
        // And each point is assigned to its *nearest* centroid.
        for (p, &a) in pts.iter().zip(&r.assignments) {
            let d = |c: &Vec<f64>| c.iter().zip(p).map(|(x, y)| (x - y) * (x - y)).sum::<f64>();
            let mine = d(&r.centroids[a]);
            for c in &r.centroids {
                prop_assert!(mine <= d(c) + 1e-9);
            }
        }
    }
}
