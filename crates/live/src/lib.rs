//! # lp-live — Pac-Sim-style online sampling
//!
//! The two-phase LoopPoint pipeline needs a complete record → slice →
//! cluster profiling pass before the first region can be simulated.
//! Pac-Sim (Liu & Sabu et al., the direct successor in PAPERS.md) shows
//! the profiling prequel can be dropped: regions are classified *live*
//! during a single execution, and each region is either simulated in
//! detail (new or low-confidence behaviour) or predicted from its
//! cluster's last detailed IPC.
//!
//! This crate holds the three simulator-independent pieces:
//!
//! * [`StreamingSlicer`] — single-pass loop-aligned slicing with online
//!   loop-header discovery, emitting a spin-filtered per-thread BBV at
//!   each region boundary;
//! * [`OnlineClassifier`] — incremental k-means-style clustering
//!   (distance-threshold spawning, decaying centroids, the cached
//!   squared-norm scan from lp-simpoint) plus the simulate/predict
//!   confidence policy (prediction-error EWMA + staleness age);
//! * [`LiveProgress`] — the NDJSON partial-result row streamed through
//!   the farm while a live job runs.
//!
//! The execution loop that drives them against the simulator lives in
//! `looppoint::analyze_live` (the core crate), keeping this crate free of
//! timing-model dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod progress;
mod slicer;

pub use classifier::{
    Action, Decision, DetailReason, OnlineClassifier, OnlineCluster, OnlineConfig,
};
pub use progress::LiveProgress;
pub use slicer::{LiveRegion, StreamingSlicer};
