//! Streaming partial results: one [`LiveProgress`] snapshot per region.
//!
//! Live jobs emit these as NDJSON lines — the farm buffers them per job
//! and `GET /jobs/{id}` streams them to followers, so a long-running live
//! analysis is observable while it runs (regions seen, clusters spawned,
//! detailed-simulation fraction, running IPC estimate).

use lp_obs::json::Value;

/// A point-in-time summary of a live run.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveProgress {
    /// Regions classified so far.
    pub regions: u64,
    /// Clusters spawned so far.
    pub clusters: u64,
    /// Regions simulated in detail so far.
    pub detailed: u64,
    /// Regions predicted (skipped) so far.
    pub predicted: u64,
    /// Fraction of regions simulated in detail (`0..=1`).
    pub detailed_pct: f64,
    /// Running whole-program cycle estimate.
    pub est_cycles: f64,
    /// Running IPC estimate (instructions so far over estimated cycles).
    pub est_ipc: f64,
    /// Whether the run is complete (the last line of a stream).
    pub done: bool,
}

impl LiveProgress {
    /// The progress snapshot as a JSON object (stable field names — this
    /// is the farm's `LiveProgress` NDJSON wire format).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("regions".to_string(), Value::Int(self.regions as i128)),
            ("clusters".to_string(), Value::Int(self.clusters as i128)),
            ("detailed".to_string(), Value::Int(self.detailed as i128)),
            ("predicted".to_string(), Value::Int(self.predicted as i128)),
            ("detailed_pct".to_string(), Value::Num(self.detailed_pct)),
            ("est_cycles".to_string(), Value::Num(self.est_cycles)),
            ("est_ipc".to_string(), Value::Num(self.est_ipc)),
            ("done".to_string(), Value::Bool(self.done)),
        ])
    }

    /// Parses a snapshot from its [`LiveProgress::to_value`] shape.
    /// Returns `None` when required fields are missing or mistyped.
    pub fn from_value(v: &Value) -> Option<LiveProgress> {
        Some(LiveProgress {
            regions: v.get("regions")?.as_u64()?,
            clusters: v.get("clusters")?.as_u64()?,
            detailed: v.get("detailed")?.as_u64()?,
            predicted: v.get("predicted")?.as_u64()?,
            detailed_pct: v.get("detailed_pct")?.as_f64()?,
            est_cycles: v.get("est_cycles")?.as_f64()?,
            est_ipc: v.get("est_ipc")?.as_f64()?,
            done: matches!(v.get("done"), Some(Value::Bool(true))),
        })
    }

    /// One-line human rendering (the driver's `status --follow` view).
    pub fn render(&self) -> String {
        format!(
            "regions {:>4}  clusters {:>3}  detailed {:>4} ({:>5.1}%)  est cycles {:.0}  est IPC {:.3}{}",
            self.regions,
            self.clusters,
            self.detailed,
            self.detailed_pct * 100.0,
            self.est_cycles,
            self.est_ipc,
            if self.done { "  [done]" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_json() {
        let p = LiveProgress {
            regions: 12,
            clusters: 3,
            detailed: 5,
            predicted: 7,
            detailed_pct: 5.0 / 12.0,
            est_cycles: 123_456.0,
            est_ipc: 1.87,
            done: true,
        };
        let text = p.to_value().to_string();
        let back = LiveProgress::from_value(&lp_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        assert!(p.render().contains("[done]"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let v = lp_obs::json::parse("{\"regions\": 1}").unwrap();
        assert!(LiveProgress::from_value(&v).is_none());
    }
}
