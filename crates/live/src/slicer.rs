//! Streaming, single-pass region slicing — the live-mode profiler.
//!
//! The two-phase pipeline replays a recorded pinball to discover loop
//! headers (via the DCFG) and then replays it *again* to slice. Live mode
//! has neither a recording nor a DCFG: the [`StreamingSlicer`] rides the
//! one functional execution (through the simulator's per-retire hook),
//! discovering loop headers on the fly — the target of any backward taken
//! conditional branch in the main image is a loop entry — and closing a
//! region at the next known header once the filtered-instruction target
//! is met.

use lp_bbv::SparseVec;
use lp_isa::{CtrlKind, Marker, Pc, Program, Retired};
use std::collections::HashMap;
use std::sync::Arc;

/// One region produced by the streaming slicer.
#[derive(Debug, Clone)]
pub struct LiveRegion {
    /// Region index in execution order.
    pub index: usize,
    /// Start boundary; `None` for the first region (program start).
    pub start: Option<Marker>,
    /// End boundary; `None` for the final region (program end).
    pub end: Option<Marker>,
    /// Concatenated per-thread BBV (spin-filtered, one count per retired
    /// main-image instruction, keyed by the entry PC of its basic block).
    pub bbv: SparseVec,
    /// Spin-filtered (main-image) instructions in the region.
    pub filtered_insts: u64,
    /// All instructions in the region (including library/spin code).
    pub total_insts: u64,
}

/// Online loop-aligned slicer: feature vectors emerge at region boundaries
/// of the *first and only* execution, with no profiling prequel.
///
/// Differences from the two-phase [`lp_bbv::LoopAlignedSlicer`], both
/// forced by the single pass:
///
/// * **Header discovery is online.** A PC becomes a known loop header the
///   first time a backward taken conditional branch targets it; its
///   execution count starts there. Boundary markers therefore use counts
///   that undercount at most the executions before discovery — a re-run
///   from a snapshot taken *after* discovery sees identical deltas.
/// * **The boundary instruction belongs to the region it ends.** The
///   simulator's retire hook stops the segment *at* the triggering
///   instruction (marker semantics), so a detailed re-run bounded by
///   `(start, end]` markers executes exactly what this slicer accounted.
#[derive(Debug)]
pub struct StreamingSlicer {
    program: Arc<Program>,
    slice_target: u64,
    /// Discovered main-image loop headers and their execution counts
    /// (counted from the moment of discovery).
    header_counts: HashMap<Pc, u64>,
    /// Per-thread flag: the next retirement enters a new basic block.
    entering_block: Vec<bool>,
    /// Per-thread dimension of the basic block currently executing.
    cur_block: Vec<u64>,
    cur_bbv: HashMap<u64, u64>,
    cur_filtered: u64,
    cur_total: u64,
    cur_start: Option<Marker>,
    regions_emitted: usize,
    pending: Option<LiveRegion>,
    total_filtered: u64,
    total_insts: u64,
}

/// Encodes a `(thread, block-entry PC)` pair as a BBV dimension. Only
/// main-image PCs are accumulated (the spin filter), and the main image
/// is a single image, so the instruction offset identifies the block.
fn dim(tid: usize, pc: Pc) -> u64 {
    ((tid as u64) << 32) | u64::from(pc.offset)
}

impl StreamingSlicer {
    /// Creates a streaming slicer. `slice_base` is the per-thread region
    /// size; the global target is `slice_base × nthreads` filtered
    /// instructions, exactly as in the two-phase profiler.
    pub fn new(program: Arc<Program>, nthreads: usize, slice_base: u64) -> Self {
        assert!(slice_base > 0);
        assert!(nthreads > 0);
        StreamingSlicer {
            program,
            slice_target: slice_base * nthreads as u64,
            header_counts: HashMap::new(),
            entering_block: vec![true; nthreads],
            cur_block: vec![0; nthreads],
            cur_bbv: HashMap::new(),
            cur_filtered: 0,
            cur_total: 0,
            cur_start: None,
            regions_emitted: 0,
            pending: None,
            total_filtered: 0,
            total_insts: 0,
        }
    }

    /// Observes one retired instruction. Returns `true` when the
    /// instruction closed a region — the caller should stop the current
    /// simulation segment and collect it via [`StreamingSlicer::take_region`].
    pub fn on_retire(&mut self, r: &Retired) -> bool {
        if !self.program.is_library_pc(r.pc) {
            // Spin-filtered accounting: one count per retired main-image
            // instruction, charged to the entry PC of its basic block
            // (equivalent to block entries × block length).
            if self.entering_block[r.tid] {
                self.cur_block[r.tid] = dim(r.tid, r.pc);
            }
            *self.cur_bbv.entry(self.cur_block[r.tid]).or_default() += 1;
            self.cur_filtered += 1;
            self.total_filtered += 1;

            // Online header discovery: a backward taken conditional branch
            // names its target as a loop entry.
            if let Some(ctrl) = r.ctrl {
                if ctrl.kind == CtrlKind::CondTaken
                    && ctrl.target.image == r.pc.image
                    && ctrl.target.offset <= r.pc.offset
                {
                    self.header_counts.entry(ctrl.target).or_insert(0);
                }
            }

            // Boundary: a known header retiring once the target is met
            // ends the region *including this instruction* (the marker
            // occurrence belongs to the segment it terminates).
            if let Some(count) = self.header_counts.get_mut(&r.pc) {
                *count += 1;
                if self.cur_filtered >= self.slice_target {
                    let marker = Marker::new(r.pc, *count);
                    self.cur_total += 1;
                    self.total_insts += 1;
                    self.entering_block[r.tid] = r.ctrl.is_some();
                    self.close_region(Some(marker));
                    return true;
                }
            }
        }
        self.cur_total += 1;
        self.total_insts += 1;
        // A control-flow transfer ends the basic block: the thread's next
        // retirement names a new block-entry PC.
        self.entering_block[r.tid] = r.ctrl.is_some();
        false
    }

    fn close_region(&mut self, end: Option<Marker>) {
        let mut bbv_map = HashMap::new();
        std::mem::swap(&mut bbv_map, &mut self.cur_bbv);
        self.pending = Some(LiveRegion {
            index: self.regions_emitted,
            start: self.cur_start,
            end,
            bbv: SparseVec::from_map(&bbv_map),
            filtered_insts: self.cur_filtered,
            total_insts: self.cur_total,
        });
        self.regions_emitted += 1;
        self.cur_filtered = 0;
        self.cur_total = 0;
        self.cur_start = end;
    }

    /// Collects the region closed by the last boundary, if any.
    pub fn take_region(&mut self) -> Option<LiveRegion> {
        self.pending.take()
    }

    /// Closes the trailing partial region at program end. Returns `None`
    /// when nothing retired since the last boundary (and at least one
    /// region was already emitted).
    pub fn finish_region(&mut self) -> Option<LiveRegion> {
        if self.cur_total > 0 || self.regions_emitted == 0 {
            self.close_region(None);
            self.pending.take()
        } else {
            None
        }
    }

    /// Discovered loop headers and their current global execution counts.
    /// Cloned alongside machine snapshots so a re-run can seed its marker
    /// watch counts with the values at the snapshot.
    pub fn header_counts(&self) -> &HashMap<Pc, u64> {
        &self.header_counts
    }

    /// Regions emitted so far (boundaries crossed plus the final close).
    pub fn regions_emitted(&self) -> usize {
        self.regions_emitted
    }

    /// Total spin-filtered instructions observed.
    pub fn total_filtered(&self) -> u64 {
        self.total_filtered
    }

    /// Total instructions observed.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    /// The global filtered-instruction target per region.
    pub fn slice_target(&self) -> u64 {
        self.slice_target
    }
}
