//! Incremental (online) k-means-style classification of region BBVs.
//!
//! Batch LoopPoint collects every region vector first and sweeps k; live
//! mode sees one vector at a time and must decide immediately. The
//! [`OnlineClassifier`] keeps a growing set of centroids in the
//! L1-normalized sparse BBV space:
//!
//! * a region farther than the spawn threshold from every centroid starts
//!   a **new cluster** (and must be simulated in detail — nothing is known
//!   about its behaviour);
//! * a matched region folds into its centroid with a **decaying update**
//!   (`c ← (1−α)·c + α·p`, [`SparseVec::decay_toward`]), tracking phase
//!   drift the way online k-means does;
//! * the nearest-centroid scan uses the same **cached squared-norm**
//!   expansion as lp-simpoint's batch k-means
//!   (`‖p−c‖² = ‖p‖² − 2p·c + ‖c‖²`, with `‖c‖²` cached per centroid), so
//!   each candidate costs one sparse dot product.
//!
//! The simulate/predict policy rides on top: a matched cluster predicts
//! from its last detailed IPC unless its confidence has decayed — a
//! per-cluster prediction-error EWMA above the bound, or too many
//! predictions since the last detailed observation (staleness), triggers
//! re-simulation. The staleness interval is adaptive: each confirming
//! detailed sample doubles it (up to a cap), each disagreeing one snaps
//! it back, so microarchitectural drift the BBV cannot see (warming
//! caches across phase re-occurrences) is caught early while stable
//! clusters converge to rare spot checks. Every decision is recorded,
//! there is no randomness, and iteration order is by cluster id, so the
//! decision log is a pure function of the region stream.

use lp_bbv::SparseVec;

/// Tuning of the online classifier and the simulate/predict policy.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Spawn threshold: a region whose L1-normalized BBV lies farther than
    /// this Euclidean distance from every centroid starts a new cluster.
    /// Normalized non-negative vectors are at most `√2` apart.
    pub threshold: f64,
    /// Decaying-centroid step size (`c ← (1−α)·c + α·p` on every match).
    pub centroid_alpha: f64,
    /// Prediction-error EWMA step size.
    pub err_alpha: f64,
    /// Re-simulate a matched cluster when its error EWMA exceeds this
    /// (relative IPC error, e.g. `0.05` = 5 %).
    pub max_err: f64,
    /// Initial staleness interval: a fresh (or recently-wrong) cluster is
    /// re-simulated after this many consecutive predictions. Each detailed
    /// observation that *confirms* the prediction doubles the interval
    /// (exponential confirmation back-off); a disagreeing one snaps it
    /// back here. This catches microarchitectural drift — e.g. a phase
    /// whose first sample ran on cold caches but whose re-occurrences hit
    /// warm ones — which is invisible to the BBV itself.
    pub min_recheck: u64,
    /// Upper bound on the adaptive staleness interval: even a
    /// long-confirmed cluster is re-simulated at least every `max_age`
    /// predictions.
    pub max_age: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            threshold: 0.2,
            centroid_alpha: 0.25,
            err_alpha: 0.3,
            max_err: 0.05,
            min_recheck: 2,
            max_age: 64,
        }
    }
}

/// Why a region was sent to detailed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetailReason {
    /// No centroid within the spawn threshold: new behaviour.
    NewCluster,
    /// The matched cluster has no detailed IPC yet.
    NoSample,
    /// The matched cluster's prediction-error EWMA exceeded the bound.
    LowConfidence,
    /// Too many predictions since the cluster's last detailed run.
    Stale,
}

impl DetailReason {
    /// Stable lowercase label (used in logs and JSON).
    pub fn label(self) -> &'static str {
        match self {
            DetailReason::NewCluster => "new_cluster",
            DetailReason::NoSample => "no_sample",
            DetailReason::LowConfidence => "low_confidence",
            DetailReason::Stale => "stale",
        }
    }
}

/// What to do with a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Simulate the region in detail.
    Detail(DetailReason),
    /// Skip detail; predict the region's cycles from this IPC (the
    /// matched cluster's most recent detailed IPC).
    Predict {
        /// IPC to extrapolate the region's cycle count from.
        ipc: f64,
    },
}

/// One recorded classification decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Region index the decision is for.
    pub region: usize,
    /// Cluster the region was assigned to (possibly freshly spawned).
    pub cluster: usize,
    /// Whether this region spawned its cluster.
    pub spawned: bool,
    /// Distance of the region's normalized BBV to the (pre-update)
    /// centroid; `0` for a spawning region (it *is* the centroid).
    pub distance: f64,
    /// The action taken.
    pub action: Action,
}

impl Decision {
    /// Compact single-line rendering, stable across runs (the determinism
    /// property test compares these).
    pub fn log_line(&self) -> String {
        let act = match self.action {
            Action::Detail(r) => format!("detail:{}", r.label()),
            Action::Predict { ipc } => format!("predict:ipc={ipc:.6}"),
        };
        format!(
            "region={} cluster={} spawned={} dist={:.6} {}",
            self.region, self.cluster, self.spawned, self.distance, act
        )
    }
}

/// One live cluster: centroid, cached norm, and policy state.
#[derive(Debug, Clone)]
pub struct OnlineCluster {
    /// L1-normalized centroid.
    centroid: SparseVec,
    /// Cached `‖centroid‖²` (the lp-simpoint k-means trick).
    centroid_norm_sq: f64,
    /// Member regions folded into this cluster (including the spawner).
    pub members: u64,
    /// Spin-filtered instructions across all member regions.
    pub filtered_insts: u64,
    /// IPC of the cluster's most recent detailed simulation.
    pub last_ipc: Option<f64>,
    /// EWMA of the relative IPC prediction error, updated on every
    /// detailed observation after the first.
    pub err_ewma: f64,
    /// Predictions since the last detailed observation.
    pub age: u64,
    /// Current adaptive staleness interval (see
    /// [`OnlineConfig::min_recheck`]): re-simulate when `age` reaches it.
    pub recheck: u64,
    /// Region index of the last detailed member (the live representative).
    pub last_detailed_region: usize,
    /// Classify-time distance of that representative to the centroid.
    pub last_detailed_distance: f64,
    /// Sum of classify-time member distances (for the mean).
    pub sum_distance: f64,
}

impl OnlineCluster {
    /// The current (L1-normalized) centroid.
    pub fn centroid(&self) -> &SparseVec {
        &self.centroid
    }

    /// Mean classify-time distance of members to the centroid.
    pub fn mean_member_distance(&self) -> f64 {
        if self.members == 0 {
            0.0
        } else {
            self.sum_distance / self.members as f64
        }
    }
}

fn norm_sq(v: &SparseVec) -> f64 {
    v.entries().iter().map(|&(_, w)| w * w).sum()
}

fn sparse_dot(a: &SparseVec, b: &SparseVec) -> f64 {
    let (a, b) = (a.entries(), b.entries());
    let mut i = 0;
    let mut j = 0;
    let mut acc = 0.0f64;
    while i < a.len() && j < b.len() {
        let (ka, va) = a[i];
        let (kb, vb) = b[j];
        if ka == kb {
            acc += va * vb;
            i += 1;
            j += 1;
        } else if ka < kb {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// The streaming classifier + simulate/predict policy (see module docs).
#[derive(Debug)]
pub struct OnlineClassifier {
    cfg: OnlineConfig,
    clusters: Vec<OnlineCluster>,
    decisions: Vec<Decision>,
}

impl OnlineClassifier {
    /// Creates an empty classifier.
    pub fn new(cfg: OnlineConfig) -> Self {
        assert!(cfg.threshold > 0.0, "spawn threshold must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.centroid_alpha) && (0.0..=1.0).contains(&cfg.err_alpha),
            "EWMA weights must lie in [0, 1]"
        );
        assert!(cfg.min_recheck >= 1, "staleness interval must be positive");
        OnlineClassifier {
            cfg,
            clusters: Vec::new(),
            decisions: Vec::new(),
        }
    }

    /// Classifies one region BBV and decides simulate-vs-predict. The
    /// decision is recorded in the log and returned.
    pub fn classify(&mut self, region: usize, bbv: &SparseVec, filtered_insts: u64) -> Decision {
        let p = bbv.normalized();
        let p_norm_sq = norm_sq(&p);

        // Nearest centroid via the cached-norm expansion: argmin over
        // clusters of ‖c‖² − 2·p·c (the ‖p‖² term is common).
        let mut best: Option<(usize, f64)> = None;
        for (c, cl) in self.clusters.iter().enumerate() {
            let score = cl.centroid_norm_sq - 2.0 * sparse_dot(&p, &cl.centroid);
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((c, score));
            }
        }

        // Exact distance for the winner via the shared non-allocating
        // primitive (numerically cleaner than ‖p‖² + score).
        let nearest = best.map(|(c, _)| (c, p.dist_sq_to(self.clusters[c].centroid()).sqrt()));
        let decision = match nearest {
            Some((c, distance)) if distance <= self.cfg.threshold => {
                let cl = &mut self.clusters[c];
                cl.centroid.decay_toward(&p, self.cfg.centroid_alpha);
                cl.centroid_norm_sq = norm_sq(&cl.centroid);
                cl.members += 1;
                cl.filtered_insts += filtered_insts;
                cl.sum_distance += distance;
                let action = match cl.last_ipc {
                    None => Action::Detail(DetailReason::NoSample),
                    Some(_) if cl.age + 1 >= cl.recheck => Action::Detail(DetailReason::Stale),
                    Some(_) if cl.err_ewma > self.cfg.max_err => {
                        Action::Detail(DetailReason::LowConfidence)
                    }
                    Some(ipc) => {
                        cl.age += 1;
                        Action::Predict { ipc }
                    }
                };
                Decision {
                    region,
                    cluster: c,
                    spawned: false,
                    distance,
                    action,
                }
            }
            _ => {
                // Farther than the threshold from everything (or the very
                // first region): spawn a cluster seeded at this point.
                let c = self.clusters.len();
                self.clusters.push(OnlineCluster {
                    centroid_norm_sq: p_norm_sq,
                    centroid: p,
                    members: 1,
                    filtered_insts,
                    last_ipc: None,
                    err_ewma: 0.0,
                    age: 0,
                    recheck: self.cfg.min_recheck,
                    last_detailed_region: region,
                    last_detailed_distance: 0.0,
                    sum_distance: 0.0,
                });
                Decision {
                    region,
                    cluster: c,
                    spawned: true,
                    distance: 0.0,
                    action: Action::Detail(DetailReason::NewCluster),
                }
            }
        };
        self.decisions.push(decision.clone());
        decision
    }

    /// Feeds back the outcome of a detailed region simulation: updates the
    /// cluster's prediction-error EWMA against what it *would* have
    /// predicted, adapts the staleness interval (confirming samples double
    /// it, disagreeing ones snap it back), resets the age, and installs
    /// the new IPC sample.
    pub fn observe_detailed(&mut self, cluster: usize, region: usize, distance: f64, ipc: f64) {
        let ea = self.cfg.err_alpha;
        let cl = &mut self.clusters[cluster];
        if let Some(prev) = cl.last_ipc {
            if ipc > 0.0 {
                let err = ((prev - ipc) / ipc).abs();
                cl.err_ewma = (1.0 - ea) * cl.err_ewma + ea * err;
                cl.recheck = if err <= self.cfg.max_err {
                    (cl.recheck * 2).min(self.cfg.max_age)
                } else {
                    self.cfg.min_recheck
                };
            }
        }
        cl.last_ipc = Some(ipc);
        cl.age = 0;
        cl.last_detailed_region = region;
        cl.last_detailed_distance = distance;
    }

    /// Clusters spawned so far.
    pub fn k(&self) -> usize {
        self.clusters.len()
    }

    /// The live clusters, by id.
    pub fn clusters(&self) -> &[OnlineCluster] {
        &self.clusters
    }

    /// The full decision log, in region order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn vec_of(pairs: &[(u64, u64)]) -> SparseVec {
        let map: HashMap<u64, u64> = pairs.iter().copied().collect();
        SparseVec::from_map(&map)
    }

    #[test]
    fn first_region_spawns_and_details() {
        let mut c = OnlineClassifier::new(OnlineConfig::default());
        let d = c.classify(0, &vec_of(&[(0, 10), (1, 5)]), 100);
        assert!(d.spawned);
        assert_eq!(d.action, Action::Detail(DetailReason::NewCluster));
        assert_eq!(c.k(), 1);
    }

    #[test]
    fn matched_region_predicts_after_a_sample() {
        let mut c = OnlineClassifier::new(OnlineConfig::default());
        let v = vec_of(&[(0, 10), (1, 5)]);
        let d0 = c.classify(0, &v, 100);
        c.observe_detailed(d0.cluster, 0, d0.distance, 1.5);
        let d1 = c.classify(1, &v, 100);
        assert!(!d1.spawned);
        assert_eq!(d1.cluster, d0.cluster);
        assert_eq!(d1.action, Action::Predict { ipc: 1.5 });
        // Without a detailed sample the match would have been re-simulated.
        let far = vec_of(&[(50, 10)]);
        let d2 = c.classify(2, &far, 100);
        assert!(d2.spawned);
        let d3 = c.classify(3, &far, 100);
        assert_eq!(d3.action, Action::Detail(DetailReason::NoSample));
    }

    #[test]
    fn distant_region_spawns_a_second_cluster() {
        let mut c = OnlineClassifier::new(OnlineConfig::default());
        c.classify(0, &vec_of(&[(0, 10)]), 100);
        let d = c.classify(1, &vec_of(&[(99, 10)]), 100);
        assert!(d.spawned);
        assert_eq!(d.cluster, 1);
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn staleness_backs_off_on_confirmation_and_snaps_back_on_drift() {
        let cfg = OnlineConfig {
            min_recheck: 2,
            max_age: 8,
            ..Default::default()
        };
        let mut c = OnlineClassifier::new(cfg);
        let v = vec_of(&[(0, 10)]);
        let d = c.classify(0, &v, 10);
        c.observe_detailed(d.cluster, 0, d.distance, 2.0);
        assert_eq!(c.clusters()[0].recheck, 2);

        // Confirming samples double the interval: 2 → 4 → 8 (capped).
        let mut stale_at = Vec::new();
        for i in 1..=20 {
            match c.classify(i, &v, 10).action {
                Action::Detail(DetailReason::Stale) => {
                    stale_at.push(i);
                    c.observe_detailed(0, i, 0.0, 2.0);
                }
                Action::Predict { .. } => {}
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(stale_at, vec![2, 6, 14], "intervals 2, 4, 8");
        assert_eq!(c.clusters()[0].recheck, 8, "capped at max_age");

        // A disagreeing sample snaps the interval back to min_recheck.
        let d = c.classify(21, &v, 10);
        assert!(matches!(d.action, Action::Predict { .. }));
        c.observe_detailed(0, 21, 0.0, 4.0);
        assert_eq!(c.clusters()[0].recheck, 2);
    }

    #[test]
    fn low_confidence_triggers_resimulation() {
        let cfg = OnlineConfig {
            max_err: 0.05,
            err_alpha: 1.0,
            max_age: 1000,
            ..Default::default()
        };
        let mut c = OnlineClassifier::new(cfg);
        let v = vec_of(&[(0, 10)]);
        let d = c.classify(0, &v, 10);
        c.observe_detailed(d.cluster, 0, d.distance, 2.0);
        // Second detailed observation wildly off: EWMA jumps to 100 %.
        let d1 = c.classify(1, &v, 10);
        assert_eq!(d1.action, Action::Predict { ipc: 2.0 });
        c.observe_detailed(0, 1, 0.0, 1.0);
        assert!(c.clusters()[0].err_ewma > 0.5);
        let d2 = c.classify(2, &v, 10);
        assert_eq!(d2.action, Action::Detail(DetailReason::LowConfidence));
        // A clean observation restores confidence.
        c.observe_detailed(0, 2, 0.0, 1.0);
        let d3 = c.classify(3, &v, 10);
        assert_eq!(d3.action, Action::Predict { ipc: 1.0 });
    }

    #[test]
    fn centroid_drifts_toward_members() {
        let mut c = OnlineClassifier::new(OnlineConfig {
            threshold: 1.5,
            ..Default::default()
        });
        c.classify(0, &vec_of(&[(0, 10)]), 10);
        // Nearby but not identical member pulls the centroid.
        c.classify(1, &vec_of(&[(0, 9), (1, 1)]), 10);
        let centroid = c.clusters()[0].centroid();
        assert!(centroid.entries().iter().any(|&(d, _)| d == 1));
    }

    #[test]
    fn bookkeeping_feeds_diagnostics() {
        let mut c = OnlineClassifier::new(OnlineConfig::default());
        let v = vec_of(&[(0, 10), (1, 2)]);
        let d0 = c.classify(0, &v, 100);
        c.observe_detailed(d0.cluster, 0, d0.distance, 1.0);
        c.classify(1, &v, 150);
        let cl = &c.clusters()[0];
        assert_eq!(cl.members, 2);
        assert_eq!(cl.filtered_insts, 250);
        assert_eq!(cl.last_detailed_region, 0);
        assert!(cl.mean_member_distance() >= 0.0);
        assert_eq!(c.decisions().len(), 2);
    }
}
