//! Golden-file test for the Prometheus text exporter: a fixed registry
//! must render byte-for-byte the pinned document — `# TYPE` lines,
//! sanitized names, cumulative log₂ `_bucket{le=...}` series, section and
//! name ordering all included. Any intentional format change must update
//! the golden string here consciously.

use lp_obs::federate::{render_labelled, rollup};
use lp_obs::prometheus::render;
use lp_obs::Observer;

const GOLDEN: &str = "\
# TYPE cluster_adopted counter
cluster_adopted 1
# TYPE cluster_fetch_hits counter
cluster_fetch_hits 2
# TYPE cluster_forwarded counter
cluster_forwarded 3
# TYPE farm_journal_compactions counter
farm_journal_compactions 2
# TYPE farm_journal_fsyncs counter
farm_journal_fsyncs 17
# TYPE farm_trace_evicted counter
farm_trace_evicted 9
# TYPE serve_http_keepalive_reuses counter
serve_http_keepalive_reuses 41
# TYPE sim_detailed_instructions counter
sim_detailed_instructions 123456
# TYPE store_hit counter
store_hit 3
# TYPE store_miss counter
store_miss 1
# TYPE analyze_k gauge
analyze_k 12
# TYPE cluster_owned_fraction gauge
cluster_owned_fraction 0.5
# TYPE cluster_peers_alive gauge
cluster_peers_alive 3
# TYPE cluster_peers_dead gauge
cluster_peers_dead 0
# TYPE farm_journal_lag gauge
farm_journal_lag 5
# TYPE farm_trace_capacity gauge
farm_trace_capacity 256
# TYPE farm_trace_finished gauge
farm_trace_finished 7
# TYPE farm_trace_live gauge
farm_trace_live 2
# TYPE serve_http_open_connections gauge
serve_http_open_connections 4
# TYPE sim_last_ipc gauge
sim_last_ipc 1.75
# TYPE region_checkpoint_bytes histogram
region_checkpoint_bytes_bucket{le=\"0\"} 1
region_checkpoint_bytes_bucket{le=\"1\"} 2
region_checkpoint_bytes_bucket{le=\"3\"} 3
region_checkpoint_bytes_bucket{le=\"1023\"} 5
region_checkpoint_bytes_bucket{le=\"+Inf\"} 5
region_checkpoint_bytes_sum 1539
region_checkpoint_bytes_count 5
";

#[test]
fn fixed_registry_renders_the_golden_document() {
    let obs = Observer::enabled();
    obs.counter("store.hit").add(3);
    obs.counter("store.miss").inc();
    obs.counter("sim.detailed.instructions").add(123_456);
    obs.counter(lp_obs::names::FARM_TRACE_EVICTED).add(9);
    obs.counter(lp_obs::names::FARM_JOURNAL_FSYNCS).add(17);
    obs.counter(lp_obs::names::FARM_JOURNAL_COMPACTIONS).add(2);
    obs.counter(lp_obs::names::SERVE_KEEPALIVE_REUSES).add(41);
    obs.counter(lp_obs::names::CLUSTER_ADOPTED).add(1);
    obs.counter(lp_obs::names::CLUSTER_FETCH_HITS).add(2);
    obs.counter(lp_obs::names::CLUSTER_FORWARDED).add(3);
    obs.gauge(lp_obs::names::CLUSTER_OWNED_FRACTION).set(0.5);
    obs.gauge(lp_obs::names::CLUSTER_PEERS_ALIVE).set(3.0);
    obs.gauge(lp_obs::names::CLUSTER_PEERS_DEAD).set(0.0);
    obs.gauge("analyze.k").set(12.0);
    obs.gauge("sim.last.ipc").set(1.75);
    obs.gauge(lp_obs::names::FARM_TRACE_CAPACITY).set(256.0);
    obs.gauge(lp_obs::names::FARM_TRACE_FINISHED).set(7.0);
    obs.gauge(lp_obs::names::FARM_TRACE_LIVE).set(2.0);
    obs.gauge(lp_obs::names::FARM_JOURNAL_LAG).set(5.0);
    obs.gauge(lp_obs::names::SERVE_OPEN_CONNECTIONS).set(4.0);
    let h = obs.histogram("region.checkpoint_bytes");
    h.record(0); // le="0",    cumulative 1
    h.record(1); // le="1",    cumulative 2
    h.record(3); // le="3",    cumulative 3
    h.record(512); // le="1023"
    h.record(1023); // le="1023", cumulative 5; sum = 0+1+3+512+1023 = 1539
    assert_eq!(render(&obs.snapshot()), GOLDEN);
}

/// The federated (`/cluster/metrics?format=prometheus`) rendering: every
/// node's series labelled `node="addr"`, then the unlabelled ring-wide
/// rollup — counters summed, `farm.queue.depth` summed but
/// `cluster.ring.nodes` max'd (the agreement-gauge policy), histogram
/// buckets merged.
const GOLDEN_FEDERATED: &str = "\
# TYPE farm_submitted counter
farm_submitted{node=\"127.0.0.1:7101\"} 2
farm_submitted{node=\"127.0.0.1:7102\"} 4
farm_submitted 6
# TYPE cluster_ring_nodes gauge
cluster_ring_nodes{node=\"127.0.0.1:7101\"} 2
cluster_ring_nodes{node=\"127.0.0.1:7102\"} 2
cluster_ring_nodes 2
# TYPE farm_queue_depth gauge
farm_queue_depth{node=\"127.0.0.1:7101\"} 1
farm_queue_depth{node=\"127.0.0.1:7102\"} 3
farm_queue_depth 4
# TYPE farm_queue_wait_us histogram
farm_queue_wait_us_bucket{node=\"127.0.0.1:7101\",le=\"0\"} 1
farm_queue_wait_us_bucket{node=\"127.0.0.1:7101\",le=\"127\"} 2
farm_queue_wait_us_bucket{node=\"127.0.0.1:7101\",le=\"+Inf\"} 2
farm_queue_wait_us_sum{node=\"127.0.0.1:7101\"} 100
farm_queue_wait_us_count{node=\"127.0.0.1:7101\"} 2
farm_queue_wait_us_bucket{node=\"127.0.0.1:7102\",le=\"127\"} 1
farm_queue_wait_us_bucket{node=\"127.0.0.1:7102\",le=\"+Inf\"} 1
farm_queue_wait_us_sum{node=\"127.0.0.1:7102\"} 100
farm_queue_wait_us_count{node=\"127.0.0.1:7102\"} 1
farm_queue_wait_us_bucket{le=\"0\"} 1
farm_queue_wait_us_bucket{le=\"127\"} 3
farm_queue_wait_us_bucket{le=\"+Inf\"} 3
farm_queue_wait_us_sum 200
farm_queue_wait_us_count 3
";

#[test]
fn federated_registries_render_the_labelled_golden_document() {
    let a = Observer::enabled();
    a.counter(lp_obs::names::FARM_SUBMITTED).add(2);
    a.gauge(lp_obs::names::FARM_QUEUE_DEPTH).set(1.0);
    a.gauge(lp_obs::names::CLUSTER_RING_NODES).set(2.0);
    a.histogram(lp_obs::names::FARM_QUEUE_WAIT_US).record(0);
    a.histogram(lp_obs::names::FARM_QUEUE_WAIT_US).record(100);

    let b = Observer::enabled();
    b.counter(lp_obs::names::FARM_SUBMITTED).add(4);
    b.gauge(lp_obs::names::FARM_QUEUE_DEPTH).set(3.0);
    b.gauge(lp_obs::names::CLUSTER_RING_NODES).set(2.0);
    b.histogram(lp_obs::names::FARM_QUEUE_WAIT_US).record(100);

    let nodes = vec![
        ("127.0.0.1:7101".to_string(), a.snapshot()),
        ("127.0.0.1:7102".to_string(), b.snapshot()),
    ];
    let merged = rollup(&[nodes[0].1.clone(), nodes[1].1.clone()]);
    assert_eq!(render_labelled(&nodes, &merged), GOLDEN_FEDERATED);
}
