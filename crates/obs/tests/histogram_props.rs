//! Property tests for the log2 histogram bucketing in `lp_obs::metrics`:
//! every `u64` lands in exactly one of the 65 buckets, bucket bounds
//! bracket the value, and the mapping is monotone. Edge values (0, 1,
//! powers of two, `u64::MAX`) are additionally pinned exactly.

use lp_obs::metrics::{bucket_index, bucket_lower_bound, HISTOGRAM_BUCKETS};
use lp_obs::Observer;
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_value_lands_in_a_valid_bucket(v in proptest::prelude::any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        // The bucket's bounds bracket the value.
        prop_assert!(bucket_lower_bound(i) <= v);
        if i + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < bucket_lower_bound(i + 1));
        }
    }

    #[test]
    fn bucketing_is_monotone(a in proptest::prelude::any::<u64>(), b in proptest::prelude::any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn recorded_values_show_up_in_snapshots(v in proptest::prelude::any::<u64>()) {
        let obs = Observer::enabled();
        obs.histogram("h").record(v);
        let snap = obs.snapshot();
        let h = &snap.histograms["h"];
        prop_assert_eq!(h.count, 1);
        prop_assert_eq!(h.sum, v);
        // Exactly one non-empty bucket: the value's, with one sample.
        let expected = vec![(bucket_lower_bound(bucket_index(v)), 1u64)];
        prop_assert_eq!(&h.buckets, &expected);
    }
}

#[test]
fn pinned_edges() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_index(1u64 << 63), 64);
    assert_eq!(bucket_lower_bound(0), 0);
    assert_eq!(bucket_lower_bound(1), 1);
    assert_eq!(bucket_lower_bound(64), 1u64 << 63);
}
