//! Regression tests for [`lp_obs::http::HttpClient`] stale keep-alive
//! handling: a server whose idle reaper closes connections between
//! requests must never surface an error to the caller — the client
//! reconnects transparently and re-sends the request once.

use lp_obs::http::{HttpClient, Response};
use lp_obs::httpd::{HttpServer, ServerConfig};
use lp_obs::Observer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An echo server with a *tiny* idle timeout, so every request after a
/// short pause lands on a connection the reaper already closed.
fn reaper_server(idle_ms: u64) -> (HttpServer, Arc<AtomicU64>) {
    let hits = Arc::new(AtomicU64::new(0));
    let handler_hits = Arc::clone(&hits);
    let server = HttpServer::start(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_millis(idle_ms),
            thread_name: "reaper-test".to_string(),
            ..ServerConfig::default()
        },
        Arc::new(move |req: &lp_obs::http::Request| {
            handler_hits.fetch_add(1, Ordering::SeqCst);
            Response::json_ok(format!(
                "{{\"method\":\"{}\",\"len\":{}}}",
                req.method,
                req.body.len()
            ))
        }),
        Observer::disabled(),
    )
    .expect("bind reaper server");
    (server, hits)
}

#[test]
fn idle_reaped_connection_is_transparently_retried() {
    let (server, hits) = reaper_server(50);
    let addr = server.local_addr().to_string();
    let mut client = HttpClient::new(addr);
    // First request opens the connection; each later one arrives well
    // past the idle timeout, so the server has closed the socket in
    // between every time. All of them must still succeed.
    for i in 0..6 {
        let (status, body) = client
            .request("GET", "/ping", "")
            .unwrap_or_else(|e| panic!("request {i} surfaced a stale-connection error: {e}"));
        assert_eq!(status, 200, "request {i}: {body}");
        std::thread::sleep(Duration::from_millis(400));
    }
    assert_eq!(hits.load(Ordering::SeqCst), 6, "every request was served");
    assert!(
        client.reconnects() >= 1,
        "the stale keep-alive path must actually have been exercised \
         (reconnects = {})",
        client.reconnects()
    );
    server.stop();
}

#[test]
fn stale_posts_retry_on_connection_signatures() {
    // POSTs are not idempotent in general, but a reaped idle connection
    // is an unambiguous "never reached a handler" signature (EOF/RST
    // before any response byte) — those must retry too.
    let (server, hits) = reaper_server(50);
    let addr = server.local_addr().to_string();
    let mut client = HttpClient::new(addr);
    for i in 0..4 {
        let (status, _) = client
            .request("POST", "/jobs", "{\"p\":1}\n")
            .unwrap_or_else(|e| panic!("POST {i} surfaced a stale-connection error: {e}"));
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(400));
    }
    assert_eq!(
        hits.load(Ordering::SeqCst),
        4,
        "each POST executed exactly once — the retry replaces the lost \
         request instead of duplicating a served one"
    );
    server.stop();
}

#[test]
fn send_roundtrips_binary_bodies_and_headers() {
    let server = HttpServer::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(|req: &lp_obs::http::Request| {
            // Echo the body bytes back, tagged with a custom header the
            // client must be able to read.
            let mut resp = Response::bytes_ok(req.body.clone());
            if let Some(v) = req.header("x-lp-proto") {
                resp = resp.with_header("x-lp-proto", v.to_string());
            }
            resp
        }),
        Observer::disabled(),
    )
    .expect("bind echo server");
    let addr = server.local_addr().to_string();
    let mut client = HttpClient::new(addr);
    // Bytes that are deliberately not valid UTF-8.
    let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
    let headers = vec![("x-lp-proto".to_string(), "1".to_string())];
    let resp = client
        .send("POST", "/echo", &headers, &payload, None, true)
        .expect("binary round trip");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, payload, "body must be binary-clean");
    assert_eq!(resp.header("x-lp-proto"), Some("1"));
    server.stop();
}
