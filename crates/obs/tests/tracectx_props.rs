//! Property tests for the distributed trace-context wire format in
//! `lp_obs::tracectx`: any context round-trips through its traceparent
//! header losslessly, and arbitrary malformed/truncated header strings are
//! rejected with `None` — the parser must never panic, because headers
//! arrive from the network.

use lp_obs::tracectx::TraceContext;
use lp_obs::{SpanId, TraceId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn header_roundtrips_any_nonzero_ids(
        hi in proptest::prelude::any::<u64>(),
        lo in proptest::prelude::any::<u64>(),
        span in proptest::prelude::any::<u64>(),
    ) {
        let ctx = TraceContext {
            trace_id: TraceId((((hi as u128) << 64) | lo as u128).max(1)),
            span_id: SpanId(span.max(1)),
            parent_id: None,
        };
        let header = ctx.to_traceparent();
        prop_assert_eq!(header.len(), 55, "00-<32 hex>-<16 hex>-01");
        let back = TraceContext::parse_traceparent(&header)
            .expect("well-formed header must parse");
        prop_assert_eq!(back.trace_id, ctx.trace_id);
        prop_assert_eq!(back.span_id, ctx.span_id);
        prop_assert_eq!(back.parent_id, None);
    }

    #[test]
    fn arbitrary_strings_never_panic(seed in proptest::prelude::any::<u64>(), len in 0usize..80) {
        // Printable-ASCII garbage (biased toward header-ish bytes so the
        // parser's deeper branches get exercised): parse must return (not
        // panic); and if it does parse, re-encoding is the identity.
        let mut state = seed;
        let s: String = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = (state >> 33) as u8;
                match b % 4 {
                    0 => char::from(b'0' + b % 10),
                    1 => char::from(b'a' + b % 6),
                    2 => '-',
                    _ => char::from(b' ' + b % 95),
                }
            })
            .collect();
        if let Some(ctx) = TraceContext::parse_traceparent(&s) {
            let again = TraceContext::parse_traceparent(&ctx.to_traceparent()).unwrap();
            prop_assert_eq!(again.trace_id, ctx.trace_id);
            prop_assert_eq!(again.span_id, ctx.span_id);
        }
    }

    #[test]
    fn truncations_of_a_valid_header_are_rejected(cut in 0usize..55) {
        let header = TraceContext::new_root().to_traceparent();
        prop_assert!(
            TraceContext::parse_traceparent(&header[..cut]).is_none(),
            "truncated header {:?} must not parse", &header[..cut]
        );
    }

    #[test]
    fn corrupting_one_byte_never_panics(pos in 0usize..55, byte in proptest::prelude::any::<u8>()) {
        let header = TraceContext::new_root().to_traceparent();
        let mut bytes = header.into_bytes();
        bytes[pos] = byte;
        if let Ok(s) = String::from_utf8(bytes) {
            // May or may not parse (the byte might be a valid hex digit);
            // either way it must return without panicking.
            let _ = TraceContext::parse_traceparent(&s);
        }
    }
}

#[test]
fn zero_ids_are_invalid_on_the_wire() {
    let zero_trace = format!("00-{}-{:016x}-01", "0".repeat(32), 5u64);
    assert!(TraceContext::parse_traceparent(&zero_trace).is_none());
    let zero_span = format!("00-{:032x}-{}-01", 5u128, "0".repeat(16));
    assert!(TraceContext::parse_traceparent(&zero_span).is_none());
}

#[test]
fn malformed_catalogue_is_rejected() {
    for bad in [
        "",
        "00",
        "hello",
        "00-xyz-abc-01",
        "00--",
        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
        "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad version
        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", // bad flags
        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01", // short span id
    ] {
        assert!(
            TraceContext::parse_traceparent(bad).is_none(),
            "{bad:?} must be rejected"
        );
    }
}
