//! Exporters: Chrome `trace_event` JSON and the flat metrics report.

use crate::json::Value;
use crate::trace::{TraceArg, TraceEvent};

impl TraceArg {
    fn to_json(&self) -> Value {
        match self {
            TraceArg::U64(v) => Value::from(*v),
            TraceArg::F64(v) => Value::Num(*v),
            TraceArg::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// Renders events as a Chrome `trace_event` JSON object — loadable in
/// `chrome://tracing` and <https://ui.perfetto.dev>.
pub fn chrome_trace_document(events: &[TraceEvent]) -> Value {
    chrome_trace_document_with_pid(events, 1)
}

/// [`chrome_trace_document`] with an explicit `pid` on every event, so a
/// multi-node trace can give each node its own process lane (the cluster
/// layer uses the node's ring ordinal). Pair it with
/// [`process_name_metadata`] to label the lane in the viewer.
pub fn chrome_trace_document_with_pid(events: &[TraceEvent], pid: u64) -> Value {
    let mut out: Vec<Value> = Vec::with_capacity(events.len());
    for e in events {
        let mut members: Vec<(String, Value)> = vec![
            ("name".to_string(), Value::Str(e.name.clone())),
            ("cat".to_string(), Value::Str(e.cat.to_string())),
            ("ph".to_string(), Value::Str(e.ph.code().to_string())),
            ("ts".to_string(), Value::from(e.ts_us)),
            ("pid".to_string(), Value::from(pid)),
            ("tid".to_string(), Value::from(e.tid)),
        ];
        match e.ph {
            crate::trace::Phase::Complete => {
                members.insert(4, ("dur".to_string(), Value::from(e.dur_us)));
            }
            crate::trace::Phase::Instant => {
                // Thread-scoped instant.
                members.push(("s".to_string(), Value::Str("t".to_string())));
            }
            crate::trace::Phase::Counter => {}
        }
        if !e.args.is_empty() || e.ctx.is_some() {
            let mut args: Vec<(String, Value)> = e
                .args
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect();
            // Distributed-trace ids ride in args: Perfetto surfaces them
            // on the span, and trace consumers reassemble parent/child
            // links without a side channel.
            if let Some(ctx) = e.ctx {
                args.push(("trace_id".to_string(), Value::Str(ctx.trace_id.hex())));
                args.push(("span_id".to_string(), Value::Str(ctx.span_id.hex())));
                if let Some(parent) = ctx.parent_id {
                    args.push(("parent_span_id".to_string(), Value::Str(parent.hex())));
                }
            }
            members.push(("args".to_string(), Value::Obj(args)));
        }
        out.push(Value::Obj(members));
    }
    Value::Obj(vec![
        ("traceEvents".to_string(), Value::Arr(out)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Obj(vec![(
                "producer".to_string(),
                Value::Str("lp-obs".to_string()),
            )]),
        ),
    ])
}

/// A Chrome-trace `process_name` metadata event (`ph: "M"`): names the
/// `pid` lane in the trace viewer. The cluster layer prepends one per
/// node so a merged trace shows node addresses instead of bare ordinals.
pub fn process_name_metadata(pid: u64, name: &str) -> Value {
    Value::Obj(vec![
        ("name".to_string(), Value::Str("process_name".to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::from(pid)),
        ("tid".to_string(), Value::from(0u64)),
        (
            "args".to_string(),
            Value::Obj(vec![("name".to_string(), Value::Str(name.to_string()))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Phase;

    fn ev(name: &str, ph: Phase) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test",
            ph,
            ts_us: 5,
            dur_us: 7,
            tid: 2,
            args: vec![("n".to_string(), TraceArg::U64(3))],
            ctx: None,
        }
    }

    #[test]
    fn chrome_document_shape() {
        let doc = chrome_trace_document(&[ev("span", Phase::Complete), ev("tick", Phase::Instant)]);
        let parsed = crate::json::parse(&doc.to_string()).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        let span = &evs[0];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(7));
        assert_eq!(span.get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(span.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(
            span.get("args").unwrap().get("n").unwrap().as_u64(),
            Some(3)
        );
        let tick = &evs[1];
        assert_eq!(tick.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(tick.get("s").unwrap().as_str(), Some("t"));
        assert!(tick.get("dur").is_none(), "instants carry no duration");
    }

    #[test]
    fn pid_override_and_process_name_metadata() {
        let doc = chrome_trace_document_with_pid(&[ev("span", Phase::Complete)], 3);
        let parsed = crate::json::parse(&doc.to_string()).unwrap();
        let span = &parsed.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(span.get("pid").unwrap().as_u64(), Some(3));

        let meta = crate::json::parse(&process_name_metadata(3, "lp-farm 127.0.0.1:9").to_string())
            .unwrap();
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(meta.get("name").unwrap().as_str(), Some("process_name"));
        assert_eq!(meta.get("pid").unwrap().as_u64(), Some(3));
        assert_eq!(
            meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("lp-farm 127.0.0.1:9")
        );
    }

    #[test]
    fn trace_context_ids_ride_in_args() {
        let root = crate::tracectx::TraceContext::new_root();
        let child = root.child();
        let mut e = ev("span", Phase::Complete);
        e.ctx = Some(child);
        let doc = chrome_trace_document(&[e]);
        let parsed = crate::json::parse(&doc.to_string()).unwrap();
        let span = &parsed.get("traceEvents").unwrap().as_arr().unwrap()[0];
        let args = span.get("args").unwrap();
        assert_eq!(
            args.get("trace_id").unwrap().as_str(),
            Some(root.trace_id.hex().as_str())
        );
        assert_eq!(
            args.get("span_id").unwrap().as_str(),
            Some(child.span_id.hex().as_str())
        );
        assert_eq!(
            args.get("parent_span_id").unwrap().as_str(),
            Some(root.span_id.hex().as_str())
        );
        // Pre-existing args survive alongside the ids.
        assert_eq!(args.get("n").unwrap().as_u64(), Some(3));
    }
}
