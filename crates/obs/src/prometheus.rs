//! Prometheus text exposition (format 0.0.4) rendered from a
//! [`MetricsSnapshot`] — the payload of the live `/metrics` endpoint.
//!
//! * Counters and gauges render as one sample each, preceded by a
//!   `# TYPE` line.
//! * The log₂ [`crate::Histogram`]s render as proper cumulative
//!   `_bucket{le="..."}` series (`le` is the *inclusive* upper bound of
//!   each power-of-two bucket) plus `_sum` and `_count`, so standard
//!   `histogram_quantile()` queries work on them.
//! * Dotted pipeline names (`store.hit`) are sanitized to the Prometheus
//!   charset (`store_hit`); see [`sanitize_name`].

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Maps a pipeline metric name onto the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every disallowed character becomes `_`,
/// and a leading digit is prefixed with `_`.
///
/// ```
/// assert_eq!(lp_obs::prometheus::sanitize_name("store.hit"), "store_hit");
/// assert_eq!(lp_obs::prometheus::sanitize_name("2fast"), "_2fast");
/// assert_eq!(lp_obs::prometheus::sanitize_name("sim/ipc-now"), "sim_ipc_now");
/// ```
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats an `f64` sample the way Prometheus expects (`NaN`, `+Inf`,
/// `-Inf` spelled out).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Inclusive upper bound (`le` label) of the log₂ bucket whose *lower*
/// bound is `lo`: the zero bucket holds exactly 0, bucket `[2^i, 2^(i+1))`
/// has inclusive upper bound `2^(i+1) - 1`.
pub(crate) fn le_bound(lo: u64) -> String {
    if lo == 0 {
        "0".to_string()
    } else {
        // lo is a power of two; the bucket covers [lo, 2*lo).
        match lo.checked_mul(2) {
            Some(hi) => (hi - 1).to_string(),
            None => u64::MAX.to_string(),
        }
    }
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for &(lo, count) in &h.buckets {
        cumulative += count;
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", le_bound(lo));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders a whole snapshot as a Prometheus text-format document:
/// counters, then gauges, then histograms, each section in name order
/// (the snapshot's maps are already sorted).
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, &value) in &snapshot.counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, &value) in &snapshot.gauges {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(value));
    }
    for (name, h) in &snapshot.histograms {
        render_histogram(&mut out, &sanitize_name(name), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn sanitize_edge_cases() {
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize_name("a.b.c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("héllo"), "h_llo");
    }

    #[test]
    fn every_metric_kind_gets_a_type_line() {
        let reg = MetricsRegistry::default();
        reg.counter("c.one").add(3);
        reg.gauge("g.one").set(1.5);
        reg.histogram("h.one").record(5);
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE c_one counter\nc_one 3\n"));
        assert!(text.contains("# TYPE g_one gauge\ng_one 1.5\n"));
        assert!(text.contains("# TYPE h_one histogram\n"));
        assert!(text.contains("h_one_sum 5\n"));
        assert!(text.contains("h_one_count 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inclusive_le() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("lat");
        h.record(0); // bucket le="0"
        h.record(1); // [1,2) -> le="1"
        h.record(3); // [2,4) -> le="3"
        h.record(3);
        let text = render(&reg.snapshot());
        assert!(text.contains("lat_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_sum 7\n"));
        assert!(text.contains("lat_count 4\n"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket series must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn top_bucket_le_does_not_overflow() {
        assert_eq!(le_bound(1u64 << 63), u64::MAX.to_string());
        assert_eq!(le_bound(1), "1");
        assert_eq!(le_bound(2), "3");
        assert_eq!(le_bound(0), "0");
    }

    #[test]
    fn non_finite_gauges_render_prometheus_style() {
        let reg = MetricsRegistry::default();
        reg.gauge("nan").set(f64::NAN);
        reg.gauge("pinf").set(f64::INFINITY);
        reg.gauge("ninf").set(f64::NEG_INFINITY);
        let text = render(&reg.snapshot());
        assert!(text.contains("nan NaN\n"));
        assert!(text.contains("pinf +Inf\n"));
        assert!(text.contains("ninf -Inf\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty_document() {
        assert_eq!(render(&MetricsSnapshot::default()), "");
    }
}
