//! Distributed trace context: 128-bit trace ids, 64-bit span ids, and a
//! `traceparent`-style wire encoding, so one job's causally-linked spans
//! survive every hop (HTTP submission → farm queue → worker attempt →
//! pipeline phases → store I/O) and can be reassembled into a single
//! timeline.
//!
//! The design follows the W3C Trace Context header shape
//! (`00-<32 hex trace id>-<16 hex span id>-01`) without claiming full
//! spec compliance: version and flags are carried but ignored, and any
//! malformed header parses to `None` so a receiver falls back to a fresh
//! root context — propagation failures degrade to disconnected traces,
//! never to panics.
//!
//! ## Ambient context
//!
//! A [`TraceContext`] can be *attached* to the current thread
//! ([`TraceContext::attach`]); while the returned guard lives,
//! [`current`] returns it and every span opened via
//! [`crate::Observer::span`] automatically becomes a child. This is how
//! pre-existing pipeline spans (analyze phases, region sims, store
//! load/save) get parented under a job's context without threading an
//! argument through every call site.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Wire header name carrying a [`TraceContext`] on HTTP requests.
pub const TRACEPARENT_HEADER: &str = "traceparent";

/// A 128-bit trace identifier shared by every span of one trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// The 32-lowercase-hex wire form.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses exactly 32 lowercase/uppercase hex chars; `None` otherwise.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl std::fmt::Debug for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceId({})", self.hex())
    }
}

/// A 64-bit span identifier, unique within its trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The 16-lowercase-hex wire form.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses exactly 16 hex chars; `None` otherwise.
    pub fn parse_hex(s: &str) -> Option<SpanId> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(SpanId)
    }
}

impl std::fmt::Debug for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpanId({})", self.hex())
    }
}

/// One position in a trace: which trace, which span, and (locally) which
/// parent span. Only `trace_id` and `span_id` travel on the wire; the
/// parent link is reconstructed on the receiving side by making the
/// incoming context the parent of a fresh child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every descendant span shares.
    pub trace_id: TraceId,
    /// This hop's span id.
    pub span_id: SpanId,
    /// The parent span within this process, if any.
    pub parent_id: Option<SpanId>,
}

/// Deterministic mixer (SplitMix64) over an entropy seed; good enough for
/// collision-resistant ids without an RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static ID_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh pseudo-random non-zero 64-bit id: wall clock ⊕ pid ⊕ a global
/// counter, mixed through SplitMix64.
fn fresh_u64() -> u64 {
    let seq = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let pid = u64::from(std::process::id());
    let v = splitmix64(nanos ^ pid.rotate_left(32) ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if v == 0 {
        1
    } else {
        v
    }
}

impl TraceContext {
    /// Starts a brand-new trace (fresh random trace id, root span).
    pub fn new_root() -> TraceContext {
        let hi = fresh_u64();
        let lo = fresh_u64();
        TraceContext {
            trace_id: TraceId((u128::from(hi) << 64) | u128::from(lo)),
            span_id: SpanId(fresh_u64()),
            parent_id: None,
        }
    }

    /// A child context: same trace, fresh span id, parented to `self`.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: SpanId(fresh_u64()),
            parent_id: Some(self.span_id),
        }
    }

    /// The `traceparent` wire form: `00-<trace id>-<span id>-01`.
    pub fn to_traceparent(&self) -> String {
        format!("00-{}-{}-01", self.trace_id.hex(), self.span_id.hex())
    }

    /// Parses a `traceparent` header value. Strict on shape (four
    /// dash-separated fields of 2/32/16/2 hex chars, non-zero ids) but
    /// lenient on content (version and flags are accepted verbatim).
    /// Malformed or truncated input yields `None` — callers fall back to
    /// [`TraceContext::new_root`]; this function never panics.
    pub fn parse_traceparent(s: &str) -> Option<TraceContext> {
        let s = s.trim();
        let mut parts = s.split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let flags = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        let two_hex = |f: &str| f.len() == 2 && f.bytes().all(|b| b.is_ascii_hexdigit());
        if !two_hex(version) || !two_hex(flags) {
            return None;
        }
        let trace_id = TraceId::parse_hex(trace)?;
        let span_id = SpanId::parse_hex(span)?;
        if trace_id.0 == 0 || span_id.0 == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            parent_id: None,
        })
    }

    /// Makes this context the calling thread's current one for the
    /// lifetime of the returned guard (re-entrant: contexts nest).
    pub fn attach(&self) -> ContextGuard {
        STACK.with(|stack| stack.borrow_mut().push(*self));
        ContextGuard {
            span_id: self.span_id,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's innermost attached context, if any.
pub fn current() -> Option<TraceContext> {
    STACK.with(|stack| stack.borrow().last().copied())
}

/// The current context, or a fresh root when none is attached.
pub fn current_or_root() -> TraceContext {
    current().unwrap_or_else(TraceContext::new_root)
}

/// RAII guard from [`TraceContext::attach`]: detaches the context on
/// drop. Detaching pops the matching stack entry (searched from the
/// innermost end), so out-of-order drops degrade gracefully instead of
/// corrupting unrelated contexts.
#[derive(Debug)]
#[must_use = "dropping the guard detaches the context immediately"]
pub struct ContextGuard {
    span_id: SpanId,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| c.span_id == self.span_id) {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_distinct_and_nonzero() {
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
        assert!(a.trace_id.0 != 0 && a.span_id.0 != 0);
        assert_eq!(a.parent_id, None);
    }

    #[test]
    fn children_stay_in_the_trace_and_link_back() {
        let root = TraceContext::new_root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(child.parent_id, Some(root.span_id));
    }

    #[test]
    fn traceparent_roundtrips() {
        let ctx = TraceContext::new_root();
        let header = ctx.to_traceparent();
        assert_eq!(header.len(), 55);
        let back = TraceContext::parse_traceparent(&header).unwrap();
        assert_eq!(back.trace_id, ctx.trace_id);
        assert_eq!(back.span_id, ctx.span_id);
        assert_eq!(back.parent_id, None);
    }

    #[test]
    fn malformed_headers_parse_to_none() {
        for bad in [
            "",
            "00",
            "garbage",
            "00-short-0123456789abcdef-01",
            "00-0123456789abcdef0123456789abcdef-short-01",
            "00-0123456789abcdef0123456789abcdef-0123456789abcdef",
            "00-00000000000000000000000000000000-0123456789abcdef-01",
            "00-0123456789abcdef0123456789abcdef-0000000000000000-01",
            "zz-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
            "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01-extra",
            "00-0123456789abcdefg123456789abcdef-0123456789abcdef-01",
        ] {
            assert_eq!(TraceContext::parse_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn attach_nests_and_detaches_in_order() {
        assert_eq!(current(), None);
        let outer = TraceContext::new_root();
        let g1 = outer.attach();
        assert_eq!(current(), Some(outer));
        {
            let inner = outer.child();
            let _g2 = inner.attach();
            assert_eq!(current(), Some(inner));
        }
        assert_eq!(current(), Some(outer));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn out_of_order_drop_is_tolerated() {
        let a = TraceContext::new_root();
        let b = a.child();
        let ga = a.attach();
        let gb = b.attach();
        drop(ga); // dropped before the inner guard
        assert_eq!(current(), Some(b), "inner context survives");
        drop(gb);
        assert_eq!(current(), None);
    }

    #[test]
    fn current_or_root_synthesizes() {
        let ctx = current_or_root();
        assert!(ctx.trace_id.0 != 0);
        let attached = TraceContext::new_root();
        let _g = attached.attach();
        assert_eq!(current_or_root(), attached);
    }
}
