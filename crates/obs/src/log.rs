//! Leveled logging: a process-global level gate plus `lp_info!` /
//! `lp_debug!` / `lp_warn!` macros.
//!
//! The level is a single atomic, so a disabled call site costs one relaxed
//! load. `quiet` silences all library output; `info` is the default
//! (matching the driver's historical `println!` verbosity); `debug` adds
//! per-phase diagnostics.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// No library output at all.
    Quiet = 0,
    /// Progress messages (the default).
    Info = 1,
    /// Per-phase diagnostics.
    Debug = 2,
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "quiet" | "q" => Ok(LogLevel::Quiet),
            "info" | "i" => Ok(LogLevel::Info),
            "debug" | "d" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level '{other}' (expected quiet|info|debug)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the process-global log level.
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global log level.
pub fn log_level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Quiet,
        1 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Whether messages at `level` are currently emitted.
#[inline]
pub fn log_enabled(level: LogLevel) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed) && level != LogLevel::Quiet
}

/// Logs a progress message to stdout at `info` level.
#[macro_export]
macro_rules! lp_info {
    ($($t:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Info) {
            println!($($t)*);
        }
    };
}

/// Logs a diagnostic message to stdout at `debug` level.
#[macro_export]
macro_rules! lp_debug {
    ($($t:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Debug) {
            println!("[debug] {}", format_args!($($t)*));
        }
    };
}

/// Logs a warning to stderr (shown at `info` and `debug` levels).
#[macro_export]
macro_rules! lp_warn {
    ($($t:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Info) {
            eprintln!("warning: {}", format_args!($($t)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!("quiet".parse::<LogLevel>().unwrap(), LogLevel::Quiet);
        assert_eq!("info".parse::<LogLevel>().unwrap(), LogLevel::Info);
        assert_eq!("debug".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("verbose".parse::<LogLevel>().is_err());
    }

    #[test]
    fn gating_is_ordered() {
        // Note: other tests in this binary share the global; restore it.
        let prior = log_level();
        set_log_level(LogLevel::Quiet);
        assert!(!log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Info);
        assert!(log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Debug);
        assert!(log_enabled(LogLevel::Debug));
        set_log_level(prior);
    }
}
