//! Crash-safe telemetry export: atomic file writes plus a background
//! flusher that periodically rewrites the trace/metrics outputs.
//!
//! Historically the driver wrote `--trace-out`/`--metrics-out` once, at
//! the end of a *successful* run — a panic or `kill` lost every recorded
//! span and counter. [`PeriodicFlusher`] rewrites both files every
//! interval with the same temp-file + fsync + rename pattern the artifact
//! store uses, so at any instant the on-disk files are complete, valid
//! JSON no more than one interval stale.

use crate::names;
use crate::Observer;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Writes `bytes` to `path` atomically: unique temp file in the target's
/// directory, fsync, rename over the target, fsync the directory.
/// A crash at any point leaves either the old file or the new one —
/// never a truncated mix.
///
/// # Errors
/// Propagates filesystem errors; the temp file is removed on failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, dir.join(file_name))?;
        // Durability of the rename itself: fsync the directory. Some
        // platforms refuse to open directories for writing; a failure here
        // only weakens crash-durability, never correctness, so ignore it.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Which export files a flush rewrites.
#[derive(Debug, Clone, Default)]
pub struct FlushTargets {
    /// Chrome `trace_event` JSON destination (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Flat metrics report JSON destination (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
}

impl FlushTargets {
    /// Whether there is anything to write at all.
    pub fn is_empty(&self) -> bool {
        self.trace_out.is_none() && self.metrics_out.is_none()
    }
}

/// Atomically (re)writes every configured export from the observer's
/// current state. This is the single finalize helper every driver exit
/// path (success *and* error) routes through.
///
/// # Errors
/// The first filesystem error; remaining targets are still attempted.
pub fn flush_exports(obs: &Observer, targets: &FlushTargets) -> io::Result<()> {
    let mut first_err: Option<io::Error> = None;
    if let Some(path) = &targets.trace_out {
        if let Err(e) = obs.write_chrome_trace(path) {
            first_err.get_or_insert(e);
        }
    }
    if let Some(path) = &targets.metrics_out {
        if let Err(e) = obs.write_metrics(path) {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

struct FlushShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A background thread that calls [`flush_exports`] every `interval`, so
/// a crashed or killed run still leaves parseable telemetry on disk, at
/// most one interval stale. Periodic write failures are counted
/// (`obs.flush.errors`) but never abort the run.
#[derive(Debug)]
#[must_use = "dropping the flusher stops periodic flushing; call stop() for a final flush"]
pub struct PeriodicFlusher {
    shared: Arc<FlushShared>,
    handle: Option<JoinHandle<()>>,
    obs: Observer,
    targets: FlushTargets,
}

impl std::fmt::Debug for FlushShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FlushShared")
    }
}

impl PeriodicFlusher {
    /// Starts the flusher thread. With empty `targets` or a disabled
    /// observer no thread is spawned (stop becomes a cheap no-op).
    pub fn start(obs: Observer, targets: FlushTargets, interval: Duration) -> PeriodicFlusher {
        let shared = Arc::new(FlushShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let handle = if targets.is_empty() || !obs.is_enabled() {
            None
        } else {
            let shared = Arc::clone(&shared);
            let obs = obs.clone();
            let targets = targets.clone();
            std::thread::Builder::new()
                .name("lp-obs-flush".to_string())
                .spawn(move || {
                    let mut stopped = shared.stop.lock().expect("flush lock poisoned");
                    loop {
                        let (guard, _timeout) = shared
                            .wake
                            .wait_timeout(stopped, interval)
                            .expect("flush lock poisoned");
                        stopped = guard;
                        if *stopped {
                            break;
                        }
                        match flush_exports(&obs, &targets) {
                            Ok(()) => obs.counter(names::OBS_FLUSH_WRITES).inc(),
                            Err(_) => obs.counter(names::OBS_FLUSH_ERRORS).inc(),
                        }
                    }
                })
                .ok()
        };
        PeriodicFlusher {
            shared,
            handle,
            obs,
            targets,
        }
    }

    /// Stops the thread and performs one final flush, so the on-disk
    /// files reflect the very last state (final counters included).
    ///
    /// # Errors
    /// The final flush's first filesystem error.
    pub fn stop(mut self) -> io::Result<()> {
        self.signal_and_join();
        if self.targets.is_empty() {
            return Ok(());
        }
        flush_exports(&self.obs, &self.targets)
    }

    fn signal_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            *self.shared.stop.lock().expect("flush lock poisoned") = true;
            self.shared.wake.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for PeriodicFlusher {
    fn drop(&mut self) {
        // Best-effort: stop the thread and leave a final state on disk
        // even if stop() was never called (e.g. unwinding).
        self.signal_and_join();
        if !self.targets.is_empty() && self.obs.is_enabled() {
            let _ = flush_exports(&self.obs, &self.targets);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "lp-obs-flush-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let d = tmpdir("atomic");
        let p = d.join("out.json");
        write_atomic(&p, b"{\"a\":1}").unwrap();
        write_atomic(&p, b"{\"a\":2}").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "{\"a\":2}");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn periodic_flusher_writes_before_stop() {
        let d = tmpdir("periodic");
        let obs = Observer::enabled();
        obs.counter("tick").add(1);
        let targets = FlushTargets {
            trace_out: Some(d.join("trace.json")),
            metrics_out: Some(d.join("metrics.json")),
        };
        let flusher =
            PeriodicFlusher::start(obs.clone(), targets.clone(), Duration::from_millis(20));
        // Wait for at least one periodic flush.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !targets.metrics_out.as_ref().unwrap().exists()
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            targets.metrics_out.as_ref().unwrap().exists(),
            "periodic flush never produced a metrics file"
        );
        // Mid-run files are valid JSON.
        let mid = fs::read_to_string(targets.metrics_out.as_ref().unwrap()).unwrap();
        json::parse(&mid).expect("mid-run metrics must parse");

        obs.counter("tick").add(41);
        flusher.stop().unwrap();
        let fin = fs::read_to_string(targets.metrics_out.as_ref().unwrap()).unwrap();
        let doc = json::parse(&fin).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("tick").unwrap().as_u64(),
            Some(42),
            "final flush must include post-periodic updates"
        );
        let trace = fs::read_to_string(targets.trace_out.as_ref().unwrap()).unwrap();
        json::parse(&trace).expect("trace must parse");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_targets_spawn_nothing_and_stop_is_ok() {
        let flusher = PeriodicFlusher::start(
            Observer::enabled(),
            FlushTargets::default(),
            Duration::from_millis(1),
        );
        assert!(flusher.handle.is_none());
        flusher.stop().unwrap();
    }
}
