//! Canonical signal names used across the pipeline.
//!
//! Every counter, gauge, and span that more than one crate touches is named
//! here once, so producers (the store, the pipeline) and consumers (benches,
//! CI gates, dashboards) cannot drift apart on spelling.

/// Span category for artifact-store operations.
pub const CAT_STORE: &str = "store";

/// Counter: a requested artifact was found, verified, and decoded.
pub const STORE_HIT: &str = "store.hit";
/// Counter: a requested artifact was absent and had to be recomputed.
pub const STORE_MISS: &str = "store.miss";
/// Counter: an artifact was removed by LRU eviction under the byte budget.
pub const STORE_EVICT: &str = "store.evict";
/// Counter: a stored artifact failed checksum / framing validation and was
/// quarantined.
pub const STORE_CORRUPT: &str = "store.corrupt";

/// Gauge: total uncompressed bytes of all live artifacts in the store.
pub const STORE_BYTES_RAW: &str = "store.bytes_raw";
/// Gauge: total on-disk (possibly compressed) bytes of all live artifacts.
pub const STORE_BYTES_COMPRESSED: &str = "store.bytes_compressed";

/// Span: loading + verifying one artifact from disk.
pub const SPAN_STORE_LOAD: &str = "store.load";
/// Span: sealing + atomically writing one artifact to disk.
pub const SPAN_STORE_SAVE: &str = "store.save";
