//! Canonical signal names used across the pipeline.
//!
//! Every counter, gauge, and span that more than one crate touches is named
//! here once, so producers (the store, the pipeline, the diagnostics layer)
//! and consumers (benches, CI gates, the `/metrics` endpoint, dashboards)
//! cannot drift apart on spelling. [`all_names`] enumerates the set; a unit
//! test pins uniqueness and the `[a-z0-9_.]+` naming convention.

/// Span category for artifact-store operations.
pub const CAT_STORE: &str = "store";
/// Span category for diagnostics (accuracy attribution) operations.
pub const CAT_DIAG: &str = "diag";
/// Span category for the live telemetry endpoint.
pub const CAT_SERVE: &str = "serve";

/// Counter: a requested artifact was found, verified, and decoded.
pub const STORE_HIT: &str = "store.hit";
/// Counter: a requested artifact was absent and had to be recomputed.
pub const STORE_MISS: &str = "store.miss";
/// Counter: an artifact was removed by LRU eviction under the byte budget.
pub const STORE_EVICT: &str = "store.evict";
/// Counter: a stored artifact failed checksum / framing validation and was
/// quarantined.
pub const STORE_CORRUPT: &str = "store.corrupt";

/// Gauge: total uncompressed bytes of all live artifacts in the store.
pub const STORE_BYTES_RAW: &str = "store.bytes_raw";
/// Gauge: total on-disk (possibly compressed) bytes of all live artifacts.
pub const STORE_BYTES_COMPRESSED: &str = "store.bytes_compressed";

/// Span: loading + verifying one artifact from disk.
pub const SPAN_STORE_LOAD: &str = "store.load";
/// Span: sealing + atomically writing one artifact to disk.
pub const SPAN_STORE_SAVE: &str = "store.save";

/// Counter: accuracy-attribution reports generated.
pub const DIAG_REPORTS: &str = "diag.reports";
/// Gauge: end-to-end runtime error (%) of the most recent report.
pub const DIAG_ERROR_PCT: &str = "diag.error_pct";
/// Gauge: number of clusters attributed in the most recent report.
pub const DIAG_CLUSTERS: &str = "diag.clusters";
/// Span: building one accuracy-attribution report.
pub const SPAN_DIAG_REPORT: &str = "diag.report";

/// Counter: HTTP requests answered by the live telemetry endpoint.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Counter: failed/aborted telemetry endpoint connections.
pub const SERVE_ERRORS: &str = "serve.errors";
/// Gauge: connections currently held open by the shared HTTP server.
pub const SERVE_OPEN_CONNECTIONS: &str = "serve.http.open_connections";
/// Counter: requests served on an already-established connection
/// (keep-alive reuse; the first request on a connection does not count).
pub const SERVE_KEEPALIVE_REUSES: &str = "serve.http.keepalive_reuses";

/// Span category for the lp-farm analysis service.
pub const CAT_FARM: &str = "farm";

/// Gauge: jobs currently waiting in the farm's bounded priority queue.
pub const FARM_QUEUE_DEPTH: &str = "farm.queue.depth";
/// Gauge: jobs currently executing on farm workers.
pub const FARM_RUNNING: &str = "farm.running";
/// Gauge: live farm worker threads.
pub const FARM_WORKERS: &str = "farm.workers";
/// Counter: jobs accepted into the farm queue.
pub const FARM_SUBMITTED: &str = "farm.submitted";
/// Counter: submissions rejected with backpressure (queue full).
pub const FARM_REJECTED: &str = "farm.rejected";
/// Counter: submissions answered by an in-flight or completed identical
/// job (one compute, N subscribers).
pub const FARM_DEDUP_HITS: &str = "farm.dedup.hits";
/// Counter: underlying computes actually executed by workers.
pub const FARM_COMPUTES: &str = "farm.computes";
/// Counter: jobs that reached the `done` state.
pub const FARM_DONE: &str = "farm.done";
/// Counter: jobs that failed permanently (attempts exhausted).
pub const FARM_FAILED: &str = "farm.failed";
/// Counter: jobs cancelled before completion.
pub const FARM_CANCELLED: &str = "farm.cancelled";
/// Counter: failed attempts re-queued with backoff.
pub const FARM_RETRY: &str = "farm.retry";
/// Counter: worker threads respawned after a panic.
pub const FARM_WORKER_RESPAWN: &str = "farm.worker.respawn";
/// Counter: job attempts aborted by the per-job timeout.
pub const FARM_TIMEOUT: &str = "farm.timeout";
/// Histogram: queued → running wait per job (µs).
pub const FARM_QUEUE_WAIT_US: &str = "farm.queue.wait_us";
/// Histogram: submit → terminal-state latency per job (µs).
pub const FARM_JOB_LATENCY_US: &str = "farm.job.latency_us";
/// Span: one worker executing one job attempt.
pub const SPAN_FARM_EXECUTE: &str = "farm.execute";
/// Span: handling one farm API request.
pub const SPAN_FARM_REQUEST: &str = "farm.request";

/// Gauge: in-flight jobs currently tracked by the flight recorder.
pub const FARM_TRACE_LIVE: &str = "farm.trace.live";
/// Gauge: finished job traces retained in the flight-recorder ring.
pub const FARM_TRACE_FINISHED: &str = "farm.trace.finished";
/// Gauge: configured flight-recorder ring capacity.
pub const FARM_TRACE_CAPACITY: &str = "farm.trace.capacity";
/// Counter: finished job traces evicted (oldest-completed first) to keep
/// the flight recorder within its capacity.
pub const FARM_TRACE_EVICTED: &str = "farm.trace.evicted";
/// Span: one job's whole lifetime, submit → terminal (synthesized by the
/// flight recorder as the root of the per-job trace).
pub const SPAN_FARM_JOB: &str = "farm.job";
/// Span: the job's enqueue → first-attempt wait (synthesized).
pub const SPAN_FARM_QUEUE_WAIT: &str = "farm.job.queue_wait";
/// Span: marks a dedup follower; its args carry the primary job's id and
/// trace id (synthesized).
pub const SPAN_FARM_DEDUP: &str = "farm.job.dedup_of";

/// Counter: group-committed fsyncs of the farm's append-only journal
/// (one per flush window, however many transitions it coalesced).
pub const FARM_JOURNAL_FSYNCS: &str = "farm.journal.fsyncs";
/// Counter: journal compactions (append log folded back into a snapshot).
pub const FARM_JOURNAL_COMPACTIONS: &str = "farm.journal.compactions";
/// Gauge: journal records appended but not yet fsynced (group-commit lag).
pub const FARM_JOURNAL_LAG: &str = "farm.journal.lag";

/// Span category for the lp-cluster multi-node layer.
pub const CAT_CLUSTER: &str = "cluster";

/// Counter: submissions forwarded to the content-key owner node.
pub const CLUSTER_FORWARDED: &str = "cluster.forwarded";
/// Counter: forwards that failed (owner unreachable / bad response);
/// the submission is then accepted locally as a fallback.
pub const CLUSTER_FORWARD_ERRORS: &str = "cluster.forward_errors";
/// Counter: artifacts fetched from a peer instead of recomputed
/// (cluster-wide dedup via store fetch-on-miss).
pub const CLUSTER_FETCH_HITS: &str = "cluster.fetch.hits";
/// Counter: remote artifact lookups that found nothing (fall through to
/// a local compute).
pub const CLUSTER_FETCH_MISSES: &str = "cluster.fetch.misses";
/// Counter: completed artifacts asynchronously replicated to the key's
/// ring successor.
pub const CLUSTER_REPLICATIONS: &str = "cluster.replications";
/// Counter: replication attempts that failed (best-effort; the artifact
/// stays on the computing node).
pub const CLUSTER_REPLICATION_ERRORS: &str = "cluster.replication_errors";
/// Counter: jobs re-adopted from a dead peer's journal by its ring
/// successor.
pub const CLUSTER_ADOPTED: &str = "cluster.adopted";
/// Counter: peer liveness transitions alive → dead.
pub const CLUSTER_PEER_DEATHS: &str = "cluster.peer.deaths";
/// Gauge: peers currently considered alive (self included).
pub const CLUSTER_PEERS_ALIVE: &str = "cluster.peers.alive";
/// Gauge: peers currently considered dead.
pub const CLUSTER_PEERS_DEAD: &str = "cluster.peers.dead";
/// Gauge: nodes in the consistent-hash ring (alive members).
pub const CLUSTER_RING_NODES: &str = "cluster.ring.nodes";
/// Gauge: fraction of the 128-bit key space owned by this node.
pub const CLUSTER_OWNED_FRACTION: &str = "cluster.owned_fraction";
/// Histogram: wall time of one submission forward hop (µs).
pub const CLUSTER_FORWARD_US: &str = "cluster.forward.us";
/// Span: forwarding one submission to its owner node.
pub const SPAN_CLUSTER_FORWARD: &str = "cluster.forward";
/// Span: fetching one artifact from a peer.
pub const SPAN_CLUSTER_FETCH: &str = "cluster.fetch";

/// Histogram: wall time of one `/cluster/metrics` federation fan-out
/// across the live members (µs).
pub const CLUSTER_FEDERATE_US: &str = "cluster.federate.us";
/// Counter: peers that failed to answer a metrics-federation fan-out
/// (their column is omitted from that response).
pub const CLUSTER_FEDERATE_ERRORS: &str = "cluster.federate.errors";
/// Counter: merged cluster traces assembled by this node
/// (`/cluster/trace/{trace_id}` fan-outs).
pub const CLUSTER_TRACE_ASSEMBLED: &str = "cluster.trace.assembled";
/// Counter: job-trace requests proxied to the owner node because the id
/// belongs to another member's range.
pub const CLUSTER_TRACE_PROXIED: &str = "cluster.trace.proxied";
/// Counter: job-record requests (`GET /jobs/{id}`, including live
/// partial-result streams) proxied to the owner node because the id
/// belongs to another member's range.
pub const CLUSTER_JOB_PROXIED: &str = "cluster.job.proxied";

/// Span category for the lp-live online-sampling subsystem.
pub const CAT_LIVE: &str = "live";

/// Counter: regions classified by a live run.
pub const LIVE_REGIONS: &str = "live.regions";
/// Counter: regions simulated in detail by a live run.
pub const LIVE_DETAILED: &str = "live.regions.detailed";
/// Counter: regions predicted (skipped) by a live run.
pub const LIVE_PREDICTED: &str = "live.regions.predicted";
/// Counter: re-simulations of an already-known cluster, triggered by the
/// confidence/staleness policy (excludes first-contact detail runs).
pub const LIVE_RESIMS: &str = "live.resims";
/// Gauge: clusters spawned by the most recent live run.
pub const LIVE_CLUSTERS: &str = "live.clusters";
/// Gauge: detailed-simulation region fraction of the most recent live run.
pub const LIVE_DETAILED_PCT: &str = "live.detailed_pct";
/// Gauge: running IPC estimate of the most recent live run.
pub const LIVE_EST_IPC: &str = "live.est_ipc";
/// Span: one whole live-mode run (single pass plus detailed re-runs).
pub const SPAN_LIVE_RUN: &str = "live.run";
/// Span: one detailed region re-simulation inside a live run.
pub const SPAN_LIVE_DETAIL: &str = "live.region.detail";

/// Counter: successful periodic telemetry flushes (atomic rewrites of
/// `--trace-out` / `--metrics-out`).
pub const OBS_FLUSH_WRITES: &str = "obs.flush.writes";
/// Counter: periodic telemetry flushes that failed (counted, not fatal).
pub const OBS_FLUSH_ERRORS: &str = "obs.flush.errors";
/// Counter: samples appended to the in-process metrics history ring.
pub const OBS_HISTORY_SAMPLES: &str = "obs.history.samples";

/// How one gauge federates across cluster members in a
/// [`crate::federate`] rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeRollup {
    /// Per-node values are independent occupancies (queue depth, running
    /// jobs, store bytes): the ring-wide value is their sum.
    Sum,
    /// Per-node values describe the same ring-wide quantity (ring size,
    /// liveness counts) or a worst-of (journal lag): take the maximum.
    Max,
}

/// The federation policy for a gauge name. Agreement gauges — every node
/// reports (approximately) the same ring-wide value — and worst-of
/// gauges take the max so the rollup is not inflated by the member
/// count; every other gauge is a per-node occupancy and sums.
pub fn gauge_rollup(name: &str) -> GaugeRollup {
    match name {
        CLUSTER_RING_NODES | CLUSTER_PEERS_ALIVE | CLUSTER_PEERS_DEAD | FARM_JOURNAL_LAG => {
            GaugeRollup::Max
        }
        _ => GaugeRollup::Sum,
    }
}

/// Every canonical signal name defined in this module, for exhaustive
/// checks (uniqueness, naming convention, dashboards).
pub const fn all_names() -> &'static [&'static str] {
    &[
        STORE_HIT,
        STORE_MISS,
        STORE_EVICT,
        STORE_CORRUPT,
        STORE_BYTES_RAW,
        STORE_BYTES_COMPRESSED,
        SPAN_STORE_LOAD,
        SPAN_STORE_SAVE,
        DIAG_REPORTS,
        DIAG_ERROR_PCT,
        DIAG_CLUSTERS,
        SPAN_DIAG_REPORT,
        SERVE_REQUESTS,
        SERVE_ERRORS,
        SERVE_OPEN_CONNECTIONS,
        SERVE_KEEPALIVE_REUSES,
        FARM_QUEUE_DEPTH,
        FARM_RUNNING,
        FARM_WORKERS,
        FARM_SUBMITTED,
        FARM_REJECTED,
        FARM_DEDUP_HITS,
        FARM_COMPUTES,
        FARM_DONE,
        FARM_FAILED,
        FARM_CANCELLED,
        FARM_RETRY,
        FARM_WORKER_RESPAWN,
        FARM_TIMEOUT,
        FARM_QUEUE_WAIT_US,
        FARM_JOB_LATENCY_US,
        SPAN_FARM_EXECUTE,
        SPAN_FARM_REQUEST,
        FARM_TRACE_LIVE,
        FARM_TRACE_FINISHED,
        FARM_TRACE_CAPACITY,
        FARM_TRACE_EVICTED,
        SPAN_FARM_JOB,
        SPAN_FARM_QUEUE_WAIT,
        SPAN_FARM_DEDUP,
        FARM_JOURNAL_FSYNCS,
        FARM_JOURNAL_COMPACTIONS,
        FARM_JOURNAL_LAG,
        CLUSTER_FORWARDED,
        CLUSTER_FORWARD_ERRORS,
        CLUSTER_FETCH_HITS,
        CLUSTER_FETCH_MISSES,
        CLUSTER_REPLICATIONS,
        CLUSTER_REPLICATION_ERRORS,
        CLUSTER_ADOPTED,
        CLUSTER_PEER_DEATHS,
        CLUSTER_PEERS_ALIVE,
        CLUSTER_PEERS_DEAD,
        CLUSTER_RING_NODES,
        CLUSTER_OWNED_FRACTION,
        CLUSTER_FORWARD_US,
        SPAN_CLUSTER_FORWARD,
        SPAN_CLUSTER_FETCH,
        CLUSTER_FEDERATE_US,
        CLUSTER_FEDERATE_ERRORS,
        CLUSTER_TRACE_ASSEMBLED,
        CLUSTER_TRACE_PROXIED,
        CLUSTER_JOB_PROXIED,
        LIVE_REGIONS,
        LIVE_DETAILED,
        LIVE_PREDICTED,
        LIVE_RESIMS,
        LIVE_CLUSTERS,
        LIVE_DETAILED_PCT,
        LIVE_EST_IPC,
        SPAN_LIVE_RUN,
        SPAN_LIVE_DETAIL,
        OBS_FLUSH_WRITES,
        OBS_FLUSH_ERRORS,
        OBS_HISTORY_SAMPLES,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_follow_the_convention() {
        let names = all_names();
        let mut seen = std::collections::BTreeSet::new();
        for name in names {
            assert!(seen.insert(*name), "duplicate canonical name {name:?}");
            assert!(!name.is_empty());
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.'),
                "name {name:?} violates the [a-z0-9_.]+ convention"
            );
            assert!(
                !name.starts_with('.') && !name.ends_with('.'),
                "name {name:?} has a dangling dot"
            );
        }
    }

    #[test]
    fn names_sanitize_to_distinct_prometheus_names() {
        // The `/metrics` endpoint must not merge two canonical names.
        let mut sanitized = std::collections::BTreeSet::new();
        for name in all_names() {
            assert!(
                sanitized.insert(crate::prometheus::sanitize_name(name)),
                "{name:?} collides with another name after sanitization"
            );
        }
    }
}
