//! # lp-obs — observability for the LoopPoint pipeline
//!
//! A std-only (zero external dependencies) observability layer:
//!
//! * **Span tracing** — RAII [`SpanGuard`]s with monotonic microsecond
//!   timestamps, per-thread lanes, and counter attachments, recorded into a
//!   lock-protected in-memory [`trace::TraceSink`];
//! * **Metrics registry** — named [`Counter`]s / [`Gauge`]s / log₂-bucketed
//!   [`Histogram`]s with one-atomic-op updates and a consistent
//!   [`MetricsRegistry::snapshot`];
//! * **Exporters** — Chrome `trace_event` JSON (load in `chrome://tracing`
//!   or <https://ui.perfetto.dev>) and a flat JSON metrics report, plus an
//!   embedded [`json`] parser so tests and tools can validate both offline;
//! * **Leveled logging** — [`lp_info!`] / [`lp_debug!`] / [`lp_warn!`]
//!   gated by a process-global [`LogLevel`].
//!
//! ## Handles and cost
//!
//! The central type is [`Observer`], a cheap clonable handle that is either
//! *enabled* (backed by a shared sink+registry) or *disabled* (every
//! operation a no-op costing one branch). Pipeline layers take an
//! `Observer` by value/clone — `looppoint::LoopPointConfig` threads one
//! through the whole pipeline — or fall back to the process-global default
//! installed with [`set_global`].
//!
//! ```
//! use lp_obs::Observer;
//!
//! let obs = Observer::enabled();
//! {
//!     let mut span = obs.span("phase.demo", "example");
//!     obs.counter("work.items").add(3);
//!     span.arg("items", 3u64);
//! } // span recorded here
//! let trace = obs.chrome_trace_json();
//! assert!(trace.contains("phase.demo"));
//! assert_eq!(obs.snapshot().counters["work.items"], 3);
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the scoped
// `poll(2)` syscall shim inside `httpd::sys`, which opts back in with a
// module-level `#[allow(unsafe_code)]`. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod federate;
pub mod flush;
pub mod http;
pub mod httpd;
pub mod json;
mod log;
pub mod metrics;
pub mod names;
pub mod prometheus;
pub mod serve;
pub mod timeseries;
pub mod trace;
pub mod tracectx;

pub use crate::log::{log_enabled, log_level, set_log_level, LogLevel};
pub use flush::{write_atomic, FlushTargets, PeriodicFlusher};
pub use httpd::{HttpServer, ReactorMode, ServerConfig};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use serve::TelemetryServer;
pub use timeseries::{History, HistoryColumn, HistorySampler, Sample};
pub use trace::{SpanGuard, TraceArg, TraceEvent};
pub use tracectx::{SpanId, TraceContext, TraceId};

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use trace::{ActiveSpan, Phase};

#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) trace: trace::TraceSink,
    pub(crate) metrics: MetricsRegistry,
    /// Coarse pipeline phase, surfaced on the `/healthz` endpoint.
    pub(crate) phase: Mutex<String>,
    /// Microseconds-since-epoch of the most recent heartbeat (span open,
    /// phase change, or explicit [`Observer::heartbeat`]).
    pub(crate) heartbeat_us: AtomicU64,
}

/// A cheap, clonable observability handle: either enabled (shared sink and
/// registry) or disabled (no-op).
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Observer(enabled, {} events)", i.trace.len()),
            None => write!(f, "Observer(disabled)"),
        }
    }
}

impl Observer {
    /// A fresh enabled observer with its own sink, registry, and epoch.
    pub fn enabled() -> Self {
        Observer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                trace: trace::TraceSink::default(),
                metrics: MetricsRegistry::default(),
                phase: Mutex::new("init".to_string()),
                heartbeat_us: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op observer.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Two handles are *same* if they share one sink (clones of one
    /// enabled observer), or are both disabled.
    pub fn same_sink(&self, other: &Observer) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Opens a span in category `cat`; the returned guard records a single
    /// complete (`"X"`) event from now until it is dropped.
    ///
    /// When a [`tracectx::TraceContext`] is attached to the calling thread
    /// (see [`tracectx::TraceContext::attach`]), the span becomes a child
    /// of it — it records trace/span/parent ids and keeps its own child
    /// context attached for its lifetime, so nested spans parent under it
    /// automatically.
    pub fn span(&self, name: &str, cat: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::disabled(),
            Some(inner) => {
                let (ctx, ctx_guard) = match tracectx::current() {
                    Some(parent) => {
                        let child = parent.child();
                        let guard = child.attach();
                        (Some(child), Some(guard))
                    }
                    None => (None, None),
                };
                SpanGuard {
                    active: Some(ActiveSpan {
                        sink: Arc::clone(inner),
                        name: name.to_string(),
                        cat,
                        start_us: trace::micros_since(inner.epoch),
                        tid: trace::lane_id(),
                        args: Vec::new(),
                        ctx,
                        ctx_guard,
                    }),
                }
            }
        }
    }

    /// Records a zero-duration instant event (heartbeats, milestones).
    pub fn instant(&self, name: &str, cat: &'static str) {
        if let Some(inner) = &self.inner {
            inner.trace.record(TraceEvent {
                name: name.to_string(),
                cat,
                ph: Phase::Instant,
                ts_us: trace::micros_since(inner.epoch),
                dur_us: 0,
                tid: trace::lane_id(),
                args: Vec::new(),
                ctx: tracectx::current(),
            });
        }
    }

    /// Records a counter sample (`"C"` event) — rendered as a track of
    /// stacked values in the trace viewer.
    pub fn counter_sample(&self, name: &str, cat: &'static str, series: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.trace.record(TraceEvent {
                name: name.to_string(),
                cat,
                ph: Phase::Counter,
                ts_us: trace::micros_since(inner.epoch),
                dur_us: 0,
                tid: trace::lane_id(),
                args: vec![(series.to_string(), TraceArg::F64(value))],
                ctx: tracectx::current(),
            });
        }
    }

    /// The counter registered under `name` (a no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::default(),
            Some(inner) => inner.metrics.counter(name),
        }
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::default(),
            Some(inner) => inner.metrics.gauge(name),
        }
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::default(),
            Some(inner) => inner.metrics.histogram(name),
        }
    }

    /// A point-in-time copy of all metrics (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => inner.metrics.snapshot(),
        }
    }

    /// All trace events recorded so far, sorted by timestamp.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.trace.events(),
        }
    }

    /// Removes and returns every recorded event belonging to `trace_id`
    /// (sorted by timestamp). The farm harvests each job's spans out of
    /// the shared sink into the bounded flight recorder with this, which
    /// also keeps long-running daemons from accumulating per-job spans
    /// unboundedly.
    pub fn take_trace_events(&self, trace_id: tracectx::TraceId) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.trace.take_by_trace(trace_id),
        }
    }

    /// Copies (without removing) every recorded event belonging to
    /// `trace_id`, sorted by timestamp. Cross-node trace assembly peeks
    /// with this so spans that have not been harvested yet still show up.
    pub fn trace_events_for(&self, trace_id: tracectx::TraceId) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.trace.events_for_trace(trace_id),
        }
    }

    /// The Chrome `trace_event` JSON document as a string.
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_document(&self.trace_events()).to_string()
    }

    /// The flat metrics report JSON as a string.
    pub fn metrics_json(&self) -> String {
        self.snapshot().to_json().to_string()
    }

    /// The metrics registry rendered in the Prometheus text exposition
    /// format (the `/metrics` endpoint payload).
    pub fn prometheus_text(&self) -> String {
        prometheus::render(&self.snapshot())
    }

    /// Writes the Chrome trace to `path` **atomically** (temp + fsync +
    /// rename): a crash mid-write never leaves a truncated file.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        flush::write_atomic(path.as_ref(), self.chrome_trace_json().as_bytes())
    }

    /// Writes the metrics report to `path` **atomically** (temp + fsync +
    /// rename).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_metrics(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        flush::write_atomic(path.as_ref(), self.metrics_json().as_bytes())
    }

    /// Sets the coarse pipeline phase shown on `/healthz` and bumps the
    /// heartbeat. No-op when disabled.
    pub fn set_phase(&self, phase: &str) {
        if let Some(inner) = &self.inner {
            *inner.phase.lock().expect("phase poisoned") = phase.to_string();
            self.heartbeat();
        }
    }

    /// The current coarse pipeline phase (`""` when disabled).
    pub fn phase(&self) -> String {
        match &self.inner {
            None => String::new(),
            Some(inner) => inner.phase.lock().expect("phase poisoned").clone(),
        }
    }

    /// Records a liveness heartbeat (hot loops call this on their sampling
    /// cadence; `/healthz` reports the age of the latest one).
    #[inline]
    pub fn heartbeat(&self) {
        if let Some(inner) = &self.inner {
            inner
                .heartbeat_us
                .store(trace::micros_since(inner.epoch), Ordering::Relaxed);
        }
    }

    /// Microseconds since the most recent heartbeat (process uptime when
    /// none was ever recorded; 0 when disabled).
    pub fn heartbeat_age_us(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => trace::micros_since(inner.epoch)
                .saturating_sub(inner.heartbeat_us.load(Ordering::Relaxed)),
        }
    }

    /// Microseconds since this observer was created (0 when disabled).
    pub fn uptime_us(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => trace::micros_since(inner.epoch),
        }
    }
}

static GLOBAL: OnceLock<Observer> = OnceLock::new();

/// Installs the process-global default observer (used by layers that are
/// not reached by an explicit handle, e.g. `lp-pinball` and `lp-simpoint`).
/// Can be set once per process.
///
/// # Errors
/// Returns `Err(obs)` (handing the observer back) if one is already set.
pub fn set_global(obs: Observer) -> Result<(), Observer> {
    GLOBAL.set(obs)
}

/// The process-global observer: the one installed via [`set_global`], or a
/// disabled handle.
pub fn global() -> Observer {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_free_and_silent() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        {
            let mut s = obs.span("x", "t");
            s.arg("k", 1u64);
        }
        obs.instant("i", "t");
        obs.counter("c").add(5);
        assert!(obs.trace_events().is_empty());
        assert_eq!(obs.snapshot(), MetricsSnapshot::default());
        // Exports are still valid JSON.
        json::parse(&obs.chrome_trace_json()).unwrap();
        json::parse(&obs.metrics_json()).unwrap();
    }

    #[test]
    fn spans_record_complete_events_with_args() {
        let obs = Observer::enabled();
        {
            let mut outer = obs.span("outer", "t");
            outer.arg("n", 7u64);
            let _inner = obs.span("inner", "t");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let evs = obs.trace_events();
        assert_eq!(evs.len(), 2);
        for e in &evs {
            assert_eq!(e.ph, Phase::Complete);
        }
        let outer = evs.iter().find(|e| e.name == "outer").unwrap();
        let inner = evs.iter().find(|e| e.name == "inner").unwrap();
        assert!(outer.dur_us >= inner.dur_us, "outer encloses inner");
        assert!(outer.ts_us <= inner.ts_us);
        assert_eq!(outer.args, vec![("n".to_string(), TraceArg::U64(7))]);
    }

    #[test]
    fn clones_share_the_sink() {
        let obs = Observer::enabled();
        let clone = obs.clone();
        assert!(obs.same_sink(&clone));
        clone.counter("shared").add(2);
        assert_eq!(obs.snapshot().counters["shared"], 2);
        drop(clone.span("from-clone", "t"));
        assert_eq!(obs.trace_events().len(), 1);
        assert!(!obs.same_sink(&Observer::enabled()));
        assert!(Observer::disabled().same_sink(&Observer::disabled()));
    }

    #[test]
    fn chrome_export_parses_and_balances() {
        let obs = Observer::enabled();
        drop(obs.span("a", "t"));
        obs.instant("i", "t");
        obs.counter_sample("ipc", "t", "ipc", 1.5);
        let doc = json::parse(&obs.chrome_trace_json()).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 3);
        // Every complete event carries a duration; only they do.
        for e in evs {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert_eq!(ph == "X", e.get("dur").is_some());
        }
    }

    #[test]
    fn spans_parent_under_the_attached_context() {
        let obs = Observer::enabled();
        // No context attached: events carry no ids.
        drop(obs.span("free", "t"));
        let root = tracectx::TraceContext::new_root();
        {
            let _g = root.attach();
            let outer = obs.span("outer", "t");
            let inner = obs.span("inner", "t");
            drop(inner);
            drop(outer);
            obs.instant("tick", "t");
        }
        let evs = obs.trace_events();
        let free = evs.iter().find(|e| e.name == "free").unwrap();
        assert_eq!(free.ctx, None);
        let outer = evs.iter().find(|e| e.name == "outer").unwrap().ctx.unwrap();
        let inner = evs.iter().find(|e| e.name == "inner").unwrap().ctx.unwrap();
        let tick = evs.iter().find(|e| e.name == "tick").unwrap().ctx.unwrap();
        assert_eq!(outer.trace_id, root.trace_id);
        assert_eq!(outer.parent_id, Some(root.span_id));
        assert_eq!(inner.trace_id, root.trace_id);
        assert_eq!(inner.parent_id, Some(outer.span_id), "spans nest");
        // The instant fired after both spans closed: it parents on root.
        assert_eq!(tick.span_id, root.span_id);
        // Harvesting by trace id drains exactly the trace's events.
        let taken = obs.take_trace_events(root.trace_id);
        assert_eq!(taken.len(), 3);
        let left = obs.trace_events();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].name, "free");
    }

    #[test]
    fn parallel_spans_land_on_distinct_lanes() {
        let obs = Observer::enabled();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let obs = obs.clone();
                s.spawn(move || drop(obs.span("worker", "t")));
            }
        });
        let tids: std::collections::HashSet<u64> =
            obs.trace_events().iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3, "three threads, three lanes");
    }
}
