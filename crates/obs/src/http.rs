//! Minimal HTTP/1.1 request parsing and response writing, shared by the
//! [`crate::serve::TelemetryServer`] and the `lp-farm` analysis service.
//!
//! This is deliberately *not* a web framework: bounded header and body
//! sizes, `Content-Length` framing only, and just the features the
//! in-tree servers need. The [`RequestParser`] is *incremental* — it is
//! fed raw bytes and yields complete requests as they become available —
//! so the same framing code serves both the blocking one-shot
//! [`read_request`] path and the nonblocking multiplexed event loop in
//! [`crate::httpd`], including HTTP/1.1 keep-alive with pipelined
//! requests. [`HttpClient`] is the matching reusable keep-alive client.
//! Keeping it in one place means the telemetry endpoint and the farm
//! daemon cannot drift apart on protocol details — and both inherit
//! fixes (timeouts, caps, framing) at once.

use crate::tracectx::{TraceContext, TRACEPARENT_HEADER};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: u64 = 16 * 1024;
/// Default cap on request body sizes (submitters batching thousands of
/// jobs should split their batches).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed HTTP request: the request line plus an optional body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Query string (text after `?`), if any.
    pub query: Option<String>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
    /// All request headers as `(name, value)` pairs, names lowercased
    /// and values trimmed, in arrival order. `Content-Length`,
    /// `traceparent`, and `Connection` are additionally parsed into the
    /// dedicated fields; everything else (e.g. the `x-lp-proto`
    /// negotiation or `x-lp-forwarded` loop-prevention headers) is only
    /// available here.
    pub headers: Vec<(String, String)>,
    /// Distributed trace context from a `traceparent` header, if the
    /// client sent a well-formed one (malformed headers parse to `None`,
    /// never an error — the server falls back to a fresh root context).
    pub trace: Option<TraceContext>,
    /// Whether the client asked for `Connection: close` (HTTP/1.1
    /// defaults to keep-alive; servers must close after responding to a
    /// request with this set).
    pub close: bool,
}

impl Request {
    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Errors from [`read_request`].
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket I/O failed (including timeouts).
    Io(io::Error),
    /// The request was malformed (bad request line, bad `Content-Length`).
    Malformed(&'static str),
    /// The declared body exceeds the caller's cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http i/o: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "request body {declared} B exceeds limit {limit} B")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one HTTP request from `stream` (blocking).
///
/// Sets the connection's read/write timeouts to [`IO_TIMEOUT`], caps the
/// head at [`MAX_HEAD_BYTES`] and the body at `max_body` bytes. Headers
/// other than `Content-Length`, `traceparent`, and `Connection` are
/// parsed past and discarded.
///
/// # Errors
/// I/O failures, malformed framing, or an oversized body.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut parser = RequestParser::new();
    // Large chunks so a request that is about to be rejected (oversized
    // body) is usually consumed in full — closing with unread bytes in
    // the kernel buffer would RST the client before it sees the error.
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(req) = parser.take_next(max_body)? {
            return Ok(req);
        }
        if parser.at_eof() {
            // take_next returned None at EOF: nothing arrived at all.
            return Err(HttpError::Malformed("empty request line"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => parser.mark_eof(),
            Ok(n) => parser.feed(&chunk[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Incremental HTTP/1.1 request parser: feed it raw bytes (in whatever
/// chunks the socket delivers), pull complete [`Request`]s out. Multiple
/// pipelined requests in one buffer parse as successive [`take_next`]
/// calls; a partial request stays buffered until more bytes arrive.
///
/// [`take_next`]: RequestParser::take_next
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    eof: bool,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Marks end-of-stream: a head without its terminating blank line is
    /// then parsed as-is (tolerated, body empty), matching the historical
    /// one-shot reader; an incomplete declared body becomes an error.
    pub fn mark_eof(&mut self) {
        self.eof = true;
    }

    /// Whether [`RequestParser::mark_eof`] has been called.
    pub fn at_eof(&self) -> bool {
        self.eof
    }

    /// Whether no unconsumed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Parses the next complete request out of the buffer, if one is
    /// there. `Ok(None)` means "need more bytes" (or, at EOF, "stream
    /// ended cleanly between requests").
    ///
    /// # Errors
    /// Malformed framing, an oversized head or body, or a body truncated
    /// by EOF.
    pub fn take_next(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        let (head_end, body_start) = match find_head_end(&self.buf) {
            Some(pair) => pair,
            None if self.buf.len() as u64 > MAX_HEAD_BYTES => {
                return Err(HttpError::Malformed("request head too large"));
            }
            None if self.eof && !self.buf.is_empty() => (self.buf.len(), self.buf.len()),
            None => return Ok(None),
        };
        if head_end as u64 > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large"));
        }
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or(HttpError::Malformed("empty request line"))?
            .to_string();
        let target = parts
            .next()
            .ok_or(HttpError::Malformed("missing request target"))?;
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };
        let mut content_length: usize = 0;
        let mut trace: Option<TraceContext> = None;
        let mut close = false;
        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| HttpError::Malformed("bad content-length"))?;
                } else if name.eq_ignore_ascii_case(TRACEPARENT_HEADER) {
                    // A malformed traceparent must not fail the request:
                    // tracing is best-effort, the payload is what matters.
                    trace = TraceContext::parse_traceparent(value);
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.trim().eq_ignore_ascii_case("close");
                }
            }
        }
        if content_length > max_body {
            return Err(HttpError::BodyTooLarge {
                declared: content_length,
                limit: max_body,
            });
        }
        let body_end = body_start + content_length;
        if self.buf.len() < body_end {
            if self.eof {
                return Err(HttpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                )));
            }
            return Ok(None);
        }
        let body = self.buf[body_start..body_end].to_vec();
        self.buf.drain(..body_end);
        Ok(Some(Request {
            method,
            path,
            query,
            body,
            headers,
            trace,
            close,
        }))
    }
}

/// Finds the head terminator: returns `(head_len, body_start)` for the
/// first `\r\n\r\n` (or bare `\n\n`) in `buf`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while let Some(off) = buf[i..].iter().position(|&b| b == b'\n') {
        let at = i + off;
        if buf[at + 1..].starts_with(b"\r\n") {
            return Some((at + 1, at + 3));
        }
        if buf[at + 1..].starts_with(b"\n") {
            return Some((at + 1, at + 2));
        }
        i = at + 1;
        if i >= buf.len() {
            break;
        }
    }
    None
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status line text after `HTTP/1.1 ` (e.g. `"200 OK"`).
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) written verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body. Raw bytes: artifact transfer between cluster
    /// nodes ships LPAC payloads, which are not UTF-8.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with no extra headers. `body` accepts both `String`
    /// (JSON/text routes) and `Vec<u8>` (binary artifact routes).
    pub fn new(
        status: &'static str,
        content_type: &'static str,
        body: impl Into<Vec<u8>>,
    ) -> Response {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// `200 OK` with raw bytes (`application/octet-stream`).
    pub fn bytes_ok(body: Vec<u8>) -> Response {
        Response::new("200 OK", "application/octet-stream", body)
    }

    /// `200 OK` with `application/json`.
    pub fn json_ok(body: String) -> Response {
        Response::new("200 OK", "application/json", body)
    }

    /// `200 OK` with plain text.
    pub fn text_ok(body: String) -> Response {
        Response::new("200 OK", "text/plain; charset=utf-8", body)
    }

    /// `404 Not Found` with a JSON error object.
    pub fn not_found(msg: &str) -> Response {
        Response::new(
            "404 Not Found",
            "application/json",
            format!("{{\"error\":{}}}", crate::json::Value::Str(msg.to_string())),
        )
    }

    /// `400 Bad Request` with a JSON error object.
    pub fn bad_request(msg: &str) -> Response {
        Response::new(
            "400 Bad Request",
            "application/json",
            format!("{{\"error\":{}}}", crate::json::Value::Str(msg.to_string())),
        )
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl std::fmt::Display) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }
}

/// Serializes `response` with `Content-Length` framing and an explicit
/// `Connection: keep-alive` / `close` header, ready to write to a
/// socket. This is the one response encoder — the multiplexed server,
/// the blocking fallback, and [`write_response`] all share it.
pub fn encode_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&response.body);
    out
}

/// Writes `response` to `stream` with `Content-Length` framing and
/// `Connection: close`, then flushes.
///
/// # Errors
/// Socket write failures.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    stream.write_all(&encode_response(response, false))?;
    stream.flush()
}

/// Minimal blocking HTTP client for test harnesses and the `run-looppoint`
/// client subcommands: one request, `Connection: close`, returns
/// `(status_code, body)`.
///
/// # Errors
/// Connect/read/write failures, or an unparseable status line.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    client_request_traced(addr, method, path, body, None)
}

/// [`client_request`] with an optional [`TraceContext`] propagated via
/// the `traceparent` header, so the server can parent its work under the
/// caller's trace.
///
/// # Errors
/// Connect/read/write failures, or an unparseable status line.
pub fn client_request_traced(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    trace: Option<&TraceContext>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let trace_header = match trace {
        Some(ctx) => format!("{TRACEPARENT_HEADER}: {}\r\n", ctx.to_traceparent()),
        None => String::new(),
    };
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{trace_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    let (head, payload) = buf
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, payload.to_string()))
}

/// A response as seen by [`HttpClient`]: status code, headers (names
/// lowercased), and the raw body bytes.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (binary-clean; artifact transfers are not UTF-8).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Whether an I/O error carries the signature of a *stale keep-alive
/// connection* — the peer's idle reaper closed it between requests, so
/// the request provably never reached a handler (EOF/RST before any
/// response byte, or the write itself bounced). Distinct from a timeout
/// mid-exchange, where the server may already be acting on the request.
fn is_stale_connection(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
    )
}

/// A reusable keep-alive HTTP client: one TCP connection serves many
/// requests back to back, reconnecting transparently when the server
/// closed the idle connection in between. This is what the
/// `run-looppoint` client subcommands, the farm bench, and the cluster
/// inter-node paths drive — against the multiplexed server a burst of
/// requests costs one TCP + no per-request connection setup.
///
/// ## Stale keep-alive handling
///
/// A reused connection may have been idle-closed by the server between
/// requests. When that happens the request is transparently re-sent
/// once on a fresh connection: idempotent requests (`GET`/`HEAD`, or
/// any request sent through [`HttpClient::send`] with
/// `idempotent = true`) retry on *any* reused-connection failure, while
/// non-idempotent ones retry only when the error is an unambiguous
/// stale-connection signature (reset/EOF/broken pipe) — a timeout
/// mid-exchange could mean the server already acted on the request.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    stream: Option<TcpStream>,
    reuses: u64,
    reconnects: u64,
    timeout: Duration,
    headers: Vec<(String, String)>,
}

impl HttpClient {
    /// A client for `addr` (`host:port`); connects lazily on the first
    /// request.
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            stream: None,
            reuses: 0,
            reconnects: 0,
            timeout: Duration::from_secs(10),
            headers: Vec::new(),
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// How many requests were served on an already-open connection
    /// (the first request after each connect does not count).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// How many transparent reconnect-and-retry cycles this client has
    /// performed after a stale keep-alive connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sets the per-request read/write timeout (default 10 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Adds a header sent with every request (e.g. protocol-version
    /// negotiation). Later pushes of the same name are sent as repeats.
    pub fn push_default_header(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.headers.push((name.into(), value.into()));
    }

    /// Sends one request, reusing the open connection when possible.
    ///
    /// # Errors
    /// Connect/read/write failures (after one transparent reconnect
    /// attempt when a reused connection turned out stale), or an
    /// unparseable response.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request_traced(method, path, body, None)
    }

    /// [`HttpClient::request`] with an optional propagated [`TraceContext`].
    ///
    /// # Errors
    /// Connect/read/write failures or an unparseable response.
    pub fn request_traced(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        trace: Option<&TraceContext>,
    ) -> io::Result<(u16, String)> {
        let idempotent = matches!(method, "GET" | "HEAD");
        let resp = self.send(method, path, &[], body.as_bytes(), trace, idempotent)?;
        Ok((resp.status, resp.text()))
    }

    /// Full-control request: per-call extra headers, raw body bytes,
    /// optional trace propagation, and an explicit idempotency claim
    /// governing the stale keep-alive retry policy (see the type docs).
    /// Content-keyed submissions are safe to mark idempotent even as
    /// `POST`s: re-sending them dedups server-side.
    ///
    /// # Errors
    /// Connect/read/write failures or an unparseable response.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(String, String)],
        body: &[u8],
        trace: Option<&TraceContext>,
        idempotent: bool,
    ) -> io::Result<ClientResponse> {
        let reused = self.stream.is_some();
        match self.try_send(method, path, headers, body, trace) {
            Ok(out) => {
                if reused {
                    self.reuses += 1;
                }
                Ok(out)
            }
            Err(e) => {
                self.stream = None;
                if reused && (idempotent || is_stale_connection(&e)) {
                    self.reconnects += 1;
                    let retry = self.try_send(method, path, headers, body, trace);
                    if retry.is_err() {
                        self.stream = None;
                    }
                    retry
                } else {
                    Err(e)
                }
            }
        }
    }

    fn try_send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(String, String)],
        body: &[u8],
        trace: Option<&TraceContext>,
    ) -> io::Result<ClientResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true).ok();
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("stream just ensured");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        if let Some(ctx) = trace {
            head.push_str(&format!(
                "{TRACEPARENT_HEADER}: {}\r\n",
                ctx.to_traceparent()
            ));
        }
        for (name, value) in self.headers.iter().chain(headers.iter()) {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let (resp, close) = read_client_response(stream)?;
        if close {
            self.stream = None;
        }
        Ok(resp)
    }
}

/// Reads one `Content-Length`-framed response; returns
/// `(response, server_asked_to_close)`.
fn read_client_response(stream: &mut TcpStream) -> io::Result<(ClientResponse, bool)> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let (head_end, body_start) = loop {
        if let Some(pair) = find_head_end(&buf) {
            break pair;
        }
        if buf.len() as u64 > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let status: u16 = lines
        .next()
        .unwrap_or("")
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length: usize = 0;
    let mut close = false;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let mut body = buf[body_start..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((
        ClientResponse {
            status,
            headers,
            body,
        },
        close,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_once(
        handler: impl FnOnce(Result<Request, HttpError>) -> Response + Send + 'static,
    ) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024);
            let resp = handler(req);
            write_response(&mut stream, &resp).unwrap();
        });
        addr
    }

    #[test]
    fn roundtrips_get_with_query() {
        let addr = serve_once(|req| {
            let req = req.unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.query.as_deref(), Some("state=queued"));
            assert!(req.body.is_empty());
            Response::json_ok("{\"ok\":true}".to_string())
        });
        let (status, body) = client_request(&addr, "GET", "/jobs?state=queued", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn roundtrips_post_body() {
        let addr = serve_once(|req| {
            let req = req.unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.body_text(), "line one\nline two\n");
            Response::text_ok("accepted".to_string())
        });
        let (status, body) =
            client_request(&addr, "POST", "/jobs", "line one\nline two\n").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "accepted");
    }

    #[test]
    fn traceparent_header_roundtrips() {
        let ctx = TraceContext::new_root();
        let expect = ctx;
        let addr = serve_once(move |req| {
            let req = req.unwrap();
            let got = req.trace.expect("traceparent must parse");
            assert_eq!(got.trace_id, expect.trace_id);
            assert_eq!(got.span_id, expect.span_id);
            Response::json_ok("{}".to_string())
        });
        let (status, _) = client_request_traced(&addr, "GET", "/x", "", Some(&ctx)).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn malformed_traceparent_is_ignored() {
        let addr = serve_once(|req| {
            let req = req.unwrap();
            assert_eq!(
                req.trace, None,
                "garbage header must not poison the request"
            );
            Response::json_ok("{}".to_string())
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(
            stream,
            "GET /x HTTP/1.1\r\ntraceparent: not-a-context\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let addr = serve_once(|req| match req {
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                assert!(declared > limit);
                Response::new("413 Payload Too Large", "text/plain", String::new())
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        });
        let big = "x".repeat(4096);
        let (status, _) = client_request(&addr, "POST", "/jobs", &big).unwrap();
        assert_eq!(status, 413);
    }

    #[test]
    fn extra_headers_and_retry_after() {
        let addr = serve_once(|_req| {
            Response::new(
                "503 Service Unavailable",
                "application/json",
                "{\"error\":\"queue full\"}".to_string(),
            )
            .with_header("Retry-After", 2)
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(stream, "GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503"), "{buf}");
        assert!(buf.contains("Retry-After: 2\r\n"), "{buf}");
    }

    #[test]
    fn malformed_request_line_is_an_error() {
        let addr = serve_once(|req| match req {
            Err(HttpError::Malformed(_)) => Response::bad_request("malformed"),
            other => panic!("expected Malformed, got {other:?}"),
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }
}
