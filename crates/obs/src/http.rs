//! Minimal HTTP/1.1 request parsing and response writing, shared by the
//! [`crate::serve::TelemetryServer`] and the `lp-farm` analysis service.
//!
//! This is deliberately *not* a web framework: one request per connection,
//! `Connection: close`, bounded header and body sizes, and only the
//! features the in-tree servers need (request line, `Content-Length`
//! bodies, a handful of response headers). Keeping it in one place means
//! the telemetry endpoint and the farm daemon cannot drift apart on
//! protocol details — and both inherit fixes (timeouts, caps, framing)
//! at once.

use crate::tracectx::{TraceContext, TRACEPARENT_HEADER};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: u64 = 16 * 1024;
/// Default cap on request body sizes (submitters batching thousands of
/// jobs should split their batches).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed HTTP request: the request line plus an optional body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Query string (text after `?`), if any.
    pub query: Option<String>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
    /// Distributed trace context from a `traceparent` header, if the
    /// client sent a well-formed one (malformed headers parse to `None`,
    /// never an error — the server falls back to a fresh root context).
    pub trace: Option<TraceContext>,
}

impl Request {
    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Errors from [`read_request`].
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket I/O failed (including timeouts).
    Io(io::Error),
    /// The request was malformed (bad request line, bad `Content-Length`).
    Malformed(&'static str),
    /// The declared body exceeds the caller's cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http i/o: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "request body {declared} B exceeds limit {limit} B")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one HTTP request from `stream`.
///
/// Sets the connection's read/write timeouts to [`IO_TIMEOUT`], caps the
/// head at [`MAX_HEAD_BYTES`] and the body at `max_body` bytes. Headers
/// other than `Content-Length` are parsed past and discarded.
///
/// # Errors
/// I/O failures, malformed framing, or an oversized body.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut head = reader.by_ref().take(MAX_HEAD_BYTES);

    let mut request_line = String::new();
    head.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    // Headers: only Content-Length and traceparent matter; read until
    // the blank line.
    let mut content_length: usize = 0;
    let mut trace: Option<TraceContext> = None;
    loop {
        let mut line = String::new();
        let n = head.read_line(&mut line)?;
        if n == 0 {
            break; // EOF before blank line: tolerate (no body).
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
            } else if name.eq_ignore_ascii_case(TRACEPARENT_HEADER) {
                // A malformed traceparent must not fail the request:
                // tracing is best-effort, the payload is what matters.
                trace = TraceContext::parse_traceparent(value);
            }
        }
    }

    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(Request {
        method,
        path,
        query,
        body,
        trace,
    })
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status line text after `HTTP/1.1 ` (e.g. `"200 OK"`).
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) written verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A response with no extra headers.
    pub fn new(status: &'static str, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body,
        }
    }

    /// `200 OK` with `application/json`.
    pub fn json_ok(body: String) -> Response {
        Response::new("200 OK", "application/json", body)
    }

    /// `200 OK` with plain text.
    pub fn text_ok(body: String) -> Response {
        Response::new("200 OK", "text/plain; charset=utf-8", body)
    }

    /// `404 Not Found` with a JSON error object.
    pub fn not_found(msg: &str) -> Response {
        Response::new(
            "404 Not Found",
            "application/json",
            format!("{{\"error\":{}}}", crate::json::Value::Str(msg.to_string())),
        )
    }

    /// `400 Bad Request` with a JSON error object.
    pub fn bad_request(msg: &str) -> Response {
        Response::new(
            "400 Bad Request",
            "application/json",
            format!("{{\"error\":{}}}", crate::json::Value::Str(msg.to_string())),
        )
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl std::fmt::Display) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }
}

/// Writes `response` to `stream` with `Content-Length` framing and
/// `Connection: close`, then flushes.
///
/// # Errors
/// Socket write failures.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP client for test harnesses and the `run-looppoint`
/// client subcommands: one request, `Connection: close`, returns
/// `(status_code, body)`.
///
/// # Errors
/// Connect/read/write failures, or an unparseable status line.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    client_request_traced(addr, method, path, body, None)
}

/// [`client_request`] with an optional [`TraceContext`] propagated via
/// the `traceparent` header, so the server can parent its work under the
/// caller's trace.
///
/// # Errors
/// Connect/read/write failures, or an unparseable status line.
pub fn client_request_traced(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    trace: Option<&TraceContext>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let trace_header = match trace {
        Some(ctx) => format!("{TRACEPARENT_HEADER}: {}\r\n", ctx.to_traceparent()),
        None => String::new(),
    };
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{trace_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    let (head, payload) = buf
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_once(
        handler: impl FnOnce(Result<Request, HttpError>) -> Response + Send + 'static,
    ) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024);
            let resp = handler(req);
            write_response(&mut stream, &resp).unwrap();
        });
        addr
    }

    #[test]
    fn roundtrips_get_with_query() {
        let addr = serve_once(|req| {
            let req = req.unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.query.as_deref(), Some("state=queued"));
            assert!(req.body.is_empty());
            Response::json_ok("{\"ok\":true}".to_string())
        });
        let (status, body) = client_request(&addr, "GET", "/jobs?state=queued", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn roundtrips_post_body() {
        let addr = serve_once(|req| {
            let req = req.unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.body_text(), "line one\nline two\n");
            Response::text_ok("accepted".to_string())
        });
        let (status, body) =
            client_request(&addr, "POST", "/jobs", "line one\nline two\n").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "accepted");
    }

    #[test]
    fn traceparent_header_roundtrips() {
        let ctx = TraceContext::new_root();
        let expect = ctx;
        let addr = serve_once(move |req| {
            let req = req.unwrap();
            let got = req.trace.expect("traceparent must parse");
            assert_eq!(got.trace_id, expect.trace_id);
            assert_eq!(got.span_id, expect.span_id);
            Response::json_ok("{}".to_string())
        });
        let (status, _) = client_request_traced(&addr, "GET", "/x", "", Some(&ctx)).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn malformed_traceparent_is_ignored() {
        let addr = serve_once(|req| {
            let req = req.unwrap();
            assert_eq!(
                req.trace, None,
                "garbage header must not poison the request"
            );
            Response::json_ok("{}".to_string())
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(
            stream,
            "GET /x HTTP/1.1\r\ntraceparent: not-a-context\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let addr = serve_once(|req| match req {
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                assert!(declared > limit);
                Response::new("413 Payload Too Large", "text/plain", String::new())
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        });
        let big = "x".repeat(4096);
        let (status, _) = client_request(&addr, "POST", "/jobs", &big).unwrap();
        assert_eq!(status, 413);
    }

    #[test]
    fn extra_headers_and_retry_after() {
        let addr = serve_once(|_req| {
            Response::new(
                "503 Service Unavailable",
                "application/json",
                "{\"error\":\"queue full\"}".to_string(),
            )
            .with_header("Retry-After", 2)
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(stream, "GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503"), "{buf}");
        assert!(buf.contains("Retry-After: 2\r\n"), "{buf}");
    }

    #[test]
    fn malformed_request_line_is_an_error() {
        let addr = serve_once(|req| match req {
            Err(HttpError::Malformed(_)) => Response::bad_request("malformed"),
            other => panic!("expected Malformed, got {other:?}"),
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }
}
