//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms with lock-free updates on the hot path.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones;
//! look one up once, then update it with a single atomic op per event.
//! Handles from a disabled [`crate::Observer`] are no-ops.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 holds exactly 0; bucket `i >= 1` holds
/// `[2^(i-1), 2^i)` — so 1 maps to bucket 1, `u64::MAX` to bucket 64.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (see [`bucket_index`]).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulate: a sum overflow must not wrap silently.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_lower_bound(i), c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A named gauge holding the most recent `f64` sample.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge (no-op when disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A named histogram over `u64` samples, log₂-bucketed.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Snapshot of the current distribution (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map(|h| h.snapshot()).unwrap_or_default()
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// `(bucket lower bound, sample count)` for every non-empty bucket,
    /// in ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) from the log₂
    /// buckets: the target rank's bucket is found by cumulative count,
    /// then the value is linearly interpolated across the bucket's
    /// `[2^i, 2^(i+1))` range. Exact for the zero bucket; within one
    /// bucket width otherwise. Returns `0.0` on an empty histogram.
    ///
    /// This is the one shared quantile implementation — the flat-JSON
    /// metrics export and `BENCH_farm.json`'s queue-wait percentiles both
    /// come from here.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for &(lo, c) in &self.buckets {
            let next = seen + c;
            if next as f64 >= target {
                if lo == 0 {
                    return 0.0;
                }
                let hi = lo.saturating_mul(2).max(lo);
                let frac = if c == 0 {
                    0.0
                } else {
                    ((target - seen as f64) / c as f64).clamp(0.0, 1.0)
                };
                return lo as f64 + frac * (hi - lo) as f64;
            }
            seen = next;
        }
        self.buckets.last().map_or(0.0, |&(lo, _)| lo as f64)
    }

    /// The median ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// The registry: name → metric, created on first use.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl MetricsRegistry {
    /// The counter registered under `name` (created zeroed on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        let arc = map.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(arc)))
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        let arc = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Some(Arc::clone(arc)))
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        let arc = map.entry(name.to_string()).or_default();
        Histogram(Some(Arc::clone(arc)))
    }

    /// A consistent point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as the metrics-report JSON document.
    pub fn to_json(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::from(v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Num(v)))
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Arr(
                        h.buckets
                            .iter()
                            .map(|&(lo, c)| Value::Arr(vec![Value::from(lo), Value::from(c)]))
                            .collect(),
                    );
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("count".to_string(), Value::from(h.count)),
                            ("sum".to_string(), Value::from(h.sum)),
                            ("p50".to_string(), Value::Num(h.p50())),
                            ("p90".to_string(), Value::Num(h.p90())),
                            ("p99".to_string(), Value::Num(h.p99())),
                            ("buckets".to_string(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }

    /// Parses a document produced by [`MetricsSnapshot::to_json`] back into
    /// a snapshot, so one node can federate another node's `/metrics.json`.
    /// Quantile fields are ignored (they are derived from the buckets).
    pub fn from_json(doc: &Value) -> Result<MetricsSnapshot, String> {
        fn members<'a>(doc: &'a Value, key: &str) -> Result<&'a [(String, Value)], String> {
            match doc.get(key) {
                Some(Value::Obj(members)) => Ok(members),
                Some(_) => Err(format!("metrics field {key:?} is not an object")),
                None => Err(format!("metrics document is missing {key:?}")),
            }
        }
        let mut snap = MetricsSnapshot::default();
        for (name, v) in members(doc, "counters")? {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("counter {name:?} is not a u64"))?;
            snap.counters.insert(name.clone(), v);
        }
        for (name, v) in members(doc, "gauges")? {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("gauge {name:?} is not a number"))?;
            snap.gauges.insert(name.clone(), v);
        }
        for (name, h) in members(doc, "histograms")? {
            let count = h
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram {name:?} is missing count"))?;
            let sum = h
                .get("sum")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram {name:?} is missing sum"))?;
            let raw = h
                .get("buckets")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("histogram {name:?} is missing buckets"))?;
            let mut buckets = Vec::with_capacity(raw.len());
            for pair in raw {
                let (lo, c) = match pair.as_arr() {
                    Some([lo, c]) => (lo.as_u64(), c.as_u64()),
                    _ => (None, None),
                };
                match (lo, c) {
                    (Some(lo), Some(c)) => buckets.push((lo, c)),
                    _ => return Err(format!("histogram {name:?} has a malformed bucket")),
                }
            }
            snap.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                },
            );
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's lower bound maps back into that bucket, and the
        // value just below it maps into the previous one.
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if i >= 2 {
                assert_eq!(bucket_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn histogram_records_edge_values() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("lat");
        h.record(0);
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        // Sum saturates instead of wrapping.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 2), (1, 1), (1u64 << 63, 1)]);
    }

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("insts");
        c.add(40);
        c.inc();
        c.inc();
        // Same name → same underlying cell.
        assert_eq!(reg.counter("insts").get(), 42);

        let g = reg.gauge("ipc");
        g.set(1.75);
        assert_eq!(reg.gauge("ipc").get(), 1.75);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(2.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.record(9);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn snapshot_roundtrips_via_json() {
        let reg = MetricsRegistry::default();
        reg.counter("a.b").add(u64::MAX);
        reg.gauge("g").set(0.5);
        reg.histogram("h").record(1023);
        let snap = reg.snapshot();
        let doc = crate::json::parse(&snap.to_json().to_string()).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(0.5)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(1023));
    }

    #[test]
    fn snapshot_parses_back_from_json() {
        let reg = MetricsRegistry::default();
        reg.counter("c").add(7);
        reg.gauge("g").set(-2.5);
        let h = reg.histogram("h");
        h.record(0);
        h.record(100);
        let snap = reg.snapshot();
        let doc = crate::json::parse(&snap.to_json().to_string()).unwrap();
        let back = MetricsSnapshot::from_json(&doc).unwrap();
        assert_eq!(back, snap);

        // Malformed documents are rejected, not mis-parsed.
        assert!(MetricsSnapshot::from_json(&Value::Null).is_err());
        let bad = crate::json::parse(r#"{"counters":{"c":-1},"gauges":{},"histograms":{}}"#);
        assert!(MetricsSnapshot::from_json(&bad.unwrap()).is_err());
    }

    #[test]
    fn quantiles_from_log2_buckets() {
        // Empty → 0.
        assert_eq!(HistogramSnapshot::default().p50(), 0.0);

        // All samples zero → every quantile is exactly 0.
        let reg = MetricsRegistry::default();
        let h = reg.histogram("z");
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);

        // A single-bucket distribution interpolates inside the bucket:
        // 100 samples in [64, 128) → p50 lands mid-bucket, p99 near the top.
        let h = reg.histogram("one");
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(64, 100)]);
        assert!((s.p50() - 96.0).abs() < 1.0, "p50 = {}", s.p50());
        assert!(s.p99() > 124.0 && s.p99() <= 128.0, "p99 = {}", s.p99());
        // Quantiles are monotone in q.
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());

        // Two well-separated buckets: 90 cheap + 10 expensive samples →
        // p50 sits in the cheap bucket, p99 in the expensive one.
        let h = reg.histogram("two");
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(5_000);
        }
        let s = h.snapshot();
        assert!(s.p50() >= 8.0 && s.p50() < 16.0, "p50 = {}", s.p50());
        assert!(s.p99() >= 4096.0 && s.p99() < 8192.0, "p99 = {}", s.p99());

        // q is clamped; the top bucket saturates rather than overflowing.
        let h = reg.histogram("sat");
        h.record(u64::MAX);
        let s = h.snapshot();
        assert!(s.quantile(2.0).is_finite());
        assert!(s.quantile(-1.0) >= 0.0);
    }

    #[test]
    fn json_export_carries_quantiles() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("lat");
        for _ in 0..10 {
            h.record(100);
        }
        let doc = crate::json::parse(&reg.snapshot().to_json().to_string()).unwrap();
        let lat = doc.get("histograms").unwrap().get("lat").unwrap();
        let p50 = lat.get("p50").unwrap().as_f64().unwrap();
        let p99 = lat.get("p99").unwrap().as_f64().unwrap();
        assert!((64.0..128.0).contains(&p50), "p50 = {p50}");
        assert!(p50 <= p99 && p99 <= 128.0);
        assert!(lat.get("p90").is_some());
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = std::sync::Arc::new(MetricsRegistry::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("n");
                    let h = reg.histogram("d");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 17);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("n").get(), 80_000);
        assert_eq!(reg.histogram("d").snapshot().count, 80_000);
    }
}
