//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms with lock-free updates on the hot path.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones;
//! look one up once, then update it with a single atomic op per event.
//! Handles from a disabled [`crate::Observer`] are no-ops.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 holds exactly 0; bucket `i >= 1` holds
/// `[2^(i-1), 2^i)` — so 1 maps to bucket 1, `u64::MAX` to bucket 64.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (see [`bucket_index`]).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulate: a sum overflow must not wrap silently.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_lower_bound(i), c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A named gauge holding the most recent `f64` sample.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge (no-op when disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A named histogram over `u64` samples, log₂-bucketed.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Snapshot of the current distribution (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map(|h| h.snapshot()).unwrap_or_default()
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// `(bucket lower bound, sample count)` for every non-empty bucket,
    /// in ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

/// The registry: name → metric, created on first use.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl MetricsRegistry {
    /// The counter registered under `name` (created zeroed on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        let arc = map.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(arc)))
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        let arc = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Some(Arc::clone(arc)))
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        let arc = map.entry(name.to_string()).or_default();
        Histogram(Some(Arc::clone(arc)))
    }

    /// A consistent point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as the metrics-report JSON document.
    pub fn to_json(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::from(v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Num(v)))
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Arr(
                        h.buckets
                            .iter()
                            .map(|&(lo, c)| Value::Arr(vec![Value::from(lo), Value::from(c)]))
                            .collect(),
                    );
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("count".to_string(), Value::from(h.count)),
                            ("sum".to_string(), Value::from(h.sum)),
                            ("buckets".to_string(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's lower bound maps back into that bucket, and the
        // value just below it maps into the previous one.
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if i >= 2 {
                assert_eq!(bucket_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn histogram_records_edge_values() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("lat");
        h.record(0);
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        // Sum saturates instead of wrapping.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 2), (1, 1), (1u64 << 63, 1)]);
    }

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("insts");
        c.add(40);
        c.inc();
        c.inc();
        // Same name → same underlying cell.
        assert_eq!(reg.counter("insts").get(), 42);

        let g = reg.gauge("ipc");
        g.set(1.75);
        assert_eq!(reg.gauge("ipc").get(), 1.75);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(2.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.record(9);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn snapshot_roundtrips_via_json() {
        let reg = MetricsRegistry::default();
        reg.counter("a.b").add(u64::MAX);
        reg.gauge("g").set(0.5);
        reg.histogram("h").record(1023);
        let snap = reg.snapshot();
        let doc = crate::json::parse(&snap.to_json().to_string()).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(0.5)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(1023));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = std::sync::Arc::new(MetricsRegistry::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("n");
                    let h = reg.histogram("d");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 17);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("n").get(), 80_000);
        assert_eq!(reg.histogram("d").snapshot().count, 80_000);
    }
}
