//! Metrics federation: merging per-node [`MetricsSnapshot`]s into a
//! ring-wide rollup and rendering the combined view as labelled
//! Prometheus text.
//!
//! Counters sum; gauges sum or max per the [`names::gauge_rollup`]
//! policy table; histograms merge bucket-by-bucket (same log₂ bounds on
//! every node, so a merge-join by lower bound is exact). The labelled
//! renderer emits every node's series tagged `node="addr"` plus the
//! unlabelled rollup, so one scrape of `/cluster/metrics` yields both
//! the per-node breakdown and the ring total.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::names::{self, GaugeRollup};
use crate::prometheus::{fmt_f64, le_bound, sanitize_name};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Merges two histograms of identical bucketing scheme: counts and sums
/// saturate, buckets merge-join by lower bound.
pub fn merge_histograms(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets: BTreeMap<u64, u64> = a.buckets.iter().copied().collect();
    for &(lo, c) in &b.buckets {
        let cell = buckets.entry(lo).or_insert(0);
        *cell = cell.saturating_add(c);
    }
    HistogramSnapshot {
        count: a.count.saturating_add(b.count),
        sum: a.sum.saturating_add(b.sum),
        buckets: buckets.into_iter().collect(),
    }
}

/// Folds per-node snapshots into one ring-wide rollup: counters summed,
/// gauges combined per [`names::gauge_rollup`], histograms bucket-merged.
pub fn rollup(nodes: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for snap in nodes {
        for (name, &v) in &snap.counters {
            let cell = out.counters.entry(name.clone()).or_insert(0);
            *cell = cell.saturating_add(v);
        }
        for (name, &v) in &snap.gauges {
            match out.gauges.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let cur = *e.get();
                    *e.get_mut() = match names::gauge_rollup(name) {
                        GaugeRollup::Sum => cur + v,
                        GaugeRollup::Max => cur.max(v),
                    };
                }
            }
        }
        for (name, h) in &snap.histograms {
            match out.histograms.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    *e.get_mut() = merge_histograms(e.get(), h);
                }
            }
        }
    }
    out
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the federated view as Prometheus text: for every metric name
/// (the sorted union over all nodes), one `# TYPE` line, each node's
/// sample labelled `node="addr"`, then the unlabelled `rollup` sample.
/// Histograms get per-node cumulative `_bucket{node=…,le=…}` series plus
/// the merged unlabelled series.
pub fn render_labelled(nodes: &[(String, MetricsSnapshot)], rollup: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for name in rollup.counters.keys() {
        let sname = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {sname} counter");
        for (node, snap) in nodes {
            if let Some(v) = snap.counters.get(name) {
                let _ = writeln!(out, "{sname}{{node=\"{}\"}} {v}", label_escape(node));
            }
        }
        let _ = writeln!(out, "{sname} {}", rollup.counters[name]);
    }
    for name in rollup.gauges.keys() {
        let sname = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {sname} gauge");
        for (node, snap) in nodes {
            if let Some(&v) = snap.gauges.get(name) {
                let _ = writeln!(
                    out,
                    "{sname}{{node=\"{}\"}} {}",
                    label_escape(node),
                    fmt_f64(v)
                );
            }
        }
        let _ = writeln!(out, "{sname} {}", fmt_f64(rollup.gauges[name]));
    }
    for (name, merged) in &rollup.histograms {
        let sname = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {sname} histogram");
        for (node, snap) in nodes {
            let Some(h) = snap.histograms.get(name) else {
                continue;
            };
            let node = label_escape(node);
            let mut cumulative = 0u64;
            for &(lo, c) in &h.buckets {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{sname}_bucket{{node=\"{node}\",le=\"{}\"}} {cumulative}",
                    le_bound(lo)
                );
            }
            let _ = writeln!(
                out,
                "{sname}_bucket{{node=\"{node}\",le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(out, "{sname}_sum{{node=\"{node}\"}} {}", h.sum);
            let _ = writeln!(out, "{sname}_count{{node=\"{node}\"}} {}", h.count);
        }
        let mut cumulative = 0u64;
        for &(lo, c) in &merged.buckets {
            cumulative += c;
            let _ = writeln!(
                out,
                "{sname}_bucket{{le=\"{}\"}} {cumulative}",
                le_bound(lo)
            );
        }
        let _ = writeln!(out, "{sname}_bucket{{le=\"+Inf\"}} {}", merged.count);
        let _ = writeln!(out, "{sname}_sum {}", merged.sum);
        let _ = writeln!(out, "{sname}_count {}", merged.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn snap(submitted: u64, depth: f64, ring: f64, waits: &[u64]) -> MetricsSnapshot {
        let reg = MetricsRegistry::default();
        reg.counter(names::FARM_SUBMITTED).add(submitted);
        reg.gauge(names::FARM_QUEUE_DEPTH).set(depth);
        reg.gauge(names::CLUSTER_RING_NODES).set(ring);
        for &w in waits {
            reg.histogram(names::FARM_QUEUE_WAIT_US).record(w);
        }
        reg.snapshot()
    }

    #[test]
    fn rollup_sums_counters_and_applies_gauge_policy() {
        let a = snap(10, 2.0, 3.0, &[0, 100]);
        let b = snap(32, 5.0, 3.0, &[100, 7_000]);
        let r = rollup(&[a.clone(), b.clone()]);
        assert_eq!(r.counters[names::FARM_SUBMITTED], 42);
        // Queue depth is an occupancy → sums.
        assert_eq!(r.gauges[names::FARM_QUEUE_DEPTH], 7.0);
        // Ring size is an agreement gauge → max, not 6.
        assert_eq!(r.gauges[names::CLUSTER_RING_NODES], 3.0);
        // Histogram counts/sums add; the shared bucket merges.
        let h = &r.histograms[names::FARM_QUEUE_WAIT_US];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 7_200);
        assert_eq!(h.buckets, vec![(0, 1), (64, 2), (4096, 1)]);
        // The merged quantile still works.
        assert!(h.p99() >= 4096.0);

        // Saturation instead of wrap-around.
        let mut big = MetricsSnapshot::default();
        big.counters.insert("c".to_string(), u64::MAX);
        let r = rollup(&[big.clone(), big]);
        assert_eq!(r.counters["c"], u64::MAX);
    }

    #[test]
    fn labelled_render_carries_per_node_and_rollup_series() {
        let a = snap(10, 2.0, 3.0, &[100]);
        let b = snap(32, 5.0, 3.0, &[7_000]);
        let nodes = vec![
            ("127.0.0.1:7101".to_string(), a),
            ("127.0.0.1:7102".to_string(), b),
        ];
        let r = rollup(&[nodes[0].1.clone(), nodes[1].1.clone()]);
        let text = render_labelled(&nodes, &r);
        assert!(text.contains("farm_submitted{node=\"127.0.0.1:7101\"} 10\n"));
        assert!(text.contains("farm_submitted{node=\"127.0.0.1:7102\"} 32\n"));
        assert!(text.contains("\nfarm_submitted 42\n"));
        assert!(text.contains("farm_queue_wait_us_count{node=\"127.0.0.1:7101\"} 1\n"));
        assert!(text.contains("\nfarm_queue_wait_us_count 2\n"));
        // Exactly one TYPE line per metric name.
        assert_eq!(text.matches("# TYPE farm_submitted counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
