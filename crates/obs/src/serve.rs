//! The live telemetry endpoint: a std-only HTTP server on a background
//! thread, so long-running analyses and sweeps can be watched from
//! *outside* the process.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the metrics registry in Prometheus text exposition
//!   format (scrapeable; see [`crate::prometheus`]);
//! * `GET /healthz` — JSON liveness: current pipeline phase, heartbeat
//!   age, uptime, and recorded-event count;
//! * `GET /report` — the most recent diagnostics report JSON installed
//!   via [`TelemetryServer::set_report`] (404 until one exists).
//!
//! The server is deliberately minimal: blocking accept loop, one request
//! per connection, `Connection: close`, 2-second I/O timeouts. Shutdown
//! wakes the accept loop with a loopback connection, so [`TelemetryServer`]
//! never leaks its thread.

use crate::http::{self, Response};
use crate::names;
use crate::Observer;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct Shared {
    stop: AtomicBool,
    report: Mutex<Option<String>>,
    obs: Observer,
}

/// Handle to the background telemetry server; dropping (or calling
/// [`TelemetryServer::stop`]) shuts it down and joins the thread.
#[must_use = "dropping the server handle shuts the endpoint down"]
pub struct TelemetryServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TelemetryServer({})", self.local_addr)
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving. The bound address is available via
    /// [`TelemetryServer::local_addr`].
    ///
    /// # Errors
    /// Bind/spawn failures.
    pub fn start(addr: impl ToSocketAddrs, obs: Observer) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            report: Mutex::new(None),
            obs,
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("lp-obs-serve".to_string())
            .spawn(move || serve_loop(&listener, &thread_shared))?;
        Ok(TelemetryServer {
            local_addr,
            shared,
            handle: Some(handle),
        })
    }

    /// The address the server actually bound (relevant with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Installs the JSON served at `/report` (replacing any previous one).
    pub fn set_report(&self, json: String) {
        *self.shared.report.lock().expect("report slot poisoned") = Some(json);
    }

    /// Shuts the server down and joins its thread.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                if let Err(_e) = handle_connection(stream, shared) {
                    shared.obs.counter(names::SERVE_ERRORS).inc();
                }
            }
            Err(_) => shared.obs.counter(names::SERVE_ERRORS).inc(),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let request = http::read_request(&mut stream, 0);
    shared.obs.counter(names::SERVE_REQUESTS).inc();

    let response = match request {
        Err(http::HttpError::Io(e)) => return Err(e),
        Err(_) => Response::bad_request("malformed request"),
        Ok(req) if req.method != "GET" => Response::new(
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        ),
        Ok(req) => match req.path.as_str() {
            "/metrics" => Response::new(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                shared.obs.prometheus_text(),
            ),
            "/healthz" => Response::json_ok(healthz_json(&shared.obs)),
            "/report" => {
                let report = shared.report.lock().expect("report slot poisoned").clone();
                match report {
                    Some(json) => Response::json_ok(json),
                    None => Response::not_found("no report yet"),
                }
            }
            other => Response::new(
                "404 Not Found",
                "application/json; charset=utf-8",
                unknown_path_json(other),
            ),
        },
    };
    http::write_response(&mut stream, &response)
}

/// JSON error body for unknown paths: names the path that missed and the
/// routes this server actually has, so a curl typo is self-diagnosing.
fn unknown_path_json(path: &str) -> String {
    use crate::json::Value;
    Value::Obj(vec![
        ("error".to_string(), Value::Str("unknown path".to_string())),
        ("path".to_string(), Value::Str(path.to_string())),
        (
            "routes".to_string(),
            Value::Arr(
                ["/metrics", "/healthz", "/report"]
                    .iter()
                    .map(|r| Value::Str((*r).to_string()))
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

fn healthz_json(obs: &Observer) -> String {
    use crate::json::Value;
    let mut members = vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        ("phase".to_string(), Value::Str(obs.phase())),
        (
            "heartbeat_age_us".to_string(),
            Value::from(obs.heartbeat_age_us()),
        ),
        ("uptime_us".to_string(), Value::from(obs.uptime_us())),
        (
            "trace_events".to_string(),
            Value::from(obs.trace_events().len() as u64),
        ),
    ];
    // When a flight recorder publishes its occupancy gauges on this
    // observer, surface them as a nested object so liveness probes see
    // trace-ring pressure without scraping /metrics.
    let snap = obs.snapshot();
    if let Some(cap) = snap.gauges.get(names::FARM_TRACE_CAPACITY) {
        members.push((
            "flight_recorder".to_string(),
            Value::Obj(vec![
                (
                    "live".to_string(),
                    Value::Num(
                        snap.gauges
                            .get(names::FARM_TRACE_LIVE)
                            .copied()
                            .unwrap_or(0.0),
                    ),
                ),
                (
                    "finished".to_string(),
                    Value::Num(
                        snap.gauges
                            .get(names::FARM_TRACE_FINISHED)
                            .copied()
                            .unwrap_or(0.0),
                    ),
                ),
                ("capacity".to_string(), Value::Num(*cap)),
                (
                    "evicted".to_string(),
                    Value::from(
                        snap.counters
                            .get(names::FARM_TRACE_EVICTED)
                            .copied()
                            .unwrap_or(0),
                    ),
                ),
            ]),
        ));
    }
    Value::Obj(members).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::io::Write;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        use std::io::Read;
        stream.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_healthz_and_report() {
        let obs = Observer::enabled();
        obs.counter("store.hit").add(7);
        obs.set_phase("testing");
        let server = TelemetryServer::start("127.0.0.1:0", obs.clone()).unwrap();
        let addr = server.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("# TYPE store_hit counter"));
        assert!(body.contains("store_hit 7"));
        // serve.requests self-counts: a second scrape sees the first.
        let (_, body2) = http_get(addr, "/metrics");
        assert!(body2.contains("serve_requests"));

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("phase").unwrap().as_str(), Some("testing"));
        assert!(doc.get("heartbeat_age_us").unwrap().as_u64().is_some());

        let (head, _) = http_get(addr, "/report");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.set_report("{\"workload\":\"demo\"}".to_string());
        let (head, body) = http_get(addr, "/report");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(
            json::parse(&body)
                .unwrap()
                .get("workload")
                .unwrap()
                .as_str(),
            Some("demo")
        );

        // Unknown paths get a JSON error body listing the valid routes.
        let (head, body) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("path").unwrap().as_str(), Some("/nope"));
        let routes: Vec<&str> = doc
            .get("routes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str())
            .collect();
        assert_eq!(routes, vec!["/metrics", "/healthz", "/report"]);

        server.stop();
        // The port is released: a new bind on the same address succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "server thread must release the listener");
    }

    #[test]
    fn healthz_surfaces_flight_recorder_occupancy() {
        let obs = Observer::enabled();
        let server = TelemetryServer::start("127.0.0.1:0", obs.clone()).unwrap();

        // Without the capacity gauge the object is absent entirely.
        let (_, body) = http_get(server.local_addr(), "/healthz");
        assert!(json::parse(&body).unwrap().get("flight_recorder").is_none());

        obs.gauge(names::FARM_TRACE_CAPACITY).set(256.0);
        obs.gauge(names::FARM_TRACE_LIVE).set(3.0);
        obs.gauge(names::FARM_TRACE_FINISHED).set(11.0);
        obs.counter(names::FARM_TRACE_EVICTED).add(5);
        let (_, body) = http_get(server.local_addr(), "/healthz");
        let fr = json::parse(&body).unwrap();
        let fr = fr.get("flight_recorder").expect("flight_recorder object");
        assert_eq!(fr.get("capacity").unwrap().as_f64(), Some(256.0));
        assert_eq!(fr.get("live").unwrap().as_f64(), Some(3.0));
        assert_eq!(fr.get("finished").unwrap().as_f64(), Some(11.0));
        assert_eq!(fr.get("evicted").unwrap().as_u64(), Some(5));
        server.stop();
    }

    #[test]
    fn rejects_non_get() {
        let server = TelemetryServer::start("127.0.0.1:0", Observer::enabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = String::new();
        use std::io::Read;
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 405"), "{buf}");
        server.stop();
    }
}
