//! The live telemetry endpoint: a std-only HTTP server on the shared
//! multiplexed core ([`crate::httpd`]), so long-running analyses and
//! sweeps can be watched from *outside* the process.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the metrics registry in Prometheus text exposition
//!   format (scrapeable; see [`crate::prometheus`]);
//! * `GET /healthz` — JSON liveness: current pipeline phase, heartbeat
//!   age, uptime, and recorded-event count;
//! * `GET /report` — the most recent diagnostics report JSON installed
//!   via [`TelemetryServer::set_report`] (404 until one exists).
//!
//! Requests dispatch concurrently on the shared reactor: a scraper's
//! `/metrics` poll is never stuck behind a slow client dribbling a
//! `/report` download — one wedged connection costs one pollfd, not the
//! whole endpoint. Connections are keep-alive with idle timeouts;
//! [`TelemetryServer`] never leaks its threads.

use crate::http::{Request, Response};
use crate::httpd::{Handler, HttpServer, ServerConfig};
use crate::names;
use crate::Observer;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};

struct Shared {
    report: Mutex<Option<String>>,
    obs: Observer,
}

/// Handle to the background telemetry server; dropping (or calling
/// [`TelemetryServer::stop`]) shuts it down and joins its threads.
#[must_use = "dropping the server handle shuts the endpoint down"]
pub struct TelemetryServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    server: Option<HttpServer>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TelemetryServer({})", self.local_addr)
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving. The bound address is available via
    /// [`TelemetryServer::local_addr`].
    ///
    /// # Errors
    /// Bind/spawn failures.
    pub fn start(addr: impl ToSocketAddrs, obs: Observer) -> io::Result<TelemetryServer> {
        let shared = Arc::new(Shared {
            report: Mutex::new(None),
            obs: obs.clone(),
        });
        let handler_shared = Arc::clone(&shared);
        let handler: Handler = Arc::new(move |req: &Request| handle(req, &handler_shared));
        let server = HttpServer::start(
            addr,
            ServerConfig {
                // The endpoint serves small GET documents only.
                max_body: 0,
                thread_name: "lp-obs-serve".to_string(),
                ..ServerConfig::default()
            },
            handler,
            obs,
        )?;
        let local_addr = server.local_addr();
        Ok(TelemetryServer {
            local_addr,
            shared,
            server: Some(server),
        })
    }

    /// The address the server actually bound (relevant with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Installs the JSON served at `/report` (replacing any previous one).
    pub fn set_report(&self, json: String) {
        *self.shared.report.lock().expect("report slot poisoned") = Some(json);
    }

    /// Shuts the server down and joins its threads.
    pub fn stop(mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
    }
}

fn handle(req: &Request, shared: &Shared) -> Response {
    if req.method != "GET" {
        return Response::new(
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        );
    }
    match req.path.as_str() {
        "/metrics" => Response::new(
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.obs.prometheus_text(),
        ),
        "/healthz" => Response::json_ok(healthz_json(&shared.obs)),
        "/report" => {
            let report = shared.report.lock().expect("report slot poisoned").clone();
            match report {
                Some(json) => Response::json_ok(json),
                None => Response::not_found("no report yet"),
            }
        }
        other => Response::new(
            "404 Not Found",
            "application/json; charset=utf-8",
            unknown_path_json(other),
        ),
    }
}

/// JSON error body for unknown paths: names the path that missed and the
/// routes this server actually has, so a curl typo is self-diagnosing.
fn unknown_path_json(path: &str) -> String {
    use crate::json::Value;
    Value::Obj(vec![
        ("error".to_string(), Value::Str("unknown path".to_string())),
        ("path".to_string(), Value::Str(path.to_string())),
        (
            "routes".to_string(),
            Value::Arr(
                ["/metrics", "/healthz", "/report"]
                    .iter()
                    .map(|r| Value::Str((*r).to_string()))
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

fn healthz_json(obs: &Observer) -> String {
    use crate::json::Value;
    let mut members = vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        ("phase".to_string(), Value::Str(obs.phase())),
        (
            "heartbeat_age_us".to_string(),
            Value::from(obs.heartbeat_age_us()),
        ),
        ("uptime_us".to_string(), Value::from(obs.uptime_us())),
        (
            "trace_events".to_string(),
            Value::from(obs.trace_events().len() as u64),
        ),
    ];
    // When a flight recorder publishes its occupancy gauges on this
    // observer, surface them as a nested object so liveness probes see
    // trace-ring pressure without scraping /metrics.
    let snap = obs.snapshot();
    if let Some(cap) = snap.gauges.get(names::FARM_TRACE_CAPACITY) {
        members.push((
            "flight_recorder".to_string(),
            Value::Obj(vec![
                (
                    "live".to_string(),
                    Value::Num(
                        snap.gauges
                            .get(names::FARM_TRACE_LIVE)
                            .copied()
                            .unwrap_or(0.0),
                    ),
                ),
                (
                    "finished".to_string(),
                    Value::Num(
                        snap.gauges
                            .get(names::FARM_TRACE_FINISHED)
                            .copied()
                            .unwrap_or(0.0),
                    ),
                ),
                ("capacity".to_string(), Value::Num(*cap)),
                (
                    "evicted".to_string(),
                    Value::from(
                        snap.counters
                            .get(names::FARM_TRACE_EVICTED)
                            .copied()
                            .unwrap_or(0),
                    ),
                ),
            ]),
        ));
    }
    Value::Obj(members).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_healthz_and_report() {
        let obs = Observer::enabled();
        obs.counter("store.hit").add(7);
        obs.set_phase("testing");
        let server = TelemetryServer::start("127.0.0.1:0", obs.clone()).unwrap();
        let addr = server.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("# TYPE store_hit counter"));
        assert!(body.contains("store_hit 7"));
        // serve.requests self-counts: a second scrape sees the first.
        let (_, body2) = http_get(addr, "/metrics");
        assert!(body2.contains("serve_requests"));

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("phase").unwrap().as_str(), Some("testing"));
        assert!(doc.get("heartbeat_age_us").unwrap().as_u64().is_some());

        let (head, _) = http_get(addr, "/report");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.set_report("{\"workload\":\"demo\"}".to_string());
        let (head, body) = http_get(addr, "/report");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(
            json::parse(&body)
                .unwrap()
                .get("workload")
                .unwrap()
                .as_str(),
            Some("demo")
        );

        // Unknown paths get a JSON error body listing the valid routes.
        let (head, body) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("path").unwrap().as_str(), Some("/nope"));
        let routes: Vec<&str> = doc
            .get("routes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str())
            .collect();
        assert_eq!(routes, vec!["/metrics", "/healthz", "/report"]);

        server.stop();
        // The port is released: a new bind on the same address succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "server thread must release the listener");
    }

    #[test]
    fn healthz_surfaces_flight_recorder_occupancy() {
        let obs = Observer::enabled();
        let server = TelemetryServer::start("127.0.0.1:0", obs.clone()).unwrap();

        // Without the capacity gauge the object is absent entirely.
        let (_, body) = http_get(server.local_addr(), "/healthz");
        assert!(json::parse(&body).unwrap().get("flight_recorder").is_none());

        obs.gauge(names::FARM_TRACE_CAPACITY).set(256.0);
        obs.gauge(names::FARM_TRACE_LIVE).set(3.0);
        obs.gauge(names::FARM_TRACE_FINISHED).set(11.0);
        obs.counter(names::FARM_TRACE_EVICTED).add(5);
        let (_, body) = http_get(server.local_addr(), "/healthz");
        let fr = json::parse(&body).unwrap();
        let fr = fr.get("flight_recorder").expect("flight_recorder object");
        assert_eq!(fr.get("capacity").unwrap().as_f64(), Some(256.0));
        assert_eq!(fr.get("live").unwrap().as_f64(), Some(3.0));
        assert_eq!(fr.get("finished").unwrap().as_f64(), Some(11.0));
        assert_eq!(fr.get("evicted").unwrap().as_u64(), Some(5));
        server.stop();
    }

    #[test]
    fn rejects_non_get() {
        let server = TelemetryServer::start("127.0.0.1:0", Observer::enabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(
            stream,
            "POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 405"), "{buf}");
        server.stop();
    }

    /// The multiplexing regression the serial server failed: a client
    /// that opens a connection, sends half a request, and stalls must
    /// not block other clients' `/metrics` polls.
    #[test]
    fn slow_client_does_not_block_metrics() {
        let obs = Observer::enabled();
        obs.counter("store.hit").add(42);
        let server = TelemetryServer::start("127.0.0.1:0", obs).unwrap();
        let addr = server.local_addr();

        // The slow client: a partial request head, then silence, holding
        // the connection open for the duration of the test.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /report HTTP/1.1\r\nHost: x").unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let the server adopt it

        // A healthy scraper must get through promptly regardless.
        let started = Instant::now();
        let (head, body) = http_get(addr, "/metrics");
        let elapsed = started.elapsed();
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("store_hit 42"), "{body}");
        assert!(
            elapsed < Duration::from_secs(1),
            "metrics poll stalled behind the slow client: {elapsed:?}"
        );
        drop(slow);
        server.stop();
    }
}
