//! Bounded-memory metrics history: a lock-free single-writer ring of
//! periodic samples over a configurable set of columns.
//!
//! A [`HistorySampler`] thread snapshots the [`crate::Observer`]'s
//! registry every `interval_ms` and appends one [`Sample`] — a timestamp
//! plus one `f64` per [`HistoryColumn`] (raw counters, rates derived from
//! counter deltas, gauges, ratios, histogram quantiles) — into a
//! fixed-capacity [`History`] ring. Readers (`/metrics/history?since=`,
//! `run-looppoint top`) pull incrementally by sample sequence number and
//! never block the writer: each slot is a seqlock, so a reader that races
//! an overwrite simply skips that slot instead of seeing a torn sample.

use crate::names;
use crate::Observer;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one history column samples from the metrics registry.
#[derive(Debug, Clone, PartialEq)]
enum Source {
    /// The raw counter value.
    Counter(String),
    /// Per-second rate derived from consecutive counter deltas.
    Rate(String),
    /// The gauge value.
    Gauge(String),
    /// `numerator / denominator` of two counters (0 when the denominator
    /// is 0) — e.g. the dedup ratio.
    Ratio(String, String),
    /// A quantile of a histogram's current cumulative distribution.
    Quantile(String, f64),
}

/// One sampled column of the history ring: a label (the column name in
/// the NDJSON export) plus the registry signal it is derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryColumn {
    /// Column label in exports (derived from the signal name).
    pub label: String,
    source: Source,
}

impl HistoryColumn {
    /// Samples the raw value of counter `name`.
    pub fn counter(name: &str) -> Self {
        HistoryColumn {
            label: name.to_string(),
            source: Source::Counter(name.to_string()),
        }
    }

    /// Samples the per-second rate of counter `name` (delta between
    /// consecutive samples over elapsed time); labelled `{name}.rate`.
    pub fn rate(name: &str) -> Self {
        HistoryColumn {
            label: format!("{name}.rate"),
            source: Source::Rate(name.to_string()),
        }
    }

    /// Samples gauge `name`.
    pub fn gauge(name: &str) -> Self {
        HistoryColumn {
            label: name.to_string(),
            source: Source::Gauge(name.to_string()),
        }
    }

    /// Samples `num / den` of two counters under an explicit `label`
    /// (0 when `den` is 0).
    pub fn ratio(label: &str, num: &str, den: &str) -> Self {
        HistoryColumn {
            label: label.to_string(),
            source: Source::Ratio(num.to_string(), den.to_string()),
        }
    }

    /// Samples the `q`-quantile of histogram `name`; labelled
    /// `{name}.p{q*100}` (e.g. `.p50`, `.p99`).
    pub fn quantile(name: &str, q: f64) -> Self {
        HistoryColumn {
            label: format!("{name}.p{:.0}", q * 100.0),
            source: Source::Quantile(name.to_string(), q),
        }
    }
}

/// The standard per-farm history columns: throughput, occupancy, journal
/// lag, dedup ratio, and queue-wait quantiles — what `run-looppoint top`
/// renders per node.
pub fn farm_columns() -> Vec<HistoryColumn> {
    vec![
        HistoryColumn::rate(names::FARM_DONE),
        HistoryColumn::counter(names::FARM_SUBMITTED),
        HistoryColumn::gauge(names::FARM_QUEUE_DEPTH),
        HistoryColumn::gauge(names::FARM_RUNNING),
        HistoryColumn::gauge(names::FARM_WORKERS),
        HistoryColumn::gauge(names::FARM_JOURNAL_LAG),
        HistoryColumn::ratio(
            "farm.dedup.ratio",
            names::FARM_DEDUP_HITS,
            names::FARM_SUBMITTED,
        ),
        HistoryColumn::quantile(names::FARM_QUEUE_WAIT_US, 0.50),
        HistoryColumn::quantile(names::FARM_QUEUE_WAIT_US, 0.99),
    ]
}

/// One sample read back out of a [`History`] ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// 1-based monotone sequence number (pass the last seen value as
    /// `since` to read incrementally).
    pub seq: u64,
    /// Microseconds since the observer's epoch at sampling time.
    pub ts_us: u64,
    /// One value per column, in [`History::labels`] order.
    pub values: Vec<f64>,
}

struct Slot {
    /// Seqlock word: `2n+1` while sample `n` (0-based) is being written
    /// into this slot, `2n+2` once it is complete, 0 when never written.
    seq: AtomicU64,
    ts_us: AtomicU64,
    /// `f64::to_bits` of each column value.
    values: Box<[AtomicU64]>,
}

/// A fixed-capacity ring of samples: single writer, wait-free reads.
///
/// Memory is bounded at construction (`capacity × columns` atomics);
/// pushing the `capacity+1`-th sample overwrites the oldest. Readers
/// validate each slot's seqlock word before and after copying it, so a
/// read racing the writer skips the slot rather than returning torn data.
pub struct History {
    labels: Vec<String>,
    slots: Box<[Slot]>,
    /// Number of samples pushed so far.
    head: AtomicU64,
}

impl std::fmt::Debug for History {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("History")
            .field("labels", &self.labels)
            .field("capacity", &self.slots.len())
            .field("total", &self.total())
            .finish()
    }
}

impl History {
    /// A ring holding the latest `capacity` samples (at least 1) over the
    /// given column labels.
    pub fn new(labels: Vec<String>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let cols = labels.len();
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ts_us: AtomicU64::new(0),
                values: (0..cols).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        History {
            labels,
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// The column labels, in value order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Ring capacity (retained sample count).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total samples pushed since creation (== latest sequence number).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends one sample. **Single-writer**: only the sampler thread may
    /// call this; `values` beyond the column count are ignored, missing
    /// ones read as 0.
    pub fn push(&self, ts_us: u64, values: &[f64]) {
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        slot.seq.store(2 * n + 1, Ordering::Release);
        // Order the data stores after the odd mark.
        fence(Ordering::Release);
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        for (cell, v) in slot.values.iter().zip(values) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
        for cell in slot.values.iter().skip(values.len()) {
            cell.store(0f64.to_bits(), Ordering::Relaxed);
        }
        slot.seq.store(2 * n + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
    }

    /// All retained samples with `seq > after`, oldest first. `since(0)`
    /// returns everything still in the ring; passing the last `seq` seen
    /// resumes incrementally. Slots overwritten mid-read are skipped.
    pub fn since(&self, after: u64) -> Vec<Sample> {
        let head = self.head.load(Ordering::Acquire);
        let oldest = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::new();
        for n in oldest.max(after)..head {
            let slot = &self.slots[(n % self.slots.len() as u64) as usize];
            let expect = 2 * n + 2;
            if slot.seq.load(Ordering::Acquire) != expect {
                continue;
            }
            let ts_us = slot.ts_us.load(Ordering::Relaxed);
            let values: Vec<f64> = slot
                .values
                .iter()
                .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
                .collect();
            // Re-validate: if the writer lapped us mid-copy, drop it.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != expect {
                continue;
            }
            out.push(Sample {
                seq: n + 1,
                ts_us,
                values,
            });
        }
        out
    }

    /// Renders samples as NDJSON — one
    /// `{"seq":N,"ts_us":T,"values":{label:value,…}}` object per line
    /// (the `/metrics/history` payload).
    pub fn to_ndjson(&self, samples: &[Sample]) -> String {
        use crate::json::Value;
        let mut out = String::new();
        for s in samples {
            let values = Value::Obj(
                self.labels
                    .iter()
                    .zip(&s.values)
                    .map(|(l, &v)| (l.clone(), Value::from(v)))
                    .collect(),
            );
            let line = Value::Obj(vec![
                ("seq".to_string(), Value::from(s.seq)),
                ("ts_us".to_string(), Value::from(s.ts_us)),
                ("values".to_string(), values),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }
}

/// The background thread that feeds a [`History`] ring from an
/// [`Observer`]'s registry on a fixed cadence. Stop it explicitly with
/// [`HistorySampler::stop`]; dropping without stopping leaves the thread
/// running until process exit (like farm workers, the sampler is owned
/// by a long-lived daemon).
pub struct HistorySampler {
    history: Arc<History>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for HistorySampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistorySampler")
            .field("history", &self.history)
            .finish()
    }
}

impl HistorySampler {
    /// Starts sampling `columns` from `obs` every `interval_ms`
    /// (minimum 1) into a fresh ring of `capacity` samples.
    pub fn start(
        obs: Observer,
        columns: Vec<HistoryColumn>,
        interval_ms: u64,
        capacity: usize,
    ) -> Self {
        let labels = columns.iter().map(|c| c.label.clone()).collect();
        let history = Arc::new(History::new(labels, capacity));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let interval = Duration::from_millis(interval_ms.max(1));
        let thread = {
            let history = Arc::clone(&history);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("obs-history".to_string())
                .spawn(move || sampler_loop(&obs, &columns, &history, &stop, interval))
                .expect("spawn obs-history sampler")
        };
        HistorySampler {
            history,
            stop,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// The ring being filled (share it with readers).
    pub fn history(&self) -> Arc<History> {
        Arc::clone(&self.history)
    }

    /// Stops and joins the sampler thread. Idempotent.
    pub fn stop(&self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("history sampler stop flag poisoned") = true;
        cvar.notify_all();
        if let Some(t) = self
            .thread
            .lock()
            .expect("history sampler thread slot poisoned")
            .take()
        {
            let _ = t.join();
        }
    }
}

fn sampler_loop(
    obs: &Observer,
    columns: &[HistoryColumn],
    history: &History,
    stop: &(Mutex<bool>, Condvar),
    interval: Duration,
) {
    let samples_total = obs.counter(names::OBS_HISTORY_SAMPLES);
    // Previous counter values for rate columns, previous sample instant.
    let mut prev_counts: Vec<u64> = vec![0; columns.len()];
    let mut prev_at: Option<Instant> = None;
    let (lock, cvar) = stop;
    loop {
        {
            let mut stopped = lock.lock().expect("history sampler stop flag poisoned");
            while !*stopped {
                let (guard, timeout) = cvar
                    .wait_timeout(stopped, interval)
                    .expect("history sampler stop flag poisoned");
                stopped = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stopped {
                return;
            }
        }
        let snap = obs.snapshot();
        let now = Instant::now();
        let dt_s = prev_at.map(|t| now.duration_since(t).as_secs_f64());
        let mut values = Vec::with_capacity(columns.len());
        for (i, col) in columns.iter().enumerate() {
            let v = match &col.source {
                Source::Counter(name) => snap.counters.get(name).copied().unwrap_or(0) as f64,
                Source::Rate(name) => {
                    let cur = snap.counters.get(name).copied().unwrap_or(0);
                    let delta = cur.saturating_sub(prev_counts[i]);
                    prev_counts[i] = cur;
                    match dt_s {
                        Some(dt) if dt > 0.0 => delta as f64 / dt,
                        _ => 0.0,
                    }
                }
                Source::Gauge(name) => snap.gauges.get(name).copied().unwrap_or(0.0),
                Source::Ratio(num, den) => {
                    let n = snap.counters.get(num).copied().unwrap_or(0) as f64;
                    let d = snap.counters.get(den).copied().unwrap_or(0) as f64;
                    if d == 0.0 {
                        0.0
                    } else {
                        n / d
                    }
                }
                Source::Quantile(name, q) => {
                    snap.histograms.get(name).map_or(0.0, |h| h.quantile(*q))
                }
            };
            values.push(v);
        }
        prev_at = Some(now);
        history.push(obs.uptime_us(), &values);
        samples_total.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_the_latest_capacity_samples() {
        let h = History::new(vec!["a".to_string(), "b".to_string()], 4);
        assert_eq!(h.capacity(), 4);
        for i in 0..10u64 {
            h.push(i * 100, &[i as f64, -(i as f64)]);
        }
        assert_eq!(h.total(), 10);
        let all = h.since(0);
        assert_eq!(all.len(), 4, "only the last `capacity` survive");
        assert_eq!(all[0].seq, 7);
        assert_eq!(all[3].seq, 10);
        assert_eq!(all[3].ts_us, 900);
        assert_eq!(all[3].values, vec![9.0, -9.0]);
        // Incremental read: only what came after `since`.
        let tail = h.since(9);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 10);
        assert!(h.since(10).is_empty());
        // `since` beyond head is empty, not a panic.
        assert!(h.since(99).is_empty());
    }

    #[test]
    fn ndjson_lines_parse_back() {
        let h = History::new(vec!["x.rate".to_string()], 2);
        h.push(5, &[1.5]);
        h.push(10, &[2.0]);
        let text = h.to_ndjson(&h.since(0));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let doc = crate::json::parse(lines[1]).unwrap();
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("ts_us").unwrap().as_u64(), Some(10));
        assert_eq!(
            doc.get("values").unwrap().get("x.rate").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn concurrent_reads_never_see_torn_samples() {
        // Writer pushes (v, -v) pairs; any torn read would break the
        // invariant values[0] == -values[1].
        let h = Arc::new(History::new(vec!["v".to_string(), "neg".to_string()], 8));
        let writer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    h.push(i, &[i as f64, -(i as f64)]);
                }
            })
        };
        let mut seen = 0u64;
        while !writer.is_finished() {
            for s in h.since(seen) {
                assert_eq!(s.values[0], -s.values[1], "torn sample at seq {}", s.seq);
                assert!(s.seq > seen);
                seen = s.seq;
            }
        }
        writer.join().unwrap();
        assert_eq!(h.total(), 50_000);
    }

    #[test]
    fn sampler_derives_rates_ratios_and_quantiles() {
        let obs = Observer::enabled();
        obs.counter(names::FARM_SUBMITTED).add(10);
        obs.counter(names::FARM_DEDUP_HITS).add(5);
        obs.gauge(names::FARM_QUEUE_DEPTH).set(3.0);
        for _ in 0..20 {
            obs.histogram(names::FARM_QUEUE_WAIT_US).record(100);
        }
        let sampler = HistorySampler::start(obs.clone(), farm_columns(), 5, 64);
        let h = sampler.history();
        let deadline = Instant::now() + Duration::from_secs(5);
        while h.total() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        sampler.stop(); // idempotent
        let samples = h.since(0);
        assert!(samples.len() >= 3, "sampler produced {}", samples.len());
        let labels = h.labels();
        let col = |label: &str| labels.iter().position(|l| l == label).unwrap();
        let last = samples.last().unwrap();
        assert_eq!(last.values[col("farm.submitted")], 10.0);
        assert_eq!(last.values[col("farm.queue.depth")], 3.0);
        assert_eq!(last.values[col("farm.dedup.ratio")], 0.5);
        let p50 = last.values[col("farm.queue.wait_us.p50")];
        assert!((64.0..128.0).contains(&p50), "p50 = {p50}");
        // Nothing was completed, so the done-rate stays 0.
        assert_eq!(last.values[col("farm.done.rate")], 0.0);
        assert_eq!(
            obs.snapshot().counters[names::OBS_HISTORY_SAMPLES],
            h.total()
        );
    }
}
