//! A tiny, dependency-free JSON value model: writer plus a strict
//! recursive-descent parser.
//!
//! The writer backs the Chrome-trace and metrics exporters; the parser
//! exists so integration tests (and downstream tooling) can validate and
//! introspect emitted files without any external crate.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or to-be-serialized JSON value.
///
/// Integers are kept exact (`i128` covers the full `u64` counter range);
/// only lexemes with a fraction or exponent become [`Value::Num`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal, kept exact.
    Int(i128),
    /// A non-integer number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (order-preserving on write; lookup via [`Value::get`]).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Builds an object from a string-keyed map.
    pub fn from_map<V: Into<Value>>(map: BTreeMap<String, V>) -> Value {
        Value::Obj(map.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(i128::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(i128::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            Value::Int(v as i128)
        } else {
            Value::Num(v)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Writes `s` as a JSON string literal (with escapes) into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Inf; null is the conventional fallback.
                    f.write_str("null")
                }
            }
            Value::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// [`ParseError`] on any syntax violation.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not combined (the writer never
                            // emits them); map to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence beginning at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            lexeme
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.err("bad float literal"))
        } else {
            lexeme
                .parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("bad integer literal"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "123456789012345"] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn u64_counters_are_exact() {
        let big = u64::MAX;
        let v = Value::from(big);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(big));
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: Σλ";
        let v = Value::Str(s.to_string());
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2,{"b":"c"}],"d":{"e":null},"f":-1.25}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Value::Null));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-1.25));
        // And the writer emits something the parser accepts again.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "{,}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
