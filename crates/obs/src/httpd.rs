//! The shared multiplexed HTTP/1.1 server core: keep-alive connections,
//! pipelined request framing, and concurrent dispatch — used by both the
//! telemetry endpoint ([`crate::serve::TelemetryServer`]) and the
//! `lp-farm` front door.
//!
//! Two interchangeable reactors drive the same handler:
//!
//! * **`poll`** (unix, the default): a single nonblocking readiness loop
//!   over `poll(2)` owns every socket. Complete requests parsed off a
//!   connection are dispatched *in order* to a bounded handler thread
//!   pool; responses flow back through a completion channel and a
//!   loopback wakeup byte, and the reactor writes them out. One slow or
//!   idle client costs one pollfd, not a blocked thread.
//! * **`threads`** (portable fallback, or `LP_HTTP_REACTOR=threads`): a
//!   bounded pool of blocking workers, each serving one connection's
//!   keep-alive loop at a time.
//!
//! Both enforce a max-connections guard, per-connection idle timeouts,
//! and honor `Connection: close`. The `unsafe` `poll(2)` shim is
//! confined to the tiny [`sys`] module; everything else is safe code on
//! the std networking types.

use crate::http::{encode_response, HttpError, Request, RequestParser, Response};
use crate::names;
use crate::Observer;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorMode {
    /// `poll(2)` readiness loop on unix, thread pool elsewhere. The
    /// `LP_HTTP_REACTOR` environment variable (`poll` / `threads`)
    /// overrides the choice at runtime.
    Auto,
    /// Force the `poll(2)` readiness loop (falls back to threads off
    /// unix).
    Poll,
    /// Force the portable bounded handler-thread-pool loop.
    Threads,
}

/// Tuning for an [`HttpServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-request body cap in bytes.
    pub max_body: usize,
    /// Connections held open at once; excess connections wait in the
    /// accept backlog instead of being serviced.
    pub max_connections: usize,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Handler pool width (concurrent request dispatch).
    pub handler_threads: usize,
    /// Reactor selection.
    pub reactor: ReactorMode,
    /// Base name for the server's threads (shows up in panics/debuggers).
    pub thread_name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_body: crate::http::DEFAULT_MAX_BODY_BYTES,
            max_connections: 128,
            idle_timeout: Duration::from_secs(5),
            handler_threads: 4,
            reactor: ReactorMode::Auto,
            thread_name: "lp-httpd".to_string(),
        }
    }
}

/// The request handler: called on a pool thread, once per request, in
/// arrival order within each connection (pipelining never reorders).
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReactorKind {
    Poll,
    Threads,
}

fn resolve_reactor(mode: ReactorMode) -> ReactorKind {
    let forced = std::env::var("LP_HTTP_REACTOR").ok();
    let wanted = match forced.as_deref() {
        Some("threads") => ReactorMode::Threads,
        Some("poll") => ReactorMode::Poll,
        _ => mode,
    };
    match wanted {
        ReactorMode::Threads => ReactorKind::Threads,
        ReactorMode::Poll | ReactorMode::Auto => {
            if cfg!(unix) {
                ReactorKind::Poll
            } else {
                ReactorKind::Threads
            }
        }
    }
}

/// A running multiplexed HTTP server; dropping (or [`HttpServer::stop`])
/// shuts it down and joins every thread it owns.
#[must_use = "dropping the server handle shuts it down"]
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// `poll` mode: the write end of the loopback wakeup pair.
    /// `threads` mode: `None` (stop wakes the accept loop by connecting).
    waker: Mutex<Option<TcpStream>>,
    handle: Option<JoinHandle<()>>,
    mode: &'static str,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HttpServer({}, {})", self.local_addr, self.mode)
    }
}

impl HttpServer {
    /// Binds `addr` (port `0` picks an ephemeral port) and starts
    /// serving `handler`.
    ///
    /// # Errors
    /// Bind/spawn failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
        handler: Handler,
        obs: Observer,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        match resolve_reactor(cfg.reactor) {
            #[cfg(unix)]
            ReactorKind::Poll => {
                // A connected loopback pair is the std-only wakeup
                // channel: pool threads (and stop) write one byte, the
                // reactor polls the read end.
                let wake_listener = TcpListener::bind("127.0.0.1:0")?;
                let wake_tx = TcpStream::connect(wake_listener.local_addr()?)?;
                let (wake_rx, _) = wake_listener.accept()?;
                wake_rx.set_nonblocking(true)?;
                listener.set_nonblocking(true)?;
                let pool_wake = wake_tx.try_clone()?;
                let loop_stop = Arc::clone(&stop);
                let name = cfg.thread_name.clone();
                let handle = std::thread::Builder::new().name(name).spawn(move || {
                    poll_reactor::run(
                        listener, wake_rx, pool_wake, &cfg, &handler, &obs, &loop_stop,
                    );
                })?;
                Ok(HttpServer {
                    local_addr,
                    stop,
                    waker: Mutex::new(Some(wake_tx)),
                    handle: Some(handle),
                    mode: "poll",
                })
            }
            #[cfg(not(unix))]
            ReactorKind::Poll => unreachable!("poll reactor is never resolved off unix"),
            ReactorKind::Threads => {
                let loop_stop = Arc::clone(&stop);
                let name = cfg.thread_name.clone();
                let handle = std::thread::Builder::new().name(name).spawn(move || {
                    run_threads(&listener, &cfg, &handler, &obs, &loop_stop);
                })?;
                Ok(HttpServer {
                    local_addr,
                    stop,
                    waker: Mutex::new(None),
                    handle: Some(handle),
                    mode: "threads",
                })
            }
        }
    }

    /// The bound address (relevant with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Which reactor is driving this server: `"poll"` or `"threads"`.
    pub fn mode(&self) -> &'static str {
        self.mode
    }

    /// Shuts the server down and joins its threads.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            match self.waker.lock().expect("waker lock").as_mut() {
                Some(wake) => {
                    let _ = wake.write_all(&[1]);
                }
                None => {
                    // Unblock the blocking accept with a throwaway
                    // connection.
                    let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
                }
            }
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The response sent when framing fails before a request ever reaches
/// the handler.
fn error_response(e: &HttpError) -> Response {
    match e {
        HttpError::BodyTooLarge { declared, limit } => Response::new(
            "413 Payload Too Large",
            "application/json",
            format!("{{\"error\":\"body {declared} B exceeds limit {limit} B\"}}"),
        ),
        HttpError::Malformed(what) => Response::bad_request(what),
        HttpError::Io(_) => Response::bad_request("bad request"),
    }
}

// ---------------------------------------------------------------- poll --

#[cfg(unix)]
mod sys {
    //! The one `unsafe` corner: a direct `poll(2)` declaration (std
    //! already links libc on unix). Everything above talks to the safe
    //! [`poll_fds`] wrapper and the [`PollFd`] struct only.
    #![allow(unsafe_code)]

    use std::os::raw::{c_int, c_short, c_ulong};

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    /// Readable (or a pending connection on a listener).
    pub const POLLIN: c_short = 0x001;
    /// Writable without blocking.
    pub const POLLOUT: c_short = 0x004;
    /// Error / hangup / invalid-fd bits (output only).
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks until a registered fd is ready or `timeout_ms` elapses.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs; the length is passed alongside.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(unix)]
mod poll_reactor {
    use super::sys::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
    use super::*;
    use std::os::unix::io::AsRawFd;

    struct Conn {
        stream: TcpStream,
        parser: RequestParser,
        /// Parsed requests not yet dispatched to the pool.
        pending: VecDeque<Request>,
        write_buf: Vec<u8>,
        /// A handler batch is in flight for this connection.
        busy: bool,
        close_after_flush: bool,
        eof: bool,
        /// Requests parsed on this connection (for keep-alive accounting).
        seen: u64,
        last_activity: Instant,
    }

    impl Conn {
        fn new(stream: TcpStream) -> Conn {
            Conn {
                stream,
                parser: RequestParser::new(),
                pending: VecDeque::new(),
                write_buf: Vec::new(),
                busy: false,
                close_after_flush: false,
                eof: false,
                seen: 0,
                last_activity: Instant::now(),
            }
        }
    }

    struct Batch {
        conn: u64,
        requests: Vec<Request>,
    }

    struct Done {
        conn: u64,
        bytes: Vec<u8>,
        close: bool,
    }

    #[allow(clippy::too_many_lines)]
    pub(super) fn run(
        listener: TcpListener,
        wake_rx: TcpStream,
        wake_tx: TcpStream,
        cfg: &ServerConfig,
        handler: &Handler,
        obs: &Observer,
        stop: &AtomicBool,
    ) {
        let (task_tx, task_rx) = mpsc::channel::<Batch>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let wake_tx = Arc::new(Mutex::new(wake_tx));
        let mut pool = Vec::new();
        for i in 0..cfg.handler_threads.max(1) {
            let rx = Arc::clone(&task_rx);
            let tx = done_tx.clone();
            let handler = Arc::clone(handler);
            let obs = obs.clone();
            let wake = Arc::clone(&wake_tx);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("{}-h{i}", cfg.thread_name))
                    .spawn(move || loop {
                        let batch = {
                            let guard = rx.lock().expect("handler task lock");
                            guard.recv()
                        };
                        let Ok(batch) = batch else { break };
                        let mut bytes = Vec::new();
                        let mut close = false;
                        for req in &batch.requests {
                            obs.counter(names::SERVE_REQUESTS).inc();
                            let resp = handler(req);
                            bytes.extend_from_slice(&encode_response(&resp, !req.close));
                            if req.close {
                                close = true;
                                break;
                            }
                        }
                        let _ = tx.send(Done {
                            conn: batch.conn,
                            bytes,
                            close,
                        });
                        let _ = wake.lock().expect("wake lock").write_all(&[1]);
                    })
                    .expect("spawn http handler thread"),
            );
        }
        drop(done_tx);

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id: u64 = 0;
        let mut fds: Vec<PollFd> = Vec::new();
        let mut idx: Vec<u64> = Vec::new();
        let ready = POLLIN | POLLERR | POLLHUP | POLLNVAL;

        while !stop.load(Ordering::SeqCst) {
            fds.clear();
            idx.clear();
            fds.push(PollFd {
                fd: wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            // Max-connections guard: at capacity, stop polling the
            // listener — excess connections sit in the accept backlog.
            let accepting = conns.len() < cfg.max_connections;
            if accepting {
                fds.push(PollFd {
                    fd: listener.as_raw_fd(),
                    events: POLLIN,
                    revents: 0,
                });
            }
            let base = fds.len();
            for (&id, c) in &conns {
                let mut events = POLLIN;
                if !c.write_buf.is_empty() {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: c.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                idx.push(id);
            }
            let _ = sys::poll_fds(&mut fds, 250);
            if stop.load(Ordering::SeqCst) {
                break;
            }

            // Drain wakeup bytes (level-triggered; content is meaningless).
            if fds[0].revents != 0 {
                let mut sink = [0u8; 64];
                while let Ok(n) = (&wake_rx).read(&mut sink) {
                    if n == 0 {
                        break;
                    }
                }
            }
            // Handler completions: append response bytes, free the
            // connection for its next batch.
            while let Ok(done) = done_rx.try_recv() {
                if let Some(c) = conns.get_mut(&done.conn) {
                    c.write_buf.extend_from_slice(&done.bytes);
                    c.busy = false;
                    if done.close {
                        c.close_after_flush = true;
                        c.pending.clear();
                    }
                    c.last_activity = Instant::now();
                }
            }
            // New connections.
            if accepting && fds.len() > 1 && fds[1].revents != 0 {
                loop {
                    match listener.accept() {
                        Ok((s, _)) => {
                            if conns.len() >= cfg.max_connections {
                                drop(s);
                                break;
                            }
                            let _ = s.set_nonblocking(true);
                            let _ = s.set_nodelay(true);
                            next_id += 1;
                            conns.insert(next_id, Conn::new(s));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
            // Per-connection I/O.
            let mut to_close: Vec<u64> = Vec::new();
            for (i, &id) in idx.iter().enumerate() {
                let revents = fds[base + i].revents;
                let Some(c) = conns.get_mut(&id) else {
                    continue;
                };
                let mut dead = false;
                if revents & ready != 0 && !c.eof {
                    let mut chunk = [0u8; 16 * 1024];
                    loop {
                        match c.stream.read(&mut chunk) {
                            Ok(0) => {
                                c.eof = true;
                                c.parser.mark_eof();
                                break;
                            }
                            Ok(n) => {
                                c.parser.feed(&chunk[..n]);
                                c.last_activity = Instant::now();
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    if !dead && !c.close_after_flush {
                        loop {
                            match c.parser.take_next(cfg.max_body) {
                                Ok(Some(req)) => {
                                    c.seen += 1;
                                    if c.seen > 1 {
                                        obs.counter(names::SERVE_KEEPALIVE_REUSES).inc();
                                    }
                                    let last = req.close;
                                    c.pending.push_back(req);
                                    if last {
                                        break;
                                    }
                                }
                                Ok(None) => break,
                                Err(e) => {
                                    // Framing failure: answer inline and
                                    // hang up; nothing after it is
                                    // trustworthy.
                                    c.write_buf.extend_from_slice(&encode_response(
                                        &error_response(&e),
                                        false,
                                    ));
                                    obs.counter(names::SERVE_ERRORS).inc();
                                    c.close_after_flush = true;
                                    c.pending.clear();
                                    break;
                                }
                            }
                        }
                    }
                }
                // Dispatch the buffered batch (in order, one batch in
                // flight per connection).
                if !dead && !c.busy && !c.close_after_flush && !c.pending.is_empty() {
                    let requests: Vec<Request> = c.pending.drain(..).collect();
                    c.busy = true;
                    let _ = task_tx.send(Batch { conn: id, requests });
                }
                // Flush whatever is writable.
                if !dead && !c.write_buf.is_empty() {
                    loop {
                        match c.stream.write(&c.write_buf) {
                            Ok(0) => {
                                dead = true;
                                break;
                            }
                            Ok(n) => {
                                c.write_buf.drain(..n);
                                if c.write_buf.is_empty() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    if !c.write_buf.is_empty() {
                        c.last_activity = Instant::now();
                    }
                }
                let flushed = c.write_buf.is_empty() && !c.busy;
                let finished = c.close_after_flush || (c.eof && c.pending.is_empty());
                let idle =
                    flushed && c.pending.is_empty() && c.last_activity.elapsed() > cfg.idle_timeout;
                if dead || (flushed && finished) || idle {
                    to_close.push(id);
                }
            }
            for id in to_close {
                conns.remove(&id);
            }
            obs.gauge(names::SERVE_OPEN_CONNECTIONS)
                .set(conns.len() as f64);
        }
        drop(task_tx);
        drop(conns);
        for h in pool {
            let _ = h.join();
        }
        obs.gauge(names::SERVE_OPEN_CONNECTIONS).set(0.0);
    }
}

// ------------------------------------------------------------- threads --

/// The portable fallback: a bounded pool of blocking workers, each
/// owning one connection's keep-alive loop at a time. Bounded by
/// construction — at most `handler_threads` connections are serviced
/// concurrently; the rest wait in the hand-off channel / accept backlog.
fn run_threads(
    listener: &TcpListener,
    cfg: &ServerConfig,
    handler: &Handler,
    obs: &Observer,
    stop: &AtomicBool,
) {
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(cfg.max_connections.max(1));
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let open = Arc::new(Mutex::new(0usize));
    // Workers cannot borrow the caller's stop flag ('static closures);
    // the accept loop mirrors it into this owned flag at shutdown.
    let stop_flag = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for i in 0..cfg.handler_threads.max(1) {
        let rx = Arc::clone(&conn_rx);
        let handler = Arc::clone(handler);
        let worker_obs = obs.clone();
        let worker_cfg = cfg.clone();
        let open = Arc::clone(&open);
        let stop_flag = Arc::clone(&stop_flag);
        handles.push(
            std::thread::Builder::new()
                .name(format!("{}-h{i}", cfg.thread_name))
                .spawn(move || loop {
                    let stream = {
                        let guard = rx.lock().expect("conn hand-off lock");
                        guard.recv()
                    };
                    let Ok(stream) = stream else { break };
                    if stop_flag.load(Ordering::SeqCst) {
                        continue; // drain and drop during shutdown
                    }
                    {
                        let mut n = open.lock().expect("open count lock");
                        *n += 1;
                        worker_obs
                            .gauge(names::SERVE_OPEN_CONNECTIONS)
                            .set(*n as f64);
                    }
                    serve_blocking_conn(stream, &worker_cfg, &handler, &worker_obs, &stop_flag);
                    {
                        let mut n = open.lock().expect("open count lock");
                        *n = n.saturating_sub(1);
                        worker_obs
                            .gauge(names::SERVE_OPEN_CONNECTIONS)
                            .set(*n as f64);
                    }
                })
                .expect("spawn http worker thread"),
        );
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let _ = conn_tx.send(stream);
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    stop_flag.store(true, Ordering::SeqCst);
    drop(conn_tx);
    for h in handles {
        let _ = h.join();
    }
    obs.gauge(names::SERVE_OPEN_CONNECTIONS).set(0.0);
}

/// One blocking keep-alive loop: parse → handle → respond, until the
/// peer closes, asks for `Connection: close`, goes idle past the
/// timeout, or the server stops.
fn serve_blocking_conn(
    mut stream: TcpStream,
    cfg: &ServerConfig,
    handler: &Handler,
    obs: &Observer,
    stop: &AtomicBool,
) {
    // A short read timeout keeps the worker responsive to stop and idle
    // deadlines without a reactor.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new();
    let mut served: u64 = 0;
    let mut last_activity = Instant::now();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match parser.take_next(cfg.max_body) {
            Ok(Some(req)) => {
                served += 1;
                if served > 1 {
                    obs.counter(names::SERVE_KEEPALIVE_REUSES).inc();
                }
                obs.counter(names::SERVE_REQUESTS).inc();
                let resp = handler(&req);
                let keep = !req.close;
                if stream.write_all(&encode_response(&resp, keep)).is_err() || !keep {
                    return;
                }
                last_activity = Instant::now();
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                let _ = stream.write_all(&encode_response(&error_response(&e), false));
                obs.counter(names::SERVE_ERRORS).inc();
                return;
            }
        }
        if parser.at_eof() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => parser.mark_eof(),
            Ok(n) => {
                parser.feed(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() > cfg.idle_timeout {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpClient;

    fn echo_server(reactor: ReactorMode) -> HttpServer {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::json_ok(format!(
                "{{\"path\":{},\"len\":{}}}",
                crate::json::Value::Str(req.path.clone()),
                req.body.len()
            ))
        });
        HttpServer::start(
            "127.0.0.1:0",
            ServerConfig {
                reactor,
                ..ServerConfig::default()
            },
            handler,
            Observer::enabled(),
        )
        .unwrap()
    }

    fn exercise_keepalive(server: &HttpServer) {
        let addr = server.local_addr().to_string();
        let mut client = HttpClient::new(&addr);
        for i in 0..5 {
            let (status, body) = client
                .request("POST", &format!("/echo/{i}"), "payload")
                .unwrap();
            assert_eq!(status, 200, "{body}");
            assert!(body.contains(&format!("/echo/{i}")), "{body}");
            assert!(body.contains("\"len\":7"), "{body}");
        }
        assert_eq!(client.reuses(), 4, "five requests, one connection");
    }

    #[test]
    fn poll_reactor_serves_keepalive_requests() {
        let server = echo_server(ReactorMode::Poll);
        if cfg!(unix) {
            assert_eq!(server.mode(), "poll");
        }
        exercise_keepalive(&server);
        server.stop();
    }

    #[test]
    fn threads_reactor_serves_keepalive_requests() {
        let server = echo_server(ReactorMode::Threads);
        assert_eq!(server.mode(), "threads");
        exercise_keepalive(&server);
        server.stop();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = echo_server(ReactorMode::Auto);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Two requests in one write; the second asks to close so the
        // read loop below terminates.
        let burst = "GET /a HTTP/1.1\r\nContent-Length: 0\r\n\r\n\
                     GET /b HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        stream.write_all(burst.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let a = buf.find("/a").expect("first response present");
        let b = buf.find("/b").expect("second response present");
        assert!(a < b, "pipelined responses must keep request order: {buf}");
        server.stop();
    }

    #[test]
    fn connection_close_is_honored() {
        let server = echo_server(ReactorMode::Auto);
        let addr = server.local_addr().to_string();
        let (status, body) = crate::http::client_request(&addr, "GET", "/one", "").unwrap();
        assert_eq!(status, 200, "{body}");
        server.stop();
    }

    #[test]
    fn oversized_body_rejected_inline() {
        let server = HttpServer::start(
            "127.0.0.1:0",
            ServerConfig {
                max_body: 16,
                ..ServerConfig::default()
            },
            Arc::new(|_req: &Request| Response::json_ok("{}".to_string())),
            Observer::enabled(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let big = "x".repeat(64);
        let (status, _) = crate::http::client_request(&addr, "POST", "/jobs", &big).unwrap();
        assert_eq!(status, 413);
        server.stop();
    }
}
