//! The span/event tracing core: RAII span guards with monotonic
//! timestamps and per-thread lane ids, recorded into a lock-protected
//! in-memory sink.
//!
//! Spans are recorded as Chrome-trace *complete* (`"X"`) events — one
//! record per span, balanced by construction — plus instant (`"i"`) and
//! counter (`"C"`) events for heartbeats and sampled values.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed span/event argument (serialized into the trace `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceArg {
    /// An exact unsigned integer.
    U64(u64),
    /// A floating-point value.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for TraceArg {
    fn from(v: u64) -> Self {
        TraceArg::U64(v)
    }
}

impl From<usize> for TraceArg {
    fn from(v: usize) -> Self {
        TraceArg::U64(v as u64)
    }
}

impl From<f64> for TraceArg {
    fn from(v: f64) -> Self {
        TraceArg::F64(v)
    }
}

impl From<&str> for TraceArg {
    fn from(v: &str) -> Self {
        TraceArg::Str(v.to_string())
    }
}

impl From<String> for TraceArg {
    fn from(v: String) -> Self {
        TraceArg::Str(v)
    }
}

/// Chrome-trace event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`, has a duration).
    Complete,
    /// A zero-duration instant (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
}

impl Phase {
    /// The one-character Chrome-trace phase code.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span/phase name, counter name).
    pub name: String,
    /// Category (the pipeline layer: `"pipeline"`, `"sim"`, …).
    pub cat: &'static str,
    /// Event phase.
    pub ph: Phase,
    /// Microseconds since the observer's epoch.
    pub ts_us: u64,
    /// Span duration in microseconds (complete events only).
    pub dur_us: u64,
    /// Recording thread's lane id (stable, small, per-OS-thread).
    pub tid: u64,
    /// Named arguments/counters attached to the event.
    pub args: Vec<(String, TraceArg)>,
    /// Distributed trace-context ids, when the event was recorded under
    /// an attached [`crate::tracectx::TraceContext`].
    pub ctx: Option<crate::tracectx::TraceContext>,
}

/// The lock-protected in-memory event sink.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    /// Appends one event.
    pub fn record(&self, ev: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(ev);
    }

    /// Copies out all events recorded so far, sorted by timestamp.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut evs = self.events.lock().expect("trace sink poisoned").clone();
        evs.sort_by_key(|e| (e.ts_us, e.dur_us));
        evs
    }

    /// Removes and returns every event belonging to `trace_id`, sorted by
    /// timestamp. Used by the farm to harvest a finished job's spans into
    /// its flight-recorder entry (which also keeps the shared sink from
    /// accumulating per-job spans forever).
    pub fn take_by_trace(&self, trace_id: crate::tracectx::TraceId) -> Vec<TraceEvent> {
        let mut evs = self.events.lock().expect("trace sink poisoned");
        let (mut taken, keep): (Vec<TraceEvent>, Vec<TraceEvent>) = evs
            .drain(..)
            .partition(|e| e.ctx.is_some_and(|c| c.trace_id == trace_id));
        *evs = keep;
        drop(evs);
        taken.sort_by_key(|e| (e.ts_us, e.dur_us));
        taken
    }

    /// Copies out (without removing) every event belonging to `trace_id`,
    /// sorted by timestamp. The non-destructive sibling of
    /// [`TraceSink::take_by_trace`], used by cross-node trace assembly to
    /// peek at spans whose harvest has not happened yet.
    pub fn events_for_trace(&self, trace_id: crate::tracectx::TraceId) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self
            .events
            .lock()
            .expect("trace sink poisoned")
            .iter()
            .filter(|e| e.ctx.is_some_and(|c| c.trace_id == trace_id))
            .cloned()
            .collect();
        evs.sort_by_key(|e| (e.ts_us, e.dur_us));
        evs
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's stable trace lane id.
pub fn lane_id() -> u64 {
    LANE.with(|l| *l)
}

pub(crate) fn micros_since(epoch: Instant) -> u64 {
    Instant::now().duration_since(epoch).as_micros() as u64
}

/// An RAII span: records a single complete (`"X"`) event when dropped,
/// covering the time from construction to drop on the constructing
/// thread's lane.
#[derive(Debug)]
#[must_use = "a span guard records its span when dropped; binding it to _ drops immediately"]
pub struct SpanGuard {
    pub(crate) active: Option<ActiveSpan>,
}

#[derive(Debug)]
pub(crate) struct ActiveSpan {
    pub(crate) sink: Arc<crate::Inner>,
    pub(crate) name: String,
    pub(crate) cat: &'static str,
    pub(crate) start_us: u64,
    pub(crate) tid: u64,
    pub(crate) args: Vec<(String, TraceArg)>,
    /// The span's own trace context (a child of whatever was current at
    /// open time), plus the guard keeping it attached for the span's
    /// lifetime so nested spans parent under it.
    pub(crate) ctx: Option<crate::tracectx::TraceContext>,
    pub(crate) ctx_guard: Option<crate::tracectx::ContextGuard>,
}

impl SpanGuard {
    /// A guard that records nothing (disabled observer).
    pub fn disabled() -> Self {
        SpanGuard { active: None }
    }

    /// Attaches a named argument, visible on the span in the trace viewer.
    /// Useful for counters only known at span end (instructions, cycles).
    pub fn arg(&mut self, key: &str, value: impl Into<TraceArg>) {
        if let Some(a) = &mut self.active {
            a.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            // Detach before recording so the event is not its own parent
            // scope for anything recorded by the sink itself.
            drop(a.ctx_guard);
            let end = micros_since(a.sink.epoch);
            a.sink.trace.record(TraceEvent {
                name: a.name,
                cat: a.cat,
                ph: Phase::Complete,
                ts_us: a.start_us,
                dur_us: end.saturating_sub(a.start_us),
                tid: a.tid,
                args: a.args,
                ctx: a.ctx,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_orders_by_timestamp() {
        let sink = TraceSink::default();
        let mk = |name: &str, ts| TraceEvent {
            name: name.to_string(),
            cat: "t",
            ph: Phase::Instant,
            ts_us: ts,
            dur_us: 0,
            tid: 0,
            args: Vec::new(),
            ctx: None,
        };
        sink.record(mk("b", 20));
        sink.record(mk("a", 10));
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[1].name, "b");
        assert!(!sink.is_empty());
    }

    #[test]
    fn lanes_are_stable_per_thread() {
        let a = lane_id();
        let b = lane_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(lane_id).join().unwrap();
        assert_ne!(a, other);
    }
}
