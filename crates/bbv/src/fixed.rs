//! Naive fixed-instruction-count slicing: the multi-threaded SimPoint
//! baseline of §II.

use crate::vector::{dim, SparseVec};
use lp_dcfg::Dcfg;
use lp_isa::Retired;
use lp_pinball::ExecObserver;
use std::collections::HashMap;

/// A fixed-size slice bounded by global instruction indices.
///
/// Unlike LoopPoint's `(PC, count)` markers, these boundaries are **not**
/// stable across interleavings — replaying the same boundary index on a
/// different machine cuts the execution at a different point, which is
/// precisely why the naive adaptation mis-predicts (§II: up to 68% error
/// with the active wait policy).
#[derive(Debug, Clone)]
pub struct FixedSlice {
    /// Slice index in execution order.
    pub index: usize,
    /// Global retired-instruction index of the slice start (inclusive).
    pub start_inst: u64,
    /// Global retired-instruction index of the slice end (exclusive).
    pub end_inst: u64,
    /// Unfiltered concatenated per-thread BBV.
    pub bbv: SparseVec,
    /// Instructions in the slice (= `end_inst - start_inst`, except for a
    /// shorter final slice).
    pub insts: u64,
}

/// Observer slicing every `slice_size` *unfiltered* global instructions.
#[derive(Debug)]
pub struct FixedSlicer<'d> {
    dcfg: &'d Dcfg,
    slice_size: u64,
    entering_block: Vec<bool>,
    cur_bbv: HashMap<u64, u64>,
    cur_insts: u64,
    seen: u64,
    slices: Vec<FixedSlice>,
}

impl<'d> FixedSlicer<'d> {
    /// Creates a slicer cutting every `slice_size` global instructions.
    pub fn new(dcfg: &'d Dcfg, nthreads: usize, slice_size: u64) -> Self {
        assert!(slice_size > 0);
        FixedSlicer {
            dcfg,
            slice_size,
            entering_block: vec![true; nthreads],
            cur_bbv: HashMap::new(),
            cur_insts: 0,
            seen: 0,
            slices: Vec::new(),
        }
    }

    fn close(&mut self) {
        let start = self.seen - self.cur_insts;
        self.slices.push(FixedSlice {
            index: self.slices.len(),
            start_inst: start,
            end_inst: self.seen,
            bbv: SparseVec::from_map(&self.cur_bbv),
            insts: self.cur_insts,
        });
        self.cur_bbv.clear();
        self.cur_insts = 0;
    }

    /// Finalizes the slices (closing any trailing partial slice).
    pub fn finish(mut self) -> Vec<FixedSlice> {
        if self.cur_insts > 0 || self.slices.is_empty() {
            self.close();
        }
        self.slices
    }
}

impl ExecObserver for FixedSlicer<'_> {
    fn on_retire(&mut self, r: &Retired) {
        if self.entering_block[r.tid] {
            if let Some(b) = self.dcfg.block_of(r.pc) {
                let block = self.dcfg.block(b);
                *self.cur_bbv.entry(dim(r.tid, b.0)).or_default() += u64::from(block.len);
            }
        }
        self.entering_block[r.tid] = r.ctrl.is_some();
        self.cur_insts += 1;
        self.seen += 1;
        if self.cur_insts >= self.slice_size {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_dcfg::DcfgBuilder;
    use lp_isa::{AluOp, ProgramBuilder, Reg};
    use lp_omp::{OmpRuntime, WaitPolicy};
    use lp_pinball::{Pinball, RecordConfig};
    use std::sync::Arc;

    #[test]
    fn fixed_slices_have_exact_sizes() {
        let mut pb = ProgramBuilder::new("fx");
        let mut rt = OmpRuntime::build(&mut pb, 2, WaitPolicy::Active);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "p", |c, rt| {
            rt.emit_static_for(c, "p.loop", 1000, |c, _| {
                c.alui(AluOp::Add, Reg::R1, Reg::R16, 1);
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let pinball = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let mut dcfg_b = DcfgBuilder::new(p.clone(), 2);
        pinball
            .replay(p.clone(), &mut [&mut dcfg_b], u64::MAX)
            .unwrap();
        let dcfg = dcfg_b.finish();

        let mut slicer = FixedSlicer::new(&dcfg, 2, 500);
        pinball
            .replay(p.clone(), &mut [&mut slicer], u64::MAX)
            .unwrap();
        let slices = slicer.finish();
        assert!(slices.len() >= 4);
        for s in &slices[..slices.len() - 1] {
            assert_eq!(s.insts, 500);
            assert_eq!(s.end_inst - s.start_inst, 500);
            assert!(!s.bbv.is_empty());
        }
        // Contiguous coverage.
        for w in slices.windows(2) {
            assert_eq!(w[0].end_inst, w[1].start_inst);
        }
        assert_eq!(slices[0].start_inst, 0);
        assert_eq!(slices.last().unwrap().end_inst, pinball.instructions());
    }
}
