//! Loop-aligned, spin-filtered slicing — the LoopPoint profiler.

use crate::vector::{dim, SparseVec};
use lp_dcfg::Dcfg;
use lp_isa::{Marker, Pc, Program, Retired};
use lp_pinball::ExecObserver;
use std::collections::HashMap;
use std::sync::Arc;

/// Slice-length policy (§III-B: fixed ~100 M-per-thread slices by default,
/// "however, the methodology can also be used with varying length
/// intervals").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicePolicy {
    /// Every slice targets the same filtered-instruction count.
    Fixed,
    /// Slice targets cycle deterministically through
    /// `[base/2, base, 2*base]`, approximating variable-length intervals
    /// matched to application periodicity.
    Varying,
}

/// One profiled slice: a variable-length region bounded by main-image
/// loop-header executions.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Slice index in execution order.
    pub index: usize,
    /// Start boundary; `None` for the first slice (program start).
    pub start: Option<Marker>,
    /// End boundary; `None` for the final slice (program end).
    pub end: Option<Marker>,
    /// Concatenated per-thread BBV (spin-filtered, block entries weighted
    /// by block length).
    pub bbv: SparseVec,
    /// Spin-filtered (main-image) instructions in the slice.
    pub filtered_insts: u64,
    /// All instructions in the slice (including library/spin code).
    pub total_insts: u64,
    /// Per-thread filtered instruction counts (Fig. 3's heterogeneity data).
    pub per_thread_insts: Vec<u64>,
}

/// The full profile of an execution.
#[derive(Debug, Clone)]
pub struct SliceProfile {
    /// All slices in execution order.
    pub slices: Vec<Slice>,
    /// Global filtered-instruction target per slice that was used.
    pub slice_target: u64,
    /// Thread count profiled with.
    pub nthreads: usize,
    /// Total spin-filtered instructions in the execution.
    pub total_filtered: u64,
    /// Total instructions in the execution.
    pub total_insts: u64,
}

impl SliceProfile {
    /// Fraction of instructions removed by the spin filter.
    pub fn filter_ratio(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            1.0 - self.total_filtered as f64 / self.total_insts as f64
        }
    }
}

/// Observer that slices the retirement stream at main-image loop headers
/// once the filtered instruction-count target is met (§III-B: slice size
/// ≈ N × base for an N-threaded application).
#[derive(Debug)]
pub struct LoopAlignedSlicer<'d> {
    program: Arc<Program>,
    dcfg: &'d Dcfg,
    nthreads: usize,
    slice_target: u64,
    base_target: u64,
    policy: SlicePolicy,
    filter_spin: bool,
    /// Global execution counts of every main-image loop header.
    header_counts: HashMap<Pc, u64>,
    /// Per-thread flag: the next retirement enters a new basic block.
    entering_block: Vec<bool>,
    // Current slice accumulation.
    cur_bbv: HashMap<u64, u64>,
    cur_filtered: u64,
    cur_total: u64,
    cur_per_thread: Vec<u64>,
    cur_start: Option<Marker>,
    slices: Vec<Slice>,
    total_filtered: u64,
    total_insts: u64,
}

impl<'d> LoopAlignedSlicer<'d> {
    /// Creates a slicer.
    ///
    /// `slice_base` is the per-thread slice size; the global target is
    /// `slice_base × nthreads` filtered instructions (the paper's
    /// N × 100 M, scaled).
    pub fn new(program: Arc<Program>, dcfg: &'d Dcfg, nthreads: usize, slice_base: u64) -> Self {
        assert!(slice_base > 0);
        let header_counts = dcfg
            .main_image_loop_headers()
            .into_iter()
            .map(|pc| (pc, 0))
            .collect();
        LoopAlignedSlicer {
            program,
            dcfg,
            nthreads,
            slice_target: slice_base * nthreads as u64,
            base_target: slice_base * nthreads as u64,
            policy: SlicePolicy::Fixed,
            filter_spin: true,
            header_counts,
            entering_block: vec![true; nthreads],
            cur_bbv: HashMap::new(),
            cur_filtered: 0,
            cur_total: 0,
            cur_per_thread: vec![0; nthreads],
            cur_start: None,
            slices: Vec::new(),
            total_filtered: 0,
            total_insts: 0,
        }
    }

    /// Selects the slice-length policy.
    pub fn set_policy(&mut self, policy: SlicePolicy) {
        self.policy = policy;
    }

    /// Disables the library-image spin filter (ablation: every
    /// instruction counts toward BBVs, slice targets, and multipliers —
    /// the configuration §IV-F argues against).
    pub fn set_spin_filter(&mut self, enabled: bool) {
        self.filter_spin = enabled;
    }

    fn close_slice(&mut self, end: Option<Marker>) {
        let bbv = SparseVec::from_map(&self.cur_bbv);
        self.slices.push(Slice {
            index: self.slices.len(),
            start: self.cur_start,
            end,
            bbv,
            filtered_insts: self.cur_filtered,
            total_insts: self.cur_total,
            per_thread_insts: std::mem::replace(&mut self.cur_per_thread, vec![0; self.nthreads]),
        });
        self.cur_bbv.clear();
        self.cur_filtered = 0;
        self.cur_total = 0;
        self.cur_start = end;
        if self.policy == SlicePolicy::Varying {
            // Deterministic 1/2x, 1x, 2x rotation keyed on slice index.
            self.slice_target = match self.slices.len() % 3 {
                0 => self.base_target / 2,
                1 => self.base_target,
                _ => self.base_target * 2,
            }
            .max(1);
        }
    }

    /// Finalizes the profile (closing the trailing partial slice).
    pub fn finish(mut self) -> SliceProfile {
        if self.cur_total > 0 || self.slices.is_empty() {
            self.close_slice(None);
        }
        SliceProfile {
            slices: self.slices,
            slice_target: self.slice_target,
            nthreads: self.nthreads,
            total_filtered: self.total_filtered,
            total_insts: self.total_insts,
        }
    }
}

impl ExecObserver for LoopAlignedSlicer<'_> {
    fn on_retire(&mut self, r: &Retired) {
        // Slice boundary check happens *before* accounting, so the header
        // execution opens the next slice (the paper's "end a region at the
        // next loop entry once the target is achieved").
        if !self.filter_spin || !self.program.is_library_pc(r.pc) {
            if let Some(count) = self.header_counts.get_mut(&r.pc) {
                *count += 1;
                if self.cur_filtered >= self.slice_target {
                    let marker = Marker::new(r.pc, *count);
                    self.close_slice(Some(marker));
                }
            }

            // Spin-filtered accounting.
            self.cur_filtered += 1;
            self.total_filtered += 1;
            self.cur_per_thread[r.tid] += 1;
            if self.entering_block[r.tid] {
                if let Some(b) = self.dcfg.block_of(r.pc) {
                    let block = self.dcfg.block(b);
                    // Standard BBV weighting: entries × block length.
                    *self.cur_bbv.entry(dim(r.tid, b.0)).or_default() += u64::from(block.len);
                }
            }
        }
        self.cur_total += 1;
        self.total_insts += 1;
        self.entering_block[r.tid] = r.ctrl.is_some();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_dcfg::DcfgBuilder;
    use lp_isa::{AluOp, ProgramBuilder, Reg};
    use lp_omp::{OmpRuntime, WaitPolicy, APP_BASE};
    use lp_pinball::{Pinball, RecordConfig};

    fn profile(
        program: &Arc<Program>,
        nthreads: usize,
        slice_base: u64,
    ) -> (SliceProfile, Pinball) {
        let pinball = Pinball::record(program, nthreads, RecordConfig::default()).unwrap();
        let mut dcfg_b = DcfgBuilder::new(program.clone(), nthreads);
        pinball
            .replay(program.clone(), &mut [&mut dcfg_b], u64::MAX)
            .unwrap();
        let dcfg = dcfg_b.finish();
        let mut slicer = LoopAlignedSlicer::new(program.clone(), &dcfg, nthreads, slice_base);
        pinball
            .replay(program.clone(), &mut [&mut slicer], u64::MAX)
            .unwrap();
        (slicer.finish(), pinball)
    }

    fn work_program(nthreads: usize, policy: WaitPolicy, iters: u64) -> Arc<Program> {
        let mut pb = ProgramBuilder::new("work");
        let mut rt = OmpRuntime::build(&mut pb, nthreads, policy);
        let mut c = pb.main_code();
        rt.emit_main_init(&mut c);
        rt.emit_parallel(&mut c, "p", |c, rt| {
            rt.emit_static_for(c, "p.loop", iters, |c, _| {
                c.li(Reg::R1, APP_BASE as i64);
                c.alui(AluOp::Shl, Reg::R2, Reg::R16, 3);
                c.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
                c.load(Reg::R3, Reg::R1, 0);
                c.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
                c.store(Reg::R3, Reg::R1, 0);
            });
        });
        rt.emit_shutdown(&mut c);
        c.halt();
        c.finish();
        Arc::new(pb.finish())
    }

    #[test]
    fn slices_meet_target_and_align_to_headers() {
        let p = work_program(4, WaitPolicy::Passive, 4000);
        let (profile, _) = profile(&p, 4, 500); // target = 2000 filtered
        assert!(profile.slices.len() >= 3, "got {}", profile.slices.len());
        for s in &profile.slices[..profile.slices.len() - 1] {
            assert!(
                s.filtered_insts >= profile.slice_target,
                "slice {} too small: {}",
                s.index,
                s.filtered_insts
            );
            let end = s.end.expect("non-final slices have end markers");
            assert!(
                !p.is_library_pc(end.pc),
                "boundaries must be main-image loop headers"
            );
        }
        // Consecutive slices share boundaries.
        for w in profile.slices.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Totals add up.
        let sum: u64 = profile.slices.iter().map(|s| s.filtered_insts).sum();
        assert_eq!(sum, profile.total_filtered);
    }

    #[test]
    fn active_and_passive_profiles_match_after_filtering() {
        // The spin filter makes the *analysis* independent of the wait
        // policy: filtered totals must be very close (runtime code differs
        // slightly between futex and spin paths, app code not at all).
        let pa = work_program(4, WaitPolicy::Active, 2000);
        let pp = work_program(4, WaitPolicy::Passive, 2000);
        let (prof_a, _) = profile(&pa, 4, 500);
        let (prof_p, _) = profile(&pp, 4, 500);
        assert!(prof_a.total_insts > prof_p.total_insts, "spins inflate raw");
        let diff = (prof_a.total_filtered as f64 - prof_p.total_filtered as f64).abs()
            / prof_p.total_filtered as f64;
        assert!(diff < 0.01, "filtered totals nearly equal, diff={diff}");
        assert!(prof_a.filter_ratio() > prof_p.filter_ratio());
    }

    #[test]
    fn bbvs_are_per_thread_concatenated() {
        let p = work_program(4, WaitPolicy::Passive, 4000);
        let (profile, _) = profile(&p, 4, 500);
        let mid = &profile.slices[profile.slices.len() / 2];
        // Every thread contributes dimensions to a steady-state slice.
        let mut threads_seen = [false; 4];
        for &(d, _) in mid.bbv.entries() {
            threads_seen[(d >> 32) as usize] = true;
        }
        assert!(threads_seen.iter().all(|&t| t), "{threads_seen:?}");
        // And per-thread instruction counts are balanced for this
        // homogeneous workload.
        let max = *mid.per_thread_insts.iter().max().unwrap() as f64;
        let min = *mid.per_thread_insts.iter().min().unwrap() as f64;
        assert!(
            min > 0.0 && max / min < 2.0,
            "balanced: {:?}",
            mid.per_thread_insts
        );
    }

    #[test]
    fn profiling_is_deterministic() {
        let p = work_program(4, WaitPolicy::Passive, 2000);
        let pinball = Pinball::record(&p, 4, RecordConfig::default()).unwrap();
        let run = || {
            let mut dcfg_b = DcfgBuilder::new(p.clone(), 4);
            pinball
                .replay(p.clone(), &mut [&mut dcfg_b], u64::MAX)
                .unwrap();
            let dcfg = dcfg_b.finish();
            let mut slicer = LoopAlignedSlicer::new(p.clone(), &dcfg, 4, 300);
            pinball
                .replay(p.clone(), &mut [&mut slicer], u64::MAX)
                .unwrap();
            slicer.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.slices.len(), b.slices.len());
        for (sa, sb) in a.slices.iter().zip(&b.slices) {
            assert_eq!(sa.start, sb.start);
            assert_eq!(sa.end, sb.end);
            assert_eq!(sa.bbv, sb.bbv);
            assert_eq!(sa.filtered_insts, sb.filtered_insts);
        }
    }

    #[test]
    fn varying_policy_produces_mixed_slice_sizes() {
        let p = work_program(2, WaitPolicy::Passive, 6000);
        let pinball = Pinball::record(&p, 2, RecordConfig::default()).unwrap();
        let mut dcfg_b = DcfgBuilder::new(p.clone(), 2);
        pinball
            .replay(p.clone(), &mut [&mut dcfg_b], u64::MAX)
            .unwrap();
        let dcfg = dcfg_b.finish();
        let mut slicer = LoopAlignedSlicer::new(p.clone(), &dcfg, 2, 1000);
        slicer.set_policy(SlicePolicy::Varying);
        pinball
            .replay(p.clone(), &mut [&mut slicer], u64::MAX)
            .unwrap();
        let profile = slicer.finish();
        assert!(profile.slices.len() >= 6);
        let full: Vec<u64> = profile.slices[..profile.slices.len() - 1]
            .iter()
            .map(|s| s.filtered_insts)
            .collect();
        let min = *full.iter().min().unwrap();
        let max = *full.iter().max().unwrap();
        assert!(
            max as f64 / min as f64 >= 2.0,
            "varying policy yields at least 2x spread: {min}..{max}"
        );
        // Boundaries still share markers and account exactly.
        for w in profile.slices.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let sum: u64 = profile.slices.iter().map(|s| s.filtered_insts).sum();
        assert_eq!(sum, profile.total_filtered);
    }

    #[test]
    fn single_threaded_program_slices() {
        let mut pb = ProgramBuilder::new("st");
        let mut c = pb.main_code();
        c.li(Reg::R1, 0);
        c.counted_loop("l", Reg::R2, 5000, |c| {
            c.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        });
        c.halt();
        c.finish();
        let p = Arc::new(pb.finish());
        let (profile, _) = profile(&p, 1, 1000);
        assert!(profile.slices.len() > 3);
        assert_eq!(profile.nthreads, 1);
        assert!(profile.filter_ratio() < 1e-9, "no library code executed");
    }
}
